"""Figure 3: SP&R implementation noise on the PULPino-class core.

Paper shape (left panel): post-P&R area vs target frequency — area
creeps up with target, and its run-to-run spread grows sharply near the
maximum achievable frequency ("implementation noise increases with
target design quality").  Right panel: per-target area samples are
essentially Gaussian (refs [29][15]).
"""

import numpy as np
from conftest import print_header

from repro.bench import pulpino_profile
from repro.core.noise import NoiseCharacterization, noise_sweep
from repro.eda.flow import FlowOptions

TARGETS = [0.40, 0.50, 0.60, 0.70, 0.78, 0.84, 0.90]
N_SEEDS = 18


def test_fig3_tool_noise(benchmark):
    spec = pulpino_profile()

    sweep = benchmark.pedantic(
        noise_sweep,
        args=(spec, TARGETS),
        kwargs={"n_seeds": N_SEEDS, "base_options": FlowOptions()},
        rounds=1,
        iterations=1,
    )
    noise = NoiseCharacterization(sweep)

    print_header("Figure 3 (left): area vs target frequency, with noise")
    print(f"{'target GHz':>11} {'area mean':>10} {'area std':>9} "
          f"{'success':>8} {'gaussian?':>10}")
    for target in sweep.targets:
        fit = noise.gaussian_fit(target)
        print(
            f"{target:>11.2f} {sweep.areas(target).mean():>10.1f} "
            f"{sweep.areas(target).std(ddof=1):>9.2f} "
            f"{sweep.success_rate(target):>8.2f} "
            f"{str(fit.looks_gaussian):>10}"
        )
    summary = noise.summary()
    print(f"\nnoise growth ratio (aggressive/relaxed): "
          f"{summary['noise_growth_ratio']:.2f}")
    print(f"fraction of targets passing JB normality: "
          f"{summary['gaussian_fraction']:.2f}")
    print(f"aim-low target @95% confidence: "
          f"{noise.aim_low_target(0.95):.2f} GHz "
          f"(guardband {noise.frequency_guardband(0.95):.2f} GHz)")

    # shape targets
    assert summary["noise_growth_ratio"] > 1.3  # noise grows near the wall
    assert summary["gaussian_fraction"] >= 0.5  # noise is essentially Gaussian
    rates = [sweep.success_rate(t) for t in sweep.targets]
    assert rates[0] == 1.0  # relaxed targets always close
    assert rates[-1] < 1.0  # the wall exists inside the sweep
    means = noise.area_mean()
    assert means[-1] >= means[0]  # area rises with target aggressiveness
