"""Figure 7: MAB sampling of the SP&R flow (Thompson Sampling).

Paper setup: "40 iterations and 5 concurrent samples (tool runs) per
iteration.  Testcase: PULPino in 14nm foundry technology, with given
power and area constraints."  Shape: early iterations scatter across
the frequency range with many unsuccessful samples; later iterations
concentrate near the best feasible frequency; the best-so-far curve
rises and flattens.  Sec 3.1 claim: TS is more robust than softmax and
e-greedy across settings.
"""

import numpy as np
from conftest import print_header

from repro.bench import pulpino_profile
from repro.core.bandit import (
    BatchBanditScheduler,
    EpsilonGreedy,
    FlowArmEnvironment,
    Softmax,
    SyntheticBanditEnvironment,
    ThompsonSampling,
    expected_total_regret,
)

FREQUENCIES = [0.40, 0.48, 0.56, 0.64, 0.70, 0.76, 0.82, 0.88, 0.94, 1.00]
N_ITERATIONS = 40
N_CONCURRENT = 5


def test_fig7_mab_trajectory(benchmark):
    spec = pulpino_profile()
    env = FlowArmEnvironment(
        spec, FREQUENCIES,
        max_area=300.0, max_power=450.0,  # "given power and area constraints"
        seed=7,
    )
    policy = ThompsonSampling(env.n_arms, seed=8)
    scheduler = BatchBanditScheduler(N_ITERATIONS, N_CONCURRENT)

    result = benchmark.pedantic(scheduler.run, args=(policy, env),
                                rounds=1, iterations=1)

    print_header("Figure 7: TS-sampled target frequency vs iteration")
    print(f"{'iter':>5} {'sampled frequencies (GHz; * = successful)':<52} {'best':>6}")
    best_trace = result.best_reward_by_iteration()
    records_by_iter = {}
    for rec in result.records:
        records_by_iter.setdefault(rec.iteration, []).append(rec)
    for it in range(0, N_ITERATIONS, 2):
        cells = []
        for rec in records_by_iter[it]:
            freq = FREQUENCIES[rec.arm]
            cells.append(f"{freq:.2f}{'*' if rec.success else ' '}")
        best_ghz = best_trace[it] * max(FREQUENCIES)
        print(f"{it:>5} {' '.join(cells):<52} {best_ghz:>6.2f}")

    total_pulls = np.bincount([r.arm for r in result.records], minlength=len(FREQUENCIES))
    print("\npulls per arm:", dict(zip([f"{f:.2f}" for f in FREQUENCIES], total_pulls.tolist())))
    print(f"successful samples: {result.n_successes}/{len(result.records)}")

    # shape targets: adaptivity and concentration
    late = [r for r in result.records if r.iteration >= N_ITERATIONS * 3 // 4]
    late_success = sum(r.success for r in late) / len(late)
    early = [r for r in result.records if r.iteration < N_ITERATIONS // 4]
    early_success = sum(r.success for r in early) / len(early)
    print(f"success rate: early {early_success:.2f} -> late {late_success:.2f}")
    assert late_success >= early_success  # it learned
    assert 0 < result.n_successes < len(result.records)  # the wall is inside the sweep
    trace = result.best_reward_by_iteration()
    assert trace == sorted(trace)
    # TS concentrates late pulls on a few good arms while still exploring
    late_arms = [r.arm for r in late]
    top_two = np.bincount(late_arms, minlength=len(FREQUENCIES)).argsort()[-2:]
    concentration = sum(late_arms.count(int(a)) for a in top_two) / len(late_arms)
    print(f"late-phase concentration on top-2 arms: {concentration:.2f}")
    assert concentration > 0.5


def test_fig7_ts_robustness(benchmark):
    """Sec 3.1: TS more robust than softmax / e-greedy across settings.

    Measured on synthetic flow-shaped bandits (success prob x value) so
    many settings are affordable; robustness = worst mean regret over
    the instance family.
    """
    instances = [
        [0.98, 0.95, 0.85, 0.6, 0.25, 0.05],
        [0.9, 0.8, 0.7, 0.6, 0.5, 0.4],
        [0.3, 0.3, 0.3, 0.3, 0.3, 0.9],
        [0.55, 0.5, 0.45, 0.5, 0.55, 0.5],
        [1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
    ]
    values = [0.4, 0.52, 0.64, 0.76, 0.88, 1.0]

    def profile(factory):
        means = []
        for probs in instances:
            regrets = []
            for seed in range(6):
                env = SyntheticBanditEnvironment(probs, values, seed=seed)
                result = BatchBanditScheduler(40, 5).run(factory(6, seed + 1), env)
                regrets.append(expected_total_regret(result, env.true_means))
            means.append(float(np.mean(regrets)))
        return means

    ts = benchmark.pedantic(profile, args=(lambda n, s: ThompsonSampling(n, seed=s),),
                            rounds=1, iterations=1)
    sm = profile(lambda n, s: Softmax(n, temperature=0.1, seed=s))
    eg = profile(lambda n, s: EpsilonGreedy(n, epsilon=0.1, seed=s))

    print_header("Sec 3.1: policy robustness (mean regret per instance)")
    print(f"{'instance':>9} {'thompson':>9} {'softmax':>9} {'eps-greedy':>11}")
    for i in range(len(instances)):
        print(f"{i:>9} {ts[i]:>9.1f} {sm[i]:>9.1f} {eg[i]:>11.1f}")
    print(f"{'worst':>9} {max(ts):>9.1f} {max(sm):>9.1f} {max(eg):>11.1f}")

    # robustness: TS's worst case is never the overall worst, and is
    # within a small factor of the best alternative's worst case —
    # without any per-instance tuning (softmax/eps-greedy keep their
    # stock parameters, as a no-human-in-the-loop deployment would)
    assert max(ts) < max(max(sm), max(eg))
    assert max(ts) <= 1.2 * min(max(sm), max(eg))
