"""Gate ``BENCH_sta.json`` against the committed baseline.

``make bench-trajectory`` runs both STA benchmarks, which merge their
summaries into ``BENCH_sta.json``; this script compares that file to
``benchmarks/BENCH_sta_baseline.json`` and exits 1 on regression.

What counts as a regression is chosen to be machine-independent:

- correctness flags (``bit_identical``, ``qor_identical``) must hold —
  they are deterministic;
- the incremental ``work_ratio`` is a runtime-*proxy* ratio, also
  deterministic: it must stay within ``--proxy-tolerance`` (default
  25%) of the baseline and above the 2x floor;
- the vectorized ``speedup`` is a wall-clock ratio measured on the
  same machine in the same run, so it cancels absolute machine speed
  but still jitters under CI load: it only has to clear the 5x floor
  and ``--speedup-fraction`` (default 35%) of the baseline.

Usage::

    python benchmarks/check_bench_regression.py BENCH_sta.json \
        benchmarks/BENCH_sta_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("current", help="freshly generated BENCH_sta.json")
    parser.add_argument("baseline", help="committed baseline json")
    parser.add_argument("--proxy-tolerance", type=float, default=0.25,
                        help="allowed fractional drop in work_ratio")
    parser.add_argument("--speedup-fraction", type=float, default=0.35,
                        help="required fraction of the baseline speedup")
    parser.add_argument("--speedup-floor", type=float, default=5.0,
                        help="absolute minimum vectorized speedup")
    args = parser.parse_args(argv)

    with open(args.current) as fh:
        current = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)

    failures = []

    vec_now = current.get("vectorized")
    vec_base = baseline.get("vectorized")
    if vec_now is None or vec_base is None:
        failures.append("missing 'vectorized' section")
    else:
        if not vec_now.get("bit_identical"):
            failures.append("vectorized kernel is no longer bit-identical")
        floor = max(args.speedup_floor,
                    args.speedup_fraction * vec_base["speedup"])
        if vec_now["speedup"] < floor:
            failures.append(
                f"vectorized speedup regressed: {vec_now['speedup']:.1f}x "
                f"< {floor:.1f}x (baseline {vec_base['speedup']:.1f}x)")
        print(f"vectorized: {vec_now['speedup']:.1f}x "
              f"(baseline {vec_base['speedup']:.1f}x, floor {floor:.1f}x)")

    inc_now = current.get("incremental")
    inc_base = baseline.get("incremental")
    if inc_now is None or inc_base is None:
        failures.append("missing 'incremental' section")
    else:
        if not inc_now.get("qor_identical"):
            failures.append("incremental STA changed the optimizer QoR")
        floor = max(2.0, (1.0 - args.proxy_tolerance) * inc_base["work_ratio"])
        if inc_now["work_ratio"] < floor:
            failures.append(
                f"incremental work_ratio regressed: "
                f"{inc_now['work_ratio']:.2f}x < {floor:.2f}x "
                f"(baseline {inc_base['work_ratio']:.2f}x)")
        print(f"incremental: {inc_now['work_ratio']:.2f}x less timing work "
              f"(baseline {inc_base['work_ratio']:.2f}x, floor {floor:.2f}x)")

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("OK: no regression vs committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
