"""Gate a benchmark JSON against its committed baseline.

``make bench-trajectory`` runs the STA, place/route and lint-analyzer
benchmarks, which merge their summaries into ``BENCH_sta.json`` /
``BENCH_place_route.json`` / ``BENCH_lint.json``; this script compares
such a file to its committed baseline
(``benchmarks/BENCH_*_baseline.json``) and exits 1 on regression.  The baseline decides which sections are required: any
section present in the baseline must be present — and healthy — in the
current file, so the one script gates both benchmark families.

What counts as a regression is chosen to be machine-independent:

- correctness flags (``bit_identical``, ``qor_identical``) must hold —
  they are deterministic;
- ``work_ratio`` sections are runtime-*proxy* ratios, also
  deterministic: each must stay within ``--proxy-tolerance`` (default
  25%) of the baseline and above its absolute floor (2x for the
  incremental-STA section, 1.3x for the DSE kill-policy section);
- wall-clock ``speedup`` ratios are measured on the same machine in
  the same run, which cancels absolute machine speed but still jitters
  under CI load: each only has to clear its section's absolute floor
  (5x for the vectorized-STA and annealer kernels and the warm lint
  cache, 3x for global routing) and ``--speedup-fraction`` (default
  35%) of the baseline.

Usage::

    python benchmarks/check_bench_regression.py BENCH_sta.json \
        benchmarks/BENCH_sta_baseline.json
    python benchmarks/check_bench_regression.py BENCH_place_route.json \
        benchmarks/BENCH_place_route_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys

# wall-clock sections: name -> absolute speedup floor
WALL_FLOORS = {
    "vectorized": 5.0,
    "annealer": 5.0,
    "groute": 3.0,
    "lint": 5.0,
    "metrics": 3.0,
}

# runtime-proxy sections: name -> absolute work_ratio floor.  These are
# deterministic (simulated tool cost, not wall clock): "incremental" is
# timing work avoided by dirty-cone STA, "dse" is router work avoided
# by the online kill policy at unchanged best QoR.
PROXY_FLOORS = {
    "incremental": 2.0,
    "dse": 1.3,
}

#: what a broken qor_identical flag means, per proxy section
_PROXY_QOR_MESSAGES = {
    "incremental": "incremental STA changed the optimizer QoR",
    "dse": "the kill policy changed the campaign's best QoR",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("current", help="freshly generated benchmark json")
    parser.add_argument("baseline", help="committed baseline json")
    parser.add_argument("--proxy-tolerance", type=float, default=0.25,
                        help="allowed fractional drop in work_ratio")
    parser.add_argument("--speedup-fraction", type=float, default=0.35,
                        help="required fraction of the baseline speedup")
    args = parser.parse_args(argv)

    with open(args.current) as fh:
        current = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)

    failures = []

    for section, abs_floor in WALL_FLOORS.items():
        base = baseline.get(section)
        if base is None:
            continue  # this baseline does not track the section
        now = current.get(section)
        if now is None:
            failures.append(f"missing '{section}' section")
            continue
        if not now.get("bit_identical"):
            failures.append(f"{section} kernel is no longer bit-identical")
        floor = max(abs_floor, args.speedup_fraction * base["speedup"])
        if now["speedup"] < floor:
            failures.append(
                f"{section} speedup regressed: {now['speedup']:.1f}x "
                f"< {floor:.1f}x (baseline {base['speedup']:.1f}x)")
        print(f"{section}: {now['speedup']:.1f}x "
              f"(baseline {base['speedup']:.1f}x, floor {floor:.1f}x)")

    for section, abs_floor in PROXY_FLOORS.items():
        base = baseline.get(section)
        if base is None:
            continue
        now = current.get(section)
        if now is None:
            failures.append(f"missing '{section}' section")
            continue
        if not now.get("qor_identical"):
            failures.append(_PROXY_QOR_MESSAGES[section])
        floor = max(abs_floor,
                    (1.0 - args.proxy_tolerance) * base["work_ratio"])
        if now["work_ratio"] < floor:
            failures.append(
                f"{section} work_ratio regressed: "
                f"{now['work_ratio']:.2f}x < {floor:.2f}x "
                f"(baseline {base['work_ratio']:.2f}x)")
        print(f"{section}: {now['work_ratio']:.2f}x less executed "
              f"work (baseline {base['work_ratio']:.2f}x, "
              f"floor {floor:.2f}x)")

    if not failures and not any(
            key in baseline for key in (*WALL_FLOORS, *PROXY_FLOORS)):
        failures.append("baseline has no recognized benchmark sections")

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("OK: no regression vs committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
