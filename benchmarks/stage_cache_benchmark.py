"""Stage-prefix cache benchmark: a router-knob sweep over a fixed design.

The dominant campaign access pattern (paper Sec 2: exploring a P&R
tool's ">10,000 command-option combinations") perturbs *downstream*
knobs far more often than upstream ones.  This benchmark runs exactly
that: a sweep over detailed-router knobs (``router_effort`` x
``router_max_iterations``) plus a few optimizer points, at one fixed
``(design, seed)``, with and without the stage-prefix cache — every
job shares the synth/floorplan/place/cts/groute prefix, so with the
cache on only the changed suffix executes.

The base option point uses a high placement effort
(``placer_moves_per_cell``), the regime where prefix reuse pays most:
saved work scales with the cost of the shared prefix relative to the
uncacheable detailed-route + signoff suffix.

Checks (exit code 1 on failure):

- results are bit-identical with the cache on and off;
- full mode: the cache-off campaign executes >= 2x the runtime_proxy
  work of the cache-on campaign;
- smoke mode (``--smoke``): at least one prefix hit is reported
  (each worker's cache serves the jobs it executes, so with more jobs
  than workers a hit is guaranteed by pigeonhole).

Per-job stage events (``exec.stage.hit`` / ``exec.stage.miss`` /
``stage.runtime_proxy``) are collected through METRICS and summarized,
so the saved work is visible the same way campaigns see it.

Usage::

    PYTHONPATH=src python benchmarks/stage_cache_benchmark.py
    PYTHONPATH=src python benchmarks/stage_cache_benchmark.py --smoke --workers 2
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.generators import design_profile
from repro.core.parallel import FlowExecutor, FlowJob
from repro.eda.flow import FlowOptions
from repro.metrics import MetricsCollector, MetricsServer


def sweep_jobs(design, seed: int, smoke: bool):
    """Router/optimizer-knob sweep at one fixed (design, seed)."""
    base = FlowOptions(placer_moves_per_cell=32)
    points = [
        base.with_(router_effort=effort, router_max_iterations=iterations)
        for effort in (0.3, 0.5, 0.7, 0.9)
        for iterations in (10, 20, 30)
    ]
    if not smoke:
        points += [
            base.with_(opt_passes=passes, opt_guardband=guardband)
            for passes in (4, 8)
            for guardband in (0.0, 20.0)
        ]
    else:
        points = points[:6]
    return [FlowJob(design, options, seed) for options in points]


def run_campaign(jobs, workers: int, stage_cache: bool):
    """One sweep through a fresh executor; returns (results, stats, server)."""
    server = MetricsServer()
    with MetricsCollector(server, cross_process=workers > 1) as collector:
        # whole-run cache off: every job is a distinct option point, so
        # only the stage-prefix tier can save work here
        with FlowExecutor(n_workers=workers, cache=False, collector=collector,
                          stage_cache=stage_cache) as executor:
            results = executor.run_jobs(jobs)
            stats = executor.stats
        collector.flush()
    return results, stats, server


def metric_total(server, name: str) -> float:
    return sum(record.value for record in server.query(metric=name))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--design", default="PHY", help="design profile name")
    parser.add_argument("--seed", type=int, default=3, help="flow seed (fixed across the sweep)")
    parser.add_argument("--workers", type=int, default=1, help="executor workers")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI sweep: assert >=1 prefix hit instead of the 2x ratio")
    args = parser.parse_args(argv)

    design = design_profile(args.design)
    jobs = sweep_jobs(design, args.seed, args.smoke)
    print(f"sweep: {len(jobs)} jobs on {design.name} seed={args.seed} "
          f"workers={args.workers} (router/opt knobs only)")

    baseline, stats_off, _ = run_campaign(jobs, args.workers, stage_cache=False)
    cached, stats_on, server = run_campaign(jobs, args.workers, stage_cache=True)

    if baseline != cached:
        print("FAIL: stage cache changed results")
        return 1
    print("results bit-identical with and without the stage cache")

    hits = metric_total(server, "exec.stage.hit")
    misses = metric_total(server, "exec.stage.miss")
    executed = metric_total(server, "stage.runtime_proxy")
    print(f"stage events (METRICS): exec.stage.hit={hits:.0f} "
          f"exec.stage.miss={misses:.0f} stage.runtime_proxy={executed:.0f}")
    print(f"cache off: {stats_off.summary()}")
    print(f"cache on : {stats_on.summary()}")

    work_off = stats_off.runtime_proxy_executed
    work_on = stats_on.runtime_proxy_executed
    ratio = work_off / work_on if work_on else float("inf")
    print(f"runtime_proxy executed: off={work_off:.0f} on={work_on:.0f} "
          f"-> {ratio:.2f}x less work with the stage cache")

    if args.smoke:
        if stats_on.stage_hits < 1 or hits < 1:
            print("FAIL: smoke sweep reported no prefix hits")
            return 1
        print(f"OK: {stats_on.stage_hits} prefix stage hits reported")
        return 0
    if ratio < 2.0:
        print("FAIL: expected the stage cache to save >=2x runtime_proxy work")
        return 1
    print("OK: >=2x work saved")
    return 0


if __name__ == "__main__":
    sys.exit(main())
