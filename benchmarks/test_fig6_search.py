"""Figure 6: go-with-the-winners and adaptive multistart.

Paper shape: (a) GWTW — cloning the most promising threads while
terminating others matches or beats independent threads at equal move
budget; (b) adaptive multistart — local minima of the bisection
landscape show "big valley" structure (cost correlates with distance to
the best minimum), and consensus-derived starts beat random starts at
equal local-search budget.
"""

import numpy as np
from conftest import print_header

from repro.core.search import (
    AdaptiveMultistart,
    BisectionProblem,
    big_valley_correlation,
    go_with_the_winners,
    independent_multistart,
)
from repro.core.search.multistart import random_multistart

N_SEEDS = 8


def _problem():
    return BisectionProblem.random_community(
        n_nodes=128, n_communities=16, p_in=0.55, p_out=0.08, seed=3
    )


def test_fig6a_gwtw(benchmark):
    problem = _problem()

    def run_pair(seed):
        gwtw = go_with_the_winners(
            problem, n_threads=8, n_stages=16, steps_per_stage=25, seed=seed
        )
        plain = independent_multistart(
            problem, n_threads=8, n_stages=16, steps_per_stage=25, seed=seed
        )
        return gwtw.best_cost, plain.best_cost

    first = benchmark.pedantic(run_pair, args=(0,), rounds=1, iterations=1)
    pairs = [first] + [run_pair(seed) for seed in range(1, N_SEEDS)]
    gwtw_costs = [p[0] for p in pairs]
    plain_costs = [p[1] for p in pairs]

    print_header("Figure 6(a): GWTW vs independent multistart (cut cost)")
    print(f"{'seed':>5} {'GWTW':>8} {'independent':>12}")
    for seed, (g, p) in enumerate(pairs):
        print(f"{seed:>5} {g:>8.0f} {p:>12.0f}")
    print(f"\nmean: GWTW {np.mean(gwtw_costs):.1f} vs "
          f"independent {np.mean(plain_costs):.1f} (same move budget)")

    assert np.mean(gwtw_costs) <= np.mean(plain_costs) + 1.5


def test_fig6b_adaptive_multistart(benchmark):
    problem = _problem()

    corr, minima, costs = benchmark.pedantic(
        big_valley_correlation, args=(problem,),
        kwargs={"n_starts": 50, "seed": 4}, rounds=1, iterations=1,
    )

    print_header("Figure 6(b): big-valley structure and adaptive multistart")
    best = minima[int(np.argmin(costs))]
    print("local minima: cost vs distance-to-best (sample)")
    order = np.argsort(costs)
    for idx in order[::10]:
        print(f"  cost={costs[idx]:>6.0f}  distance={problem.distance(minima[idx], best):>4}")
    print(f"\nbig-valley correlation corr(cost, distance) = {corr:.2f}")

    ams = AdaptiveMultistart(n_initial=12, n_adaptive_rounds=4, starts_per_round=4)
    budget = 12 + 4 * 4
    adaptive = [ams.run(problem, seed=s).best_cost for s in range(N_SEEDS)]
    random_ = [random_multistart(problem, budget, seed=s).best_cost for s in range(N_SEEDS)]
    print(f"adaptive multistart best (mean over {N_SEEDS} seeds): {np.mean(adaptive):.1f}")
    print(f"random multistart best   (same {budget}-search budget): {np.mean(random_):.1f}")

    assert corr > 0.2  # the big valley exists
    assert np.mean(adaptive) <= np.mean(random_) + 1.0
