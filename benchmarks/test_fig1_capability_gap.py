"""Figure 1: the Design Capability Gap (available vs realized density).

Paper shape: both densities scale up 1995-2015, but realized density
falls increasingly behind after ~2005 (non-ideal A-factor, growing
uncore), opening a widening gap.
"""

from conftest import print_header

from repro.core.costmodel import CapabilityGapModel


def test_fig1_capability_gap(benchmark):
    model = CapabilityGapModel()
    years = list(range(1995, 2016))

    series = benchmark(model.figure1_series, years)

    print_header("Figure 1: Design Capability Gap (transistors / mm^2)")
    print(f"{'year':>6} {'available':>14} {'realized':>14} {'gap':>6}")
    for i, year in enumerate(series["year"]):
        print(
            f"{year:>6} {series['available'][i]:>14.3e} "
            f"{series['realized'][i]:>14.3e} {series['gap'][i]:>6.2f}"
        )

    # shape assertions (the reproduction targets)
    assert series["gap"][0] < 1.2  # essentially no gap in 1995
    assert series["gap"][-1] > 1.5  # a pronounced gap by 2015
    assert (series["available"] >= series["realized"]).all()
    # both curves still scale up (the gap is a *relative* shortfall)
    assert series["realized"][-1] > 10 * series["realized"][0]
