"""Figure 11 / Sec 4: the METRICS system, end to end.

Paper validation: "Multiple runs were launched with different designs
and different option settings ... mining and sensitivity analyses with
respect to final design QOR enabled prediction of best design-specific
tool option settings.  METRICS was also used to prescribe achievable
clock frequency for given designs."  Plus the METRICS-2.0 upgrade: the
miner's guidance is fed back and applied mid-campaign without a human.
"""

import numpy as np
from conftest import print_header

from repro.bench import pulpino_profile
from repro.eda.flow import FlowOptions
from repro.metrics import (
    AdaptiveFlowSession,
    DataMiner,
    InstrumentedFlow,
    MetricsServer,
)


def test_fig11_metrics_system(benchmark):
    spec = pulpino_profile(scale=0.5)
    session = AdaptiveFlowSession(spec=spec, objective="flow.area", seed=13)

    best = benchmark.pedantic(
        session.run_campaign,
        kwargs={"n_seed": 10, "n_adaptive": 5,
                "base_options": FlowOptions(target_clock_ghz=0.7)},
        rounds=1, iterations=1,
    )

    print_header("Figure 11 / Sec 4: METRICS collection, mining, feedback")
    server = session.server
    print(f"records collected: {len(server)} over {len(server.runs())} runs")

    miner = DataMiner(server, seed=0)
    sens = miner.sensitivity("flow.area", design=spec.name)
    print("\noption sensitivity to final area (|corr|):")
    for option, value in sens.items():
        print(f"  {option:<24} {value:.2f}")

    rec = miner.recommend_options("flow.area", design=spec.name)
    print(f"\nrecommended settings (model R^2 {rec.model_r2:.2f}):")
    for option, value in rec.options.items():
        print(f"  {option:<24} {value:.3f}")
    print(f"predicted area: {rec.predicted_objective:.1f} um^2")

    stats_runs = server.query(design=spec.name, metric="synth.instances")
    features = {
        "synth.instances": stats_runs[0].value,
        "synth.depth": server.query(design=spec.name, metric="synth.depth")[0].value,
        "synth.area": server.query(design=spec.name, metric="synth.area")[0].value,
    }
    freq = miner.prescribe_frequency(features)
    print(f"\nprescribed achievable frequency for this design: {freq:.3f} GHz")

    seed_best = min(
        (r.area for r in session.history[: session.n_seed_runs] if r.success),
        default=float("inf"),
    )
    adaptive_best = min(
        (r.area for r in session.history[session.n_seed_runs :] if r.success),
        default=float("inf"),
    )
    print(f"\nbest successful area: seed phase {seed_best:.1f} -> "
          f"adaptive phase {adaptive_best:.1f} "
          f"(improvement ratio {session.improvement():.3f})")

    # shape targets
    assert len(server) > 300  # rich collection
    assert sens  # sensitivity analysis produced a ranking
    assert 0.2 < freq < 3.0  # a sane prescription
    assert best.area > 0
    assert session.improvement() <= 1.1  # feedback does not hurt, usually helps
