"""Figure 9: DRV progressions over detailed-routing iterations.

Paper shape (log scale, 20 default iterations): a successful run
(green) decays to ~zero; marginal runs decay slowly to a few hundred;
unsuccessful runs (orange/red) plateau high or keep growing — "runs
with an inevitably excessive number of DRVs" that are worth stopping
early.
"""

import numpy as np
from conftest import print_header

from repro.eda.routing import SUCCESS_DRV_THRESHOLD, DetailedRouter

SCENARIOS = [
    ("clean (green)", 0.70),
    ("marginal", 0.95),
    ("congested (orange)", 1.15),
    ("doomed (red)", 1.35),
]


def test_fig9_drv_progressions(benchmark):
    router = DetailedRouter(max_iterations=20)

    def run_all():
        return {
            label: router.route(np.full((16, 16), base), seed=9)
            for label, base in SCENARIOS
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_header("Figure 9: lg(#DRVs) vs router iteration (4 scenarios)")
    print(f"{'iter':>5}", *(f"{label:>20}" for label, _ in SCENARIOS))
    max_len = max(len(r.drvs_per_iteration) for r in results.values())
    for t in range(max_len):
        row = [f"{t:>5}"]
        for label, _ in SCENARIOS:
            series = results[label].drvs_per_iteration
            if t < len(series):
                lg = np.log10(series[t]) if series[t] > 0 else 0.0
                row.append(f"{lg:>20.2f}")
            else:
                row.append(f"{'-':>20}")
        print(" ".join(row))
    print(f"\nfinal DRVs: " + ", ".join(
        f"{label}={results[label].final_drvs}" for label, _ in SCENARIOS))

    clean = results["clean (green)"]
    doomed = results["doomed (red)"]
    congested = results["congested (orange)"]
    # shape targets
    assert clean.final_drvs < SUCCESS_DRV_THRESHOLD  # green succeeds
    assert doomed.final_drvs > 50 * SUCCESS_DRV_THRESHOLD  # red is hopeless
    assert congested.final_drvs > SUCCESS_DRV_THRESHOLD  # orange fails too
    # green decays monotonically-ish: final far below initial
    assert clean.final_drvs < clean.initial_drvs / 10
    # red does NOT decay: it ends at least as high as it started / 2
    assert doomed.final_drvs > doomed.initial_drvs / 2
