"""Figure 4: SOC design today (local minimum) vs future (flip the arrows).

Paper shape: in today's regime, flexibility-driven unpredictability
inflates margins and degrades achieved quality; in the future regime
(many partitions + freedoms-from-choice), predictability rises, margins
fall, and achieved design quality strictly improves.
"""

from conftest import print_header

from repro.core.costmodel import CoevolutionModel


def _run_regimes():
    today = CoevolutionModel("today").fixed_point()
    future = CoevolutionModel("future", partitions=16).fixed_point()
    return today, future


def test_fig4_coevolution(benchmark):
    today, future = benchmark(_run_regimes)

    print_header("Figure 4: coevolution fixed points (0-1 scale)")
    print(f"{'':>16} {'flexibility':>12} {'predictability':>15} "
          f"{'margins':>8} {'quality':>8}")
    for name, state in (("today (a)", today), ("future (b)", future)):
        print(
            f"{name:>16} {state.flexibility:>12.2f} "
            f"{state.predictability:>15.2f} {state.margin:>8.2f} "
            f"{state.quality:>8.2f}"
        )

    # partitioning sweep: more partitions -> better future quality
    print("\nfuture-regime quality vs #partitions:")
    for partitions in (1, 4, 16, 64):
        q = CoevolutionModel("future", partitions=partitions).fixed_point().quality
        print(f"  partitions={partitions:>3}: quality={q:.3f}")

    assert future.quality > today.quality
    assert future.predictability > today.predictability
    assert future.margin < today.margin
    assert future.flexibility < today.flexibility
    q1 = CoevolutionModel("future", partitions=1).fixed_point().quality
    q64 = CoevolutionModel("future", partitions=64).fixed_point().quality
    assert q64 >= q1
