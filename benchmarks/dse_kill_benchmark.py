"""DSE kill-policy benchmark: a sweep campaign with and without killing.

A design-space sweep inevitably launches some doomed points — over-
utilized, under-efforted configurations whose detailed-route DRVs
diverge instead of converging, burning the router's full iteration
budget before failing anyway (paper Sec 5: predict-and-kill doomed
runs).  This benchmark runs the same fixed sweep twice through
:class:`~repro.dse.DSEEngine` (``strategy="sweep"``, so the evaluated
set and every run seed are fixed up front, independent of outcomes):

- blind: every run executes to its natural end — doomed points pay
  the full ``router_max_iterations`` leash;
- killing: the MDP strategy-card policy (``train_kill_policy("mdp")``)
  rides the executor's ``stop_callback`` path and aborts a run as soon
  as its DRV history says it is doomed.

The sweep mixes genuinely divergent points (high utilization, low
router effort, a long 400-iteration leash) with healthy points that
converge in a handful of iterations.  Doomed points fail under both
campaigns — killed early or cap-exhausted late — so killing is a pure
cost optimization, which is exactly what the checks assert (exit code
1 on failure):

- **QoR identical**: both campaigns deliver the same best result and
  the same best score (the winner is a healthy run the policy never
  touches);
- every doomed point is killed and no healthy point is;
- the blind campaign executes >= 1.3x more ``runtime_proxy`` than the
  killing campaign (``ExecutorStats.runtime_proxy_executed``).

Smoke mode (``--smoke``) drops to 2 doomed + 1 healthy point for CI
while still asserting everything above.  ``--json PATH`` merges a
machine-readable summary into ``PATH`` under the ``"dse"`` key (see
``make bench-trajectory`` / ``benchmarks/check_bench_regression.py``).

Usage::

    PYTHONPATH=src python benchmarks/dse_kill_benchmark.py
    PYTHONPATH=src python benchmarks/dse_kill_benchmark.py --smoke
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.generators import design_profile
from repro.core.parallel import FlowExecutor
from repro.dse import DSEEngine, train_kill_policy

#: (target GHz, utilization, router effort) of points whose DRVs
#: diverge — the router never closes, so the 400-iteration leash is
#: pure waste that the kill policy can reclaim.
DOOMED = [
    (0.90, 0.92, 0.20),
    (0.85, 0.90, 0.25),
    (0.88, 0.91, 0.20),
    (0.92, 0.90, 0.25),
]

#: target GHz of healthy points; they converge within a short leash
#: and one of them is the campaign's best run.
HEALTHY = [0.5, 0.6]


def sweep_points(smoke: bool):
    doomed = DOOMED[:2] if smoke else DOOMED
    healthy = HEALTHY[:1] if smoke else HEALTHY
    points = [
        dict(target_clock_ghz=target, synth_effort=0.1, utilization=util,
             router_effort=effort, router_max_iterations=400)
        for target, util, effort in doomed
    ]
    points += [
        dict(target_clock_ghz=target, synth_effort=0.5, utilization=0.65,
             router_effort=0.8, router_max_iterations=20)
        for target in healthy
    ]
    return points, len(doomed)


def run_campaign(spec, points, seed: int, kill_policy):
    with FlowExecutor(n_workers=1, cache=None) as executor:
        engine = DSEEngine(strategy="sweep", executor=executor,
                           kill_policy=kill_policy,
                           params={"points": points, "n_concurrent": 3})
        result = engine.run(spec, seed=seed)
        return result, executor.stats.runtime_proxy_executed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--design", default="MCU", help="design profile")
    parser.add_argument("--seed", type=int, default=11, help="campaign seed")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI run: 3 points, same assertions")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="merge results under 'dse' in PATH")
    args = parser.parse_args(argv)

    spec = design_profile(args.design)
    points, n_doomed = sweep_points(args.smoke)
    policy = train_kill_policy("mdp", seed=0)
    print(f"{spec.name}: sweeping {len(points)} points "
          f"({n_doomed} doomed on a 400-iteration leash), seed={args.seed}")

    killed, proxy_kill = run_campaign(spec, points, args.seed, policy)
    blind, proxy_blind = run_campaign(spec, points, args.seed, None)

    # --- QoR identity -----------------------------------------------------
    qor_identical = (killed.best_result == blind.best_result
                     and killed.best_score == blind.best_score)
    print(f"best score: killing={killed.best_score:.4f} "
          f"blind={blind.best_score:.4f}")
    if not qor_identical:
        print("FAIL: the kill policy changed the campaign's best result")
        return 1
    print("best result bit-identical between campaigns")

    # --- kill precision ---------------------------------------------------
    print(f"killed {killed.n_killed}/{n_doomed} doomed runs, saving "
          f"{killed.kill_proxy_saved:.0f} router proxy")
    if killed.n_killed != n_doomed:
        print(f"FAIL: expected exactly the {n_doomed} doomed runs killed, "
              f"got {killed.n_killed}")
        return 1

    # --- cost -------------------------------------------------------------
    ratio = proxy_blind / proxy_kill if proxy_kill else float("inf")
    print(f"executed runtime_proxy: blind={proxy_blind:.0f} "
          f"killing={proxy_kill:.0f} -> {ratio:.2f}x less executed work")
    if args.json:
        from vectorized_sta_benchmark import merge_json

        merge_json(args.json, "dse", {
            "design": spec.name,
            "points": len(points),
            "n_doomed": n_doomed,
            "n_killed": killed.n_killed,
            "proxy_kill": round(proxy_kill, 1),
            "proxy_blind": round(proxy_blind, 1),
            "kill_proxy_saved": round(killed.kill_proxy_saved, 1),
            "work_ratio": round(ratio, 2),
            "qor_identical": qor_identical,
        })
        print(f"wrote 'dse' section to {args.json}")
    if ratio < 1.3:
        print("FAIL: expected >=1.3x less executed runtime_proxy with "
              "the kill policy")
        return 1
    print("OK: >=1.3x executed work saved at identical best QoR")
    return 0


if __name__ == "__main__":
    sys.exit(main())
