"""Sec 3.3: prediction over "longer and longer ropes" of design steps.

Paper claim: one-pass design requires predicting end-of-flow outcomes
from earlier and earlier flow stages — the reviewed works form a
progression of longer ropes (trial route -> detailed route; clock ECO
-> timing; netlist+floorplan -> IR-aware timing).  Shape targets: the
end-of-flow outcome is predictable well before the flow ends, accuracy
degrades gracefully (not catastrophically) as the rope lengthens, and a
pre-placement model can veto doomed P&R runs profitably.
"""

import numpy as np
from conftest import print_header

from repro.bench.generators import artificial_profile
from repro.core.prediction import (
    FLOW_STAGES,
    FloorplanDoomPredictor,
    build_rope_dataset,
    span_accuracy_profile,
)


def test_longer_ropes(benchmark):
    dataset = benchmark.pedantic(
        build_rope_dataset, kwargs={"n_runs": 90, "seed": 21},
        rounds=1, iterations=1,
    )
    train, test = dataset.split(0.7, seed=0)

    print_header("Sec 3.3: accuracy vs rope length (predicting signoff WNS)")
    print(f"{'stages seen':>12} {'rope':>28} {'R^2':>7} {'MAE ps':>8}")
    profiles = {}
    for target in ("wns", "area"):
        profiles[target] = span_accuracy_profile(train, test, target, seed=0)
    for entry in profiles["wns"]:
        span = int(entry["span"])
        rope = " -> ".join(FLOW_STAGES[:span])
        if len(rope) > 28:
            rope = "... " + rope[-24:]
        print(f"{span:>12} {rope:>28} {entry['r2']:>7.2f} {entry['mae']:>8.1f}")

    print("\npredicting final area:")
    for entry in profiles["area"]:
        print(f"  stages {int(entry['span'])}: R^2 {entry['r2']:.2f}, "
              f"MAE {entry['mae']:.1f} um^2")

    wns_profile = profiles["wns"]
    # the longest rope (synth only + options) still predicts something
    assert wns_profile[0]["r2"] > 0.1
    # the shortest rope (all stages seen) predicts well
    assert wns_profile[-1]["r2"] > 0.5
    # degradation is graceful: no span does catastrophically worse than
    # the next-longer-information span
    r2s = [e["r2"] for e in wns_profile]
    assert min(r2s) > min(0.0, r2s[-1])
    # area is pinned by synthesis: even the longest rope is strong
    assert profiles["area"][0]["r2"] > 0.5


def test_floorplan_doom_veto(benchmark):
    specs = [artificial_profile(i) for i in range(4)]
    predictor = FloorplanDoomPredictor(threshold=0.4, seed=0)
    runs = benchmark.pedantic(
        predictor.collect_training_runs, args=(specs,),
        kwargs={"n_runs": 70, "seed": 22}, rounds=1, iterations=1,
    )
    predictor.fit_from_results(runs[:50])
    report = predictor.evaluate(runs[50:])

    print_header("Sec 3.3: doomed-floorplan veto (pre-placement prediction)")
    print(f"held-out runs: {report['n']}")
    print(f"accuracy: {report['accuracy']:.2f}")
    print(f"doomed runs caught before placement: {report['caught_doomed']}")
    print(f"good runs wrongly vetoed: {report['vetoed_good']}")
    print(f"doomed runs missed: {report['missed_doomed']}")

    route_work = [
        sum(l.runtime_proxy for l in r.logs if l.step in ("place", "groute", "droute"))
        for r in runs[50:]
        if not r.routed
    ]
    if route_work and report["caught_doomed"]:
        print(f"\nper doomed run, the veto saves ~{np.mean(route_work):.0f} "
              f"place+route work units")

    assert report["accuracy"] > 0.6
    assert report["caught_doomed"] >= 1
