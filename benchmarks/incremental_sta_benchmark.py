"""Incremental-STA benchmark: timing closure on PULPino, two ways.

The optimizer's inner loop is the dominant timing consumer in the flow
(paper Sec 3: repeated analyze -> tweak -> re-analyze cycles).  This
benchmark runs :class:`~repro.eda.opt.TimingOptimizer` to convergence
on the PULPino profile twice from identical starting states:

- ``incremental=False``: the historical behaviour — every pass pays a
  full STA run (the ``analyze``-per-pass loop);
- ``incremental=True``: one ``full_propagate`` up front, then each
  pass's touched instances go through ``TimingGraph.update`` and only
  the dirty fanout cones are re-propagated.

Checks (exit code 1 on failure):

- final QoR is **bit-identical**: same WNS, same endpoint slacks, same
  upsize/downsize/VT-swap decisions, same area and leakage deltas —
  the incremental path is a pure cost optimization;
- the incremental run executes >= 2x less timing ``runtime_proxy``
  than the full-analysis run (``StaStats.proxy_executed``).

Smoke mode (``--smoke``) shrinks the design so the whole benchmark
runs in a few seconds for CI while still asserting everything above.
``--json PATH`` merges a machine-readable summary into ``PATH`` under
the ``"incremental"`` key (see ``make bench-trajectory``).

Usage::

    PYTHONPATH=src python benchmarks/incremental_sta_benchmark.py
    PYTHONPATH=src python benchmarks/incremental_sta_benchmark.py --smoke
"""

from __future__ import annotations

import argparse
import copy
import sys

from repro.bench.generators import pulpino_profile
from repro.eda.cts import ClockTreeSynthesizer
from repro.eda.floorplan import make_floorplan
from repro.eda.library import make_default_library
from repro.eda.opt import TimingOptimizer
from repro.eda.placement import QuadraticPlacer
from repro.eda.routing import GlobalRouter
from repro.eda.sta import GraphSTA
from repro.eda.synthesis import synthesize


def build_state(scale: float, seed: int):
    """Synthesize and implement PULPino up to the opt stage's inputs."""
    lib = make_default_library()
    spec = pulpino_profile(scale)
    netlist = synthesize(spec, lib, effort=0.6, seed=seed)
    floorplan = make_floorplan(netlist, utilization=0.7)
    placement = QuadraticPlacer().place(netlist, floorplan, seed=seed + 1)
    clock_tree = ClockTreeSynthesizer(0.5).synthesize(netlist, placement, seed + 2)
    congestion = GlobalRouter().route(placement, seed=seed + 3).congestion_map()
    return netlist, placement, clock_tree.skews, congestion


def run_optimizer(state, clock_period: float, seed: int, incremental: bool):
    netlist, placement, skews, congestion = copy.deepcopy(state)
    result = TimingOptimizer(max_passes=30, cells_per_pass=8,
                             guardband=10.0).optimize(
        netlist, placement, clock_period, GraphSTA(), skews, congestion,
        seed, incremental=incremental,
    )
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="PULPino profile scale factor")
    parser.add_argument("--clock", type=float, default=None,
                        help="clock period in ps (default: 90%% of the "
                             "unoptimized critical delay, so the optimizer "
                             "works the timing wall)")
    parser.add_argument("--seed", type=int, default=7, help="flow seed")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI run: scale 0.5, same assertions")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="merge results under 'incremental' in PATH")
    args = parser.parse_args(argv)

    scale = 0.5 if args.smoke else args.scale
    state = build_state(scale, args.seed)
    if args.clock is not None:
        clock = args.clock
    else:
        # probe the unoptimized critical delay and target 90% of it:
        # failing timing puts the optimizer in its fix-timing regime,
        # the access pattern incremental STA exists for (few touched
        # cells per pass, small dirty cones)
        netlist, placement, skews, congestion = state
        probe = GraphSTA().analyze(netlist, placement, 10_000.0, skews, congestion)
        critical = 10_000.0 - probe.worst_endpoint().slack
        clock = round(0.9 * critical)
    n_insts = len(state[0].instances)
    print(f"pulpino scale={scale} ({n_insts} instances), clock={clock:.0f} ps, "
          f"seed={args.seed}")

    full = run_optimizer(state, clock, args.seed, incremental=False)
    incr = run_optimizer(state, clock, args.seed, incremental=True)

    # --- QoR bit-identity -------------------------------------------------
    same_wns = full.final_report.wns == incr.final_report.wns
    same_slacks = all(
        full.final_report.endpoints[name].slack == ep.slack
        for name, ep in incr.final_report.endpoints.items()
    ) and list(full.final_report.endpoints) == list(incr.final_report.endpoints)
    same_decisions = (
        full.passes == incr.passes
        and full.upsizes == incr.upsizes
        and full.downsizes == incr.downsizes
        and full.vt_swaps == incr.vt_swaps
        and full.history == incr.history
    )
    same_power = (full.area_delta == incr.area_delta
                  and full.leakage_delta == incr.leakage_delta)
    print(f"final WNS: full={full.final_report.wns:.3f} "
          f"incr={incr.final_report.wns:.3f}")
    print(f"decisions: {full.passes} passes, {full.upsizes} upsizes, "
          f"{full.downsizes} downsizes, {full.vt_swaps} VT swaps")
    if not (same_wns and same_slacks and same_decisions and same_power):
        print("FAIL: incremental timing changed the optimizer's outcome")
        return 1
    print("final QoR bit-identical (WNS, endpoint slacks, decisions, "
          "area/leakage deltas)")

    # --- cost ------------------------------------------------------------
    work_full = full.sta_stats.proxy_executed
    work_incr = incr.sta_stats.proxy_executed
    ratio = work_full / work_incr if work_incr else float("inf")
    print(f"timing runtime_proxy: full={work_full:.0f} incr={work_incr:.0f} "
          f"-> {ratio:.2f}x less timing work")
    print(f"incremental kernel: {incr.sta_stats.full_propagates} full "
          f"propagations, {incr.sta_stats.incremental_updates} updates, "
          f"{incr.sta_stats.nodes_propagated} nodes re-propagated "
          f"(of {n_insts * incr.sta_stats.incremental_updates} "
          f"full-repropagation equivalent)")
    qor_identical = bool(same_wns and same_slacks and same_decisions
                         and same_power)
    if args.json:
        from vectorized_sta_benchmark import merge_json

        merge_json(args.json, "incremental", {
            "design": "pulpino",
            "scale": scale,
            "instances": n_insts,
            "proxy_full": work_full,
            "proxy_incremental": work_incr,
            "work_ratio": round(ratio, 2),
            "updates": incr.sta_stats.incremental_updates,
            "qor_identical": qor_identical,
        })
        print(f"wrote 'incremental' section to {args.json}")
    if incr.sta_stats.incremental_updates < 1:
        print("FAIL: the incremental path never exercised update()")
        return 1
    if ratio < 2.0:
        print("FAIL: expected >=2x less timing runtime_proxy with the "
              "incremental kernel")
        return 1
    print("OK: >=2x timing work saved at identical QoR")
    return 0


if __name__ == "__main__":
    sys.exit(main())
