"""Place & route kernel benchmark: annealer and global router, fast vs scalar.

PR 7 rewrote the two remaining per-object hot loops of the physical flow
as incremental kernels behind the same ``vectorize=True`` switch the STA
kernel uses:

- ``AnnealingRefiner``: per-move full rescans of every touched net were
  replaced by exclusion-bounding-box move pricing — each (net, pin) slot
  caches the bbox of *all other* pins, so pricing a swap is O(1) per net
  instead of O(fanout), and boxes are rebuilt only on accepted moves.
- ``GlobalRouter``: the per-edge numpy-indexing cost/commit loops were
  replaced by a struct-of-rows kernel with incremental hot-edge counts,
  so congestion-free runs price in O(1) instead of O(run length).

Workloads are chosen to exercise the asymptotics honestly:

- The annealer design is built directly on the :class:`Netlist` API: a
  locality-biased NAND cloud plus a handful of high-fanout control nets
  (reset / scan-enable style, fanout in the hundreds before buffering —
  the tail the synthesis generator's geometric fanout model truncates).
  The scalar annealer rescans those nets on almost every move.
- The router workload is the largest corpus design (GPU shader profile)
  on a fine 64x64 gcell grid, where runs span many edges and congestion
  hot spots exercise the overflow path.

Checks (exit code 1 on failure):

- annealer: refined positions, HPWL, and the evaluated cooling schedule
  are **bit-identical** across kernels; >= 5x faster;
- router: demand grids, wirelength, and congestion map are
  **bit-identical** across kernels; >= 3x faster.

``--json PATH`` merges machine-readable summaries into ``PATH`` under
the ``"annealer"`` and ``"groute"`` keys (see ``make bench-trajectory``);
``--smoke`` reduces repetitions for CI while keeping every assertion.

Usage::

    PYTHONPATH=src python benchmarks/vectorized_place_route_benchmark.py
    PYTHONPATH=src python benchmarks/vectorized_place_route_benchmark.py \
        --smoke --json BENCH_place_route.json
"""

from __future__ import annotations

import argparse
import copy
import gc
import sys
import time

import numpy as np

from repro.bench.generators import design_profile
from repro.eda.floorplan import make_floorplan
from repro.eda.library import make_default_library
from repro.eda.netlist import Netlist
from repro.eda.placement import AnnealingRefiner, QuadraticPlacer
from repro.eda.routing import GlobalRouter
from repro.eda.synthesis import synthesize

from vectorized_sta_benchmark import merge_json

N_GATES = 1600
N_CONTROLS = 6
DATA_WINDOW = 24
MOVES_PER_CELL = 12
GROUTE_GRID = 64
GROUTE_TRACKS = 32.0


def build_anneal_placement(seed: int):
    """A NAND cloud with a realistic high-fanout control-net tail.

    Each gate combines a recent data output (short-reach, window-local)
    with one of ``N_CONTROLS`` control nets, so every control net fans
    out to ~``N_GATES / N_CONTROLS`` sinks — the pre-buffering fanout of
    a reset or scan-enable net, which the scalar annealer rescans in
    full on almost every move.
    """
    lib = make_default_library()
    netlist = Netlist("anneal_bench", lib)
    rng = np.random.default_rng(seed)
    for i in range(8):
        netlist.add_primary_input(f"pi{i}")
    netlist.add_primary_input("clk")
    netlist.set_clock("clk")
    nand = lib.pick("NAND2")
    inv = lib.pick("INV")
    control_nets = []
    for c in range(N_CONTROLS):
        inst = netlist.add_instance(f"ctrl{c}", inv, [f"pi{c % 8}"])
        control_nets.append(inst.output_net)
    data = [f"pi{i}" for i in range(8)]
    for g in range(N_GATES):
        d = data[int(rng.integers(max(0, len(data) - DATA_WINDOW), len(data)))]
        ctrl = control_nets[int(rng.integers(N_CONTROLS))]
        inst = netlist.add_instance(f"g{g}", nand, [d, ctrl])
        data.append(inst.output_net)
    netlist.mark_primary_output(data[-1])
    floorplan = make_floorplan(netlist, utilization=0.7)
    return QuadraticPlacer().place(netlist, floorplan, seed=seed + 1)


def build_route_placement(seed: int):
    """The GPU shader profile placed for the routing benchmark."""
    lib = make_default_library()
    spec = design_profile("gpu_shader")
    netlist = synthesize(spec, lib, effort=0.6, seed=seed)
    floorplan = make_floorplan(netlist, utilization=0.7)
    return QuadraticPlacer().place(netlist, floorplan, seed=seed + 1)


def time_anneal(placement, vectorize: bool, seed: int, repeats: int):
    """Best-of-``repeats`` seconds for one ``refine`` on a fresh copy."""
    refiner = AnnealingRefiner(moves_per_cell=MOVES_PER_CELL,
                               vectorize=vectorize)
    best = float("inf")
    result = None
    for _ in range(repeats):
        scratch = copy.deepcopy(placement)
        gc.collect()
        gc.disable()  # keep collector pauses out of the timed window
        try:
            t0 = time.perf_counter()
            hpwl = refiner.refine(scratch, seed=seed)
            best = min(best, time.perf_counter() - t0)
        finally:
            gc.enable()
        result = (scratch, hpwl, refiner.last_schedule)
    return best, result


def time_route(placement, vectorize: bool, seed: int, repeats: int):
    """Best-of-``repeats`` seconds for one global ``route`` call."""
    router = GlobalRouter(nx=GROUTE_GRID, ny=GROUTE_GRID,
                          tracks_per_um=GROUTE_TRACKS, vectorize=vectorize)
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        gc.disable()  # keep collector pauses out of the timed window
        try:
            t0 = time.perf_counter()
            result = router.route(placement, seed=seed)
            best = min(best, time.perf_counter() - t0)
        finally:
            gc.enable()
    return best, result


def anneal_identical(fast, scalar) -> bool:
    (p_fast, h_fast, sched_fast) = fast
    (p_scalar, h_scalar, sched_scalar) = scalar
    if h_fast != h_scalar:
        print("FAIL: annealer HPWL differs between kernels")
        return False
    if p_fast.positions != p_scalar.positions:
        print("FAIL: annealer positions differ between kernels")
        return False
    if sched_fast != sched_scalar:
        print("FAIL: annealer cooling schedules differ between kernels")
        return False
    return True


def route_identical(fast, scalar) -> bool:
    if not (np.array_equal(fast.demand_h, scalar.demand_h)
            and np.array_equal(fast.demand_v, scalar.demand_v)):
        print("FAIL: router demand grids differ between kernels")
        return False
    if fast.wirelength != scalar.wirelength:
        print("FAIL: router wirelength differs between kernels")
        return False
    if not np.array_equal(fast.congestion_map(), scalar.congestion_map()):
        print("FAIL: router congestion maps differ between kernels")
        return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seed", type=int, default=7, help="flow seed")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions (best-of)")
    parser.add_argument("--min-anneal-speedup", type=float, default=5.0,
                        help="required annealer fast/scalar speedup")
    parser.add_argument("--min-groute-speedup", type=float, default=3.0,
                        help="required global-route fast/scalar speedup")
    parser.add_argument("--smoke", action="store_true",
                        help="CI run: fewer repetitions, same assertions")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="merge results under 'annealer'/'groute' in PATH")
    args = parser.parse_args(argv)
    repeats = 2 if args.smoke else args.repeats
    ok = True

    # --- annealer ---------------------------------------------------------
    placement = build_anneal_placement(args.seed)
    n_insts = len(placement.netlist.instances)
    print(f"annealer: anneal_bench ({n_insts} instances, "
          f"{len(placement.netlist.nets)} nets, {N_CONTROLS} control nets "
          f"of fanout ~{N_GATES // N_CONTROLS}), "
          f"moves_per_cell={MOVES_PER_CELL}, best of {repeats}")
    t_fast, fast = time_anneal(placement, True, args.seed + 2, repeats)
    t_scalar, scalar = time_anneal(placement, False, args.seed + 2, repeats)
    anneal_ok = anneal_identical(fast, scalar)
    anneal_speedup = t_scalar / t_fast if t_fast > 0 else float("inf")
    if anneal_ok:
        print("bit-identical: positions, HPWL, and cooling schedule")
    print(f"refine: scalar={t_scalar * 1e3:.1f} ms  "
          f"fast={t_fast * 1e3:.1f} ms  -> {anneal_speedup:.1f}x")
    if args.json:
        merge_json(args.json, "annealer", {
            "design": "anneal_bench",
            "instances": n_insts,
            "scalar_ms": round(t_scalar * 1e3, 4),
            "vectorized_ms": round(t_fast * 1e3, 4),
            "speedup": round(anneal_speedup, 2),
            "bit_identical": anneal_ok,
        })
    if not anneal_ok:
        ok = False
    if anneal_speedup < args.min_anneal_speedup:
        print(f"FAIL: expected >= {args.min_anneal_speedup:.1f}x annealer "
              f"speedup, got {anneal_speedup:.1f}x")
        ok = False

    # --- global router ----------------------------------------------------
    placement = build_route_placement(args.seed)
    n_insts = len(placement.netlist.instances)
    print(f"groute: gpu_shader ({n_insts} instances) on "
          f"{GROUTE_GRID}x{GROUTE_GRID} gcells at "
          f"{GROUTE_TRACKS:g} tracks/um, best of {repeats}")
    t_fast, fast = time_route(placement, True, args.seed + 3, repeats)
    t_scalar, scalar = time_route(placement, False, args.seed + 3, repeats)
    route_ok = route_identical(fast, scalar)
    route_speedup = t_scalar / t_fast if t_fast > 0 else float("inf")
    if route_ok:
        print("bit-identical: demand grids, wirelength, congestion map")
    print(f"route: scalar={t_scalar * 1e3:.1f} ms  "
          f"fast={t_fast * 1e3:.1f} ms  -> {route_speedup:.1f}x  "
          f"(overflow={fast.overflow:.1f})")
    if args.json:
        merge_json(args.json, "groute", {
            "design": "gpu_shader",
            "instances": n_insts,
            "scalar_ms": round(t_scalar * 1e3, 4),
            "vectorized_ms": round(t_fast * 1e3, 4),
            "speedup": round(route_speedup, 2),
            "bit_identical": route_ok,
        })
        print(f"wrote 'annealer' and 'groute' sections to {args.json}")
    if not route_ok:
        ok = False
    if route_speedup < args.min_groute_speedup:
        print(f"FAIL: expected >= {args.min_groute_speedup:.1f}x "
              f"global-route speedup, got {route_speedup:.1f}x")
        ok = False

    if ok:
        print(f"OK: annealer >= {args.min_anneal_speedup:.1f}x and groute "
              f">= {args.min_groute_speedup:.1f}x at bitwise-identical results")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
