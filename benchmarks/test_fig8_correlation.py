"""Figure 8: the accuracy-cost tradeoff in analysis, shifted by ML.

Paper shape: accuracy costs runtime; "machine learning offers the
potential to achieve 'accuracy for free', shifting the cost-accuracy
tradeoff curve" — the +ML point reaches near-golden accuracy at
near-cheap runtime.  The guardband consequence is also measured: the
pessimism a raw cheap timer needs (and ML removes) causes real,
unneeded sizing work in the optimizer.
"""

from conftest import print_header

from repro.core.correlation import (
    accuracy_cost_curve,
    build_correlation_dataset,
    guardband_optimization_cost,
    miscorrelation_stats,
)


def test_fig8_accuracy_cost(benchmark):
    dataset = benchmark.pedantic(
        build_correlation_dataset, kwargs={"n_designs": 8, "seed": 42},
        rounds=1, iterations=1,
    )
    train, test = dataset.split(0.7, seed=0)
    points = accuracy_cost_curve(train, test, seed=0)

    print_header("Figure 8: accuracy-cost tradeoff (endpoint slack analysis)")
    stats = miscorrelation_stats(test)
    print(f"raw miscorrelation on {int(stats['n'])} endpoints: "
          f"mean {stats['mean']:.1f}ps, MAE {stats['mae']:.1f}ps, "
          f"worst optimistic {stats['worst_optimistic']:.1f}ps")
    print(f"\n{'configuration':>18} {'cost (work)':>12} {'MAE ps':>8} {'guardband ps':>13}")
    for p in points:
        print(f"{p.name:>18} {p.cost:>12.0f} {p.error:>8.2f} {p.guardband:>13.2f}")

    by_name = {p.name: p for p in points}
    cheap, golden = by_name["cheap"], by_name["golden"]
    ml = min((p for p in points if p.name.startswith("cheap+ML")), key=lambda p: p.error)
    # the Fig 8 shape: ML reaches near-golden accuracy at near-cheap cost
    assert golden.cost / cheap.cost > 3
    assert ml.error < 0.35 * cheap.error
    assert ml.cost < 0.5 * golden.cost
    assert ml.guardband < cheap.guardband


def test_fig8_guardband_cost(benchmark):
    """The Sec 3.2 consequence: pessimism costs area/power/schedule."""
    guardbands = [0.0, 20.0, 50.0, 100.0, 150.0]
    rows = benchmark.pedantic(guardband_optimization_cost, args=(guardbands,),
                              kwargs={"seed": 11}, rounds=1, iterations=1)

    print_header("Sec 3.2: cost of guardbanding (real optimizer runs)")
    print(f"{'guardband ps':>13} {'sizing ops':>11} {'area delta':>11} "
          f"{'leakage delta':>14}")
    for row in rows:
        print(f"{row['guardband']:>13.0f} {row['sizing_ops']:>11.0f} "
              f"{row['area_delta']:>11.2f} {row['leakage_delta']:>14.3f}")

    assert rows[-1]["sizing_ops"] > rows[0]["sizing_ops"]
    assert rows[-1]["area_delta"] >= rows[0]["area_delta"]
