"""Vectorized-STA benchmark: full_propagate, struct-of-arrays vs scalar.

The STA kernel's ``full_propagate`` was rewritten as flat numpy
struct-of-arrays sweeps (levelized frontier arrays, CSR fanin segments
with ``reduceat`` merges, batched delay-policy evaluation).  This
benchmark builds the **largest corpus design** (the GPU shader profile)
through placement and global routing, then times ``full_propagate`` on
both kernels from the same inputs:

- ``vectorize=True``: the struct-of-arrays numpy kernel (the default);
- ``vectorize=False``: the historical scalar dict-and-loop kernel,
  kept as an honest comparator (plain dicts, no array façades).

Checks (exit code 1 on failure):

- every propagated state map (late/early arrivals, slews, predecessor
  chains) and the resulting :class:`TimingReport` are **bit-identical**
  across the two kernels, for both engines at the signoff corner mix;
- the vectorized kernel is >= 5x faster on ``full_propagate``.

``--json PATH`` merges a machine-readable summary into ``PATH`` under
the ``"vectorized"`` key (see ``make bench-trajectory``); ``--smoke``
reduces repetitions for CI while keeping every assertion.

Usage::

    PYTHONPATH=src python benchmarks/vectorized_sta_benchmark.py
    PYTHONPATH=src python benchmarks/vectorized_sta_benchmark.py --smoke \
        --json BENCH_sta.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.bench.generators import design_profile
from repro.eda.cts import ClockTreeSynthesizer
from repro.eda.floorplan import make_floorplan
from repro.eda.library import make_default_library
from repro.eda.placement import QuadraticPlacer
from repro.eda.routing import GlobalRouter
from repro.eda.sta import GraphSTA, SignoffSTA, SLOW
from repro.eda.synthesis import synthesize

CLOCK = 1100.0
STATE_MAPS = ("_arrival", "_arrival_min", "_slew", "_pred")


def build_state(seed: int):
    """Implement the GPU shader profile up to the timing stage."""
    lib = make_default_library()
    spec = design_profile("gpu_shader")
    netlist = synthesize(spec, lib, effort=0.6, seed=seed)
    floorplan = make_floorplan(netlist, utilization=0.7)
    placement = QuadraticPlacer().place(netlist, floorplan, seed=seed + 1)
    clock_tree = ClockTreeSynthesizer(0.5).synthesize(netlist, placement, seed + 2)
    congestion = GlobalRouter().route(placement, seed=seed + 3).congestion_map()
    return netlist, placement, clock_tree.skews, congestion


def time_full_propagate(graph, repeats: int) -> float:
    """Best-of-``repeats`` seconds for one ``full_propagate`` call."""
    graph.full_propagate()  # warm: SoA build, cell registry, allocations
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        graph.full_propagate()
        best = min(best, time.perf_counter() - t0)
    return best


def states_identical(vec, scalar) -> bool:
    for attr in STATE_MAPS:
        if dict(getattr(vec, attr).items()) != dict(getattr(scalar, attr).items()):
            print(f"FAIL: {attr} differs between kernels")
            return False
    return True


def reports_identical(got, want) -> bool:
    if list(got.endpoints) != list(want.endpoints):
        return False
    for name in got.endpoints:
        a, b = got.endpoints[name], want.endpoints[name]
        if (a.arrival, a.slack, a.hold_slack, a.path_slew) != (
                b.arrival, b.slack, b.hold_slack, b.path_slew):
            return False
    return got.runtime_proxy == want.runtime_proxy and got.paths == want.paths


def merge_json(path: str, key: str, payload: dict) -> None:
    """Merge ``payload`` under ``key`` into the JSON file at ``path``."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        data = {}
    data[key] = payload
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seed", type=int, default=7, help="flow seed")
    parser.add_argument("--repeats", type=int, default=20,
                        help="timing repetitions (best-of)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required vectorized/scalar speedup")
    parser.add_argument("--smoke", action="store_true",
                        help="CI run: fewer repetitions, same assertions")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="merge results under 'vectorized' in PATH")
    args = parser.parse_args(argv)
    repeats = 5 if args.smoke else args.repeats

    netlist, placement, skews, congestion = build_state(args.seed)
    n_insts = len(netlist.instances)
    print(f"gpu_shader ({n_insts} instances, {len(netlist.nets)} nets), "
          f"seed={args.seed}, best of {repeats}")

    # --- bit-identity across both engines --------------------------------
    identical = True
    for engine in (GraphSTA(SLOW), SignoffSTA(SLOW)):
        pair = {}
        for vectorize in (True, False):
            g = engine.build_graph(netlist, placement, skews=skews,
                                   congestion=congestion, check_hold=True,
                                   vectorize=vectorize)
            g.full_propagate()
            pair[vectorize] = g
        if not states_identical(pair[True], pair[False]):
            identical = False
        if not reports_identical(pair[True].report(CLOCK),
                                 pair[False].report(CLOCK)):
            print(f"FAIL: {engine.engine_name} reports differ between kernels")
            identical = False
    if identical:
        print("bit-identical: state maps and reports, both engines "
              "(signoff corner, hold + PBA)")

    # --- wall clock -------------------------------------------------------
    signoff = SignoffSTA(SLOW)
    t_vec = time_full_propagate(
        signoff.build_graph(netlist, placement, skews=skews,
                            congestion=congestion, check_hold=True,
                            vectorize=True), repeats)
    t_scalar = time_full_propagate(
        signoff.build_graph(netlist, placement, skews=skews,
                            congestion=congestion, check_hold=True,
                            vectorize=False), repeats)
    speedup = t_scalar / t_vec if t_vec > 0 else float("inf")
    print(f"full_propagate: scalar={t_scalar * 1e3:.2f} ms  "
          f"vectorized={t_vec * 1e3:.2f} ms  -> {speedup:.1f}x")

    if args.json:
        merge_json(args.json, "vectorized", {
            "design": "gpu_shader",
            "instances": n_insts,
            "scalar_ms": round(t_scalar * 1e3, 4),
            "vectorized_ms": round(t_vec * 1e3, 4),
            "speedup": round(speedup, 2),
            "bit_identical": identical,
        })
        print(f"wrote 'vectorized' section to {args.json}")

    if not identical:
        return 1
    if speedup < args.min_speedup:
        print(f"FAIL: expected >= {args.min_speedup:.1f}x speedup, "
              f"got {speedup:.1f}x")
        return 1
    print(f"OK: >= {args.min_speedup:.1f}x faster at bitwise-identical reports")
    return 0


if __name__ == "__main__":
    sys.exit(main())
