"""Ablations of the design choices DESIGN.md calls out.

Not paper figures — these benches justify the reproduction's own
decisions: the footnote-5 fill-in rules, the sequential MDP model (vs
HMM and per-observation logistic baselines), the consecutive-STOP
filter, GWTW's survivor fraction, and eyechart-graded sizing heuristics.
"""

import numpy as np
from conftest import print_header

from repro.bench.characterize import characterize
from repro.core.doomed import (
    HMMDoomPredictor,
    LogisticDoomBaseline,
    MDPCardLearner,
    evaluate_policy,
)
from repro.core.search import BisectionProblem, go_with_the_winners


def test_ablation_fill_in_rules(benchmark, train_corpus, test_corpus):
    """Footnote-5 fill-in: what do the programmatic rules buy?"""
    test = test_corpus.logs[:1500]

    def fit_both():
        with_rules = MDPCardLearner(fill_in=True).fit(train_corpus)
        without = MDPCardLearner(fill_in=False).fit(train_corpus)
        return with_rules, without

    with_rules, without = benchmark.pedantic(fit_both, rounds=1, iterations=1)

    print_header("Ablation: footnote-5 fill-in rules")
    print(f"{'':>14} {'err@k=2':>8} {'T1':>5} {'T2':>5} {'stop states':>12}")
    rows = {}
    for label, card in (("with rules", with_rules), ("without", without)):
        ev = evaluate_policy(card, test, consecutive=2)
        rows[label] = ev
        print(f"{label:>14} {100 * ev.error_rate:>7.1f}% {ev.type1_errors:>5} "
              f"{ev.type2_errors:>5} {card.counts()['stop']:>12}")

    # unvisited-state defaults matter: the rule-filled card must not be
    # worse, and the unfilled card leaves unvisited states at the MDP's
    # arbitrary default (GO), missing doomed excursions into rare states
    assert rows["with rules"].error_rate <= rows["without"].error_rate + 0.01


def test_ablation_doomed_predictors(benchmark, train_corpus, test_corpus):
    """MDP card vs HMM vs per-observation logistic regression."""
    train = train_corpus.logs[:600]
    test = test_corpus.logs[:1000]

    def fit_all():
        mdp = MDPCardLearner().fit(train)
        hmm = HMMDoomPredictor(seed=0).fit(train)
        logistic = LogisticDoomBaseline(seed=0).fit(train)
        return mdp, hmm, logistic

    mdp, hmm, logistic = benchmark.pedantic(fit_all, rounds=1, iterations=1)

    print_header("Ablation: doomed-run predictor families (test err% @ k)")
    print(f"{'k':>3} {'MDP card':>9} {'HMM':>9} {'logistic':>9}")
    best = {}
    for k in (1, 2, 3):
        mdp_e = evaluate_policy(mdp, test, k).error_rate
        hmm_e = hmm.evaluate(test, k).error_rate
        log_e = logistic.evaluate(test, k).error_rate
        for name, err in (("mdp", mdp_e), ("hmm", hmm_e), ("logistic", log_e)):
            best[name] = min(best.get(name, 1.0), err)
        print(f"{k:>3} {100 * mdp_e:>8.1f}% {100 * hmm_e:>8.1f}% {100 * log_e:>8.1f}%")
    print(f"\nbest-over-k: MDP {100 * best['mdp']:.1f}%, "
          f"HMM {100 * best['hmm']:.1f}%, logistic {100 * best['logistic']:.1f}%")

    # the MDP card (the paper's choice) must be competitive with both
    assert best["mdp"] <= best["hmm"] + 0.03
    assert best["mdp"] <= best["logistic"] + 0.03


def test_ablation_gwtw_survivors(benchmark):
    """How aggressive should winner-cloning be?"""
    problem = BisectionProblem.random_community(
        n_nodes=128, n_communities=16, p_in=0.55, p_out=0.08, seed=6
    )
    fractions = (0.125, 0.25, 0.5, 0.75)

    def sweep():
        out = {}
        for fraction in fractions:
            costs = [
                go_with_the_winners(
                    problem, n_threads=8, n_stages=16, steps_per_stage=25,
                    survivor_fraction=fraction, seed=s,
                ).best_cost
                for s in range(5)
            ]
            out[fraction] = float(np.mean(costs))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header("Ablation: GWTW survivor fraction (mean best cut, 5 seeds)")
    for fraction, cost in results.items():
        print(f"  survivors {fraction:>5}: {cost:.1f}")

    values = list(results.values())
    assert max(values) - min(values) < 0.15 * min(values)  # robust to the knob


def test_ablation_sizing_heuristics(benchmark):
    """Eyechart characterization: grade sizers against known optima."""
    reports = benchmark.pedantic(
        characterize, kwargs={"n_charts": 24, "n_stages": 8, "seed": 7},
        rounds=1, iterations=1,
    )

    print_header("Eyechart characterization of gate-sizing heuristics")
    print(f"{'sizer':>10} {'mean quality':>13} {'worst':>7} {'exact rate':>11}")
    by_name = {}
    for report in reports:
        by_name[report.sizer] = report
        print(f"{report.sizer:>10} {report.mean_quality:>13.3f} "
              f"{report.worst_quality:>7.3f} {report.optimal_rate:>11.2f}")

    assert by_name["optimal"].mean_quality == 1.0
    assert by_name["greedy"].mean_quality < by_name["random20"].mean_quality
    assert by_name["random20"].mean_quality < by_name["naive_x1"].mean_quality
    # "constructive benchmarking": the suite can measure how far a real
    # heuristic lands from optimal, not just rank heuristics
    assert by_name["greedy"].mean_quality - 1.0 < 0.05
