"""Shared state for the figure/table reproduction benchmarks.

Every benchmark prints the rows/series the paper reports (shape
reproduction — see EXPERIMENTS.md) and times its computational kernel
with pytest-benchmark.  Corpora shared between benchmarks (the router
logfiles used by Fig 10 and the Sec 3.3 table) are built once per
session.
"""

from __future__ import annotations

import pytest

from repro.bench import RouterLogCorpus

#: Paper corpus sizes: 1200 training logfiles from artificial layouts,
#: 3742 testing logfiles from embedded-CPU floorplans, 1400 for the card.
TRAIN_LOGS = 1200
TEST_LOGS = 3742


@pytest.fixture(scope="session")
def train_corpus():
    return RouterLogCorpus.artificial(n=TRAIN_LOGS, seed=2018)


@pytest.fixture(scope="session")
def test_corpus():
    return RouterLogCorpus.cpu_floorplans(n=TEST_LOGS, seed=2019)


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
