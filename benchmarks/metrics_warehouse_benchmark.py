"""Metrics warehouse benchmark: sqlite archive vs JSONL reload.

Before the warehouse, every consumer of historical metrics (miner,
doomed predictors, surrogate pre-training) paid the legacy cost per
session: reload the whole JSONL file, re-parse every line, then filter
in memory.  The sqlite backend pays parsing once at ingest and answers
cross-campaign queries off indexes.  This benchmark times one *query
session* — open the store, list runs per campaign, pull run vectors
and the dense ``run_vectors_matrix`` training basis — against the same
record stream persisted both ways.

Checks (exit code 1 on failure):

- every query answer is identical between the two backends
  (``bit_identical``: runs lists, per-run vectors, matrix contents);
- the sqlite session clears ``--min-speedup`` (default 3x) over the
  JSONL-reload session.

Timings are best-of ``--repeats`` to shrug off CI load spikes.
``--json PATH`` merges a machine-readable summary into ``PATH`` under
the ``"metrics"`` key (see ``make bench-trajectory``); ``--smoke``
shrinks the stream and repetitions for CI while keeping every
assertion.

Usage::

    PYTHONPATH=src python benchmarks/metrics_warehouse_benchmark.py
    PYTHONPATH=src python benchmarks/metrics_warehouse_benchmark.py \
        --smoke --json BENCH_metrics.json
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from vectorized_sta_benchmark import merge_json  # noqa: E402

BASIS = ["flow.area", "flow.achieved_ghz", "signoff.wns", "place.hpwl"]
CAMPAIGNS = ("c0", "c1", "c2", "c3")


def make_records(n_runs, seed=0):
    """A deterministic multi-campaign stream: every run carries the
    full metric basis plus refinement duplicates."""
    from repro.metrics import MetricRecord
    from repro.metrics.store import stamp_campaign

    rng = np.random.default_rng(seed)
    records = []
    seq = 0
    for i in range(n_runs):
        campaign = CAMPAIGNS[i % len(CAMPAIGNS)]
        design = "alpha" if i % 3 else "beta"
        run_id = f"{campaign}-run{i:05d}"
        for metric in BASIS + ["flow.success"]:
            value = float(rng.normal(100.0, 30.0))
            records.append(stamp_campaign(MetricRecord(
                design=design, run_id=run_id, tool="spr_flow",
                metric=metric, value=value, sequence=seq), campaign))
            seq += 1
        # one refined re-report, as tools overwrite while converging
        records.append(stamp_campaign(MetricRecord(
            design=design, run_id=run_id, tool="spr_flow",
            metric="flow.area", value=float(rng.normal(100.0, 30.0)),
            sequence=seq), campaign))
        seq += 1
    return records


def query_session(store):
    """The consumer workload: cross-campaign run listing, the dense
    training matrix, and a sample of run vectors."""
    out = []
    runs_all = store.runs()
    out.append(runs_all)
    for campaign in CAMPAIGNS:
        out.append(store.runs(campaign=campaign))
    rows, matrix = store.run_vectors_matrix(BASIS)
    out.append((rows, matrix.tolist()))
    for run_id in runs_all[::7]:
        out.append(sorted(store.run_vector(run_id).items()))
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--runs", type=int, default=800,
                        help="flow runs in the synthetic archive")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions (best-of)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required sqlite-vs-jsonl-reload speedup")
    parser.add_argument("--smoke", action="store_true",
                        help="smaller archive, fewer repetitions (CI); "
                             "same assertions")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="merge a 'metrics' summary section into PATH")
    args = parser.parse_args(argv)
    n_runs = 200 if args.smoke else args.runs
    repeats = 2 if args.smoke else args.repeats

    from repro.metrics import JsonlStore, SqliteStore

    records = make_records(n_runs)
    failures = []
    with tempfile.TemporaryDirectory(prefix="metrics-bench-") as tmp:
        jsonl_path = os.path.join(tmp, "archive.jsonl")
        sqlite_path = os.path.join(tmp, "archive.sqlite")

        t0 = time.perf_counter()
        with JsonlStore(jsonl_path) as writer:
            writer.ingest(records)
        jsonl_ingest_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        with SqliteStore(sqlite_path) as store:
            store.ingest(records)
        sqlite_ingest_s = time.perf_counter() - t0

        jsonl_s = float("inf")
        jsonl_answers = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            with JsonlStore(jsonl_path) as store:  # the legacy reload
                jsonl_answers = query_session(store)
            jsonl_s = min(jsonl_s, time.perf_counter() - t0)

        sqlite_s = float("inf")
        sqlite_answers = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            with SqliteStore(sqlite_path) as store:
                sqlite_answers = query_session(store)
            sqlite_s = min(sqlite_s, time.perf_counter() - t0)

        bit_identical = jsonl_answers == sqlite_answers
        speedup = jsonl_s / sqlite_s if sqlite_s > 0 else float("inf")

        if not bit_identical:
            failures.append("sqlite answers differ from the JSONL reload")
        if speedup < args.min_speedup:
            failures.append(f"warehouse speedup {speedup:.1f}x below the "
                            f"{args.min_speedup:.1f}x floor")

        print(f"archive: {len(records)} records over {n_runs} runs, "
              f"{len(CAMPAIGNS)} campaigns "
              f"(ingest: jsonl {jsonl_ingest_s * 1e3:.1f} ms, "
              f"sqlite {sqlite_ingest_s * 1e3:.1f} ms)")
        print(f"query session: jsonl reload {jsonl_s * 1e3:.1f} ms, "
              f"sqlite {sqlite_s * 1e3:.1f} ms ({speedup:.1f}x), "
              f"identical={'yes' if bit_identical else 'NO'}")

        if args.json:
            merge_json(args.json, "metrics", {
                "bit_identical": bit_identical,
                "records": len(records),
                "runs": n_runs,
                "jsonl_ms": round(jsonl_s * 1e3, 4),
                "sqlite_ms": round(sqlite_s * 1e3, 4),
                "speedup": round(speedup, 2),
            })
            print(f"wrote 'metrics' section to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
