"""The Sec 3.3 table: Type-1/Type-2 errors vs consecutive STOP signals.

Paper setup: training on 1200 logfiles from artificial layouts, testing
on 3742 logfiles from floorplans of an embedded CPU; success = run ends
with <200 DRVs.  Paper numbers: total training error 29.66% -> 10.5% ->
8.5% and testing error 35.3% -> 8.3% -> 4.2% at 1/2/3 consecutive
STOPs, with Type-2 errors small and flat (99/99/99 train, 3/3/3 test).

Shape targets: total error falls steeply as required consecutive STOPs
rise; Type-1 (premature stop) errors dominate at 1 STOP and collapse by
3 STOPs; the 3-STOP testing error lands in the single digits; doomed
runs that are stopped save substantial iterations.
"""

from conftest import print_header

from repro.core.doomed import MDPCardLearner, evaluate_policy


def test_table1_doomed_errors(benchmark, train_corpus, test_corpus):
    learner = MDPCardLearner()
    card = benchmark.pedantic(learner.fit, args=(train_corpus,),
                              rounds=1, iterations=1)

    rows = []
    for k in (1, 2, 3):
        rows.append((
            k,
            evaluate_policy(card, train_corpus, k),
            evaluate_policy(card, test_corpus, k),
        ))

    print_header(
        f"Sec 3.3 table: train {len(train_corpus)} artificial logfiles, "
        f"test {len(test_corpus)} CPU-floorplan logfiles"
    )
    print(f"(train success rate {train_corpus.success_rate:.2f}, "
          f"test success rate {test_corpus.success_rate:.2f})\n")
    print(f"{'STOPs':>6} | {'train err%':>10} {'T1':>5} {'T2':>5} | "
          f"{'test err%':>10} {'T1':>5} {'T2':>5} {'iters saved':>12}")
    for k, tr, te in rows:
        print(f"{k:>6} | {100 * tr.error_rate:>10.1f} {tr.type1_errors:>5} "
              f"{tr.type2_errors:>5} | {100 * te.error_rate:>10.1f} "
              f"{te.type1_errors:>5} {te.type2_errors:>5} "
              f"{te.iterations_saved:>12}")
    print("\npaper: train 29.66/10.5/8.5%; test 35.3/8.3/4.2% "
          "(absolute rates differ; the k-dependence is the target)")

    (k1, tr1, te1), (k2, tr2, te2), (k3, tr3, te3) = rows
    # the raw policy is oversensitive: Type-1 errors dominate at 1 STOP
    assert tr1.type1_errors > tr1.type2_errors
    assert te1.type1_errors > te1.type2_errors
    # requiring consecutive STOPs monotonically removes Type-1 errors
    assert tr1.type1_errors > tr2.type1_errors > tr3.type1_errors
    assert te1.type1_errors > te2.type1_errors > te3.type1_errors
    # ... and total error falls monotonically on both sets
    assert tr1.error_rate > tr2.error_rate > tr3.error_rate
    assert te1.error_rate > te2.error_rate > te3.error_rate
    # the 3-STOP testing error is single-digit percent (paper: 4.2%)
    assert te3.error_rate < 0.10
    # Type-2 errors stay small and flat (paper: 3/3/3 on 3742 logs)
    assert te3.type2_errors < 0.01 * len(test_corpus)
    # substantial iterations are saved on doomed runs
    assert te2.iterations_saved > 1000
