"""Figure 2: design cost and transistor count trends (+ footnote 1).

Paper shape: transistor demand rises exponentially 1980-2015; with the
DT-innovation timeline the SOC design cost stays within tens of $M,
while the frozen-DT counterfactuals explode (the "badly diverged"
cost trajectory).  The footnote-1 anchors pin the calibration:
$45.4M (2013, with DT), ~$1B (2013, DT frozen at 2000),
$3.4B (2028, frozen at 2013), ~$70B (2028, frozen at 2000).
"""

from conftest import print_header

from repro.core.costmodel import DesignCostModel


def test_fig2_design_cost(benchmark):
    model = DesignCostModel()
    years = list(range(1985, 2029, 2))

    series = benchmark(model.figure2_series, years)

    print_header("Figure 2: SOC-CP design cost and transistor trends")
    print(f"{'year':>6} {'transistors':>13} {'design $M':>11} "
          f"{'verif $M':>9} {'frozen2000 $M':>14} {'frozen2013 $M':>14}")
    for i, year in enumerate(series["year"]):
        print(
            f"{year:>6} {series['transistors'][i]:>13.2e} "
            f"{series['design_cost'][i] / 1e6:>11.1f} "
            f"{series['verification_cost'][i] / 1e6:>9.1f} "
            f"{series['cost_frozen_2000'][i] / 1e6:>14.1f} "
            f"{series['cost_frozen_2013'][i] / 1e6:>14.1f}"
        )

    anchors = model.footnote1_anchors()
    print("\nfootnote-1 anchors (paper -> measured):")
    print(f"  2013 with DT:      $45.4M -> ${anchors['cost_2013_with_dt']/1e6:.1f}M")
    print(f"  2013 frozen@2000:  ~$1B   -> ${anchors['cost_2013_frozen_2000']/1e9:.2f}B")
    print(f"  2028 frozen@2013:  $3.4B  -> ${anchors['cost_2028_frozen_2013']/1e9:.2f}B")
    print(f"  2028 frozen@2000:  ~$70B  -> ${anchors['cost_2028_frozen_2000']/1e9:.1f}B")

    assert abs(anchors["cost_2013_with_dt"] - 45.4e6) / 45.4e6 < 0.25
    assert abs(anchors["cost_2013_frozen_2000"] - 1.0e9) / 1.0e9 < 0.25
    assert abs(anchors["cost_2028_frozen_2013"] - 3.4e9) / 3.4e9 < 0.25
    assert abs(anchors["cost_2028_frozen_2000"] - 70e9) / 70e9 < 0.25
    # with-DT cost stays within one order of magnitude over 40+ years
    costs = series["design_cost"]
    assert costs.max() / costs.min() < 20
