"""Sec 2, Solution 1: partitioning raises predictability and cuts TAT.

Paper claims (Fig 4(b)): more partitions -> smaller subproblems that
are solved faster and more predictably; parallel implementation of the
blocks slashes turnaround time without undue quality loss.  Shape
targets on the substrate: parallel TAT falls as partitions rise; the
run-to-run spread of achieved frequency shrinks under partitioning;
total area stays within a few percent of the flat flow.
"""

import numpy as np
from conftest import print_header

from repro.bench import pulpino_profile
from repro.core.partition import partitioned_implementation, predictability_study
from repro.eda.flow import FlowOptions, SPRFlow


def test_solution1_partitioning(benchmark):
    spec = pulpino_profile()
    options = FlowOptions(target_clock_ghz=0.6)

    flat = SPRFlow().run(spec, options, seed=0)

    def sweep():
        return {
            k: partitioned_implementation(spec, options, n_partitions=k, seed=10 + k)
            for k in (2, 4, 8)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header("Solution 1: partition count vs TAT / quality")
    print(f"{'partitions':>11} {'TAT (parallel)':>15} {'TAT (serial)':>13} "
          f"{'cut nets':>9} {'area':>8} {'ok':>4}")
    print(f"{'flat':>11} {flat.runtime_proxy:>15.0f} {flat.runtime_proxy:>13.0f} "
          f"{'-':>9} {flat.area:>8.1f} {str(flat.success):>4}")
    for k, res in results.items():
        print(f"{k:>11} {res.tat_parallel:>15.0f} {res.tat_serial:>13.0f} "
              f"{res.n_cut_nets:>9} {res.area:>8.1f} {str(res.success):>4}")

    # predictability is measured near the feasibility wall, where flat
    # implementation is noisiest (Fig 3) and partitioning's benefit shows
    near_wall = options.with_(target_clock_ghz=0.85)
    study = predictability_study(spec, near_wall, n_partitions=4, n_seeds=5, seed0=100)
    print("\npredictability at a near-wall 0.85 GHz target (5 seeds):")
    print(f"  area CV:       flat {study['flat_area_cv']:.4f} -> "
          f"partitioned {study['partitioned_area_cv']:.4f}")
    print(f"  WNS spread:    flat {study['flat_wns_std']:.1f}ps -> "
          f"partitioned {study['partitioned_wns_std']:.1f}ps")
    print(f"  success rate:  flat {study['flat_success_rate']:.2f} -> "
          f"partitioned {study['partitioned_success_rate']:.2f}")
    print(f"  mean TAT ratio (flat / partitioned-parallel): "
          f"{study['mean_tat_ratio']:.2f}x")

    # shape targets
    tats = [results[k].tat_parallel for k in (2, 4, 8)]
    assert tats[0] > tats[-1]  # more partitions -> lower parallel TAT
    assert all(res.tat_parallel < flat.runtime_proxy for res in results.values())
    assert results[4].area < flat.area * 1.10  # no undue area loss
    assert study["mean_tat_ratio"] > 1.5
    # predictability: outcome spread shrinks under partitioning
    assert study["partitioned_area_cv"] < study["flat_area_cv"]
    assert study["partitioned_success_rate"] >= study["flat_success_rate"]
