"""Figure 5: the tree of flow options and the ML-insertion ladder.

Paper shape: "thousands of potential options at each flow step, along
with iteration, result in an enormous tree of possible flow
trajectories" — naive enumeration is hopeless, which motivates the
staged ML insertion (mechanize -> orchestrate -> prune -> learn).
This benchmark quantifies the tree and demonstrates stage 2+3:
orchestrated trajectory search with doomed-run pruning beats random
sampling of the same budget.
"""

import numpy as np
from conftest import print_header

from repro.bench import RouterLogCorpus
from repro.core.doomed import MDPCardLearner, make_stop_callback
from repro.core.orchestration import TrajectoryExplorer, default_option_tree
from repro.core.orchestration.explorer import default_score
from repro.eda.flow import SPRFlow
from repro.eda.synthesis import DesignSpec

SPEC = DesignSpec("fig5", n_gates=150, n_flops=16, n_inputs=8, n_outputs=8,
                  depth=12, locality=0.85)


def test_fig5_option_tree(benchmark):
    tree = default_option_tree()

    print_header("Figure 5: the tree of flow options")
    print(f"{'step':>10} {'options':>8} {'combinations':>13}")
    for step in tree.steps:
        print(f"{step.step:>10} {len(step.options):>8} {step.n_combinations:>13}")
    print(f"\ntotal trajectories (one pass, no iteration): {tree.n_trajectories:,}")

    # stage 2+3: orchestrated search with pruning vs random sampling
    train = RouterLogCorpus.artificial(n=300, seed=55)
    card = MDPCardLearner().fit(train)
    explorer = TrajectoryExplorer(
        tree=tree, n_concurrent=4, n_rounds=3,
        stop_callback=make_stop_callback(card, consecutive=2),
    )
    result = benchmark.pedantic(explorer.explore, args=(SPEC,),
                                kwargs={"seed": 1}, rounds=1, iterations=1)

    # random baseline at the same run budget
    rng = np.random.default_rng(2)
    flow = SPRFlow()
    random_scores = []
    for _ in range(result.n_runs):
        options = tree.to_flow_options(tree.sample(rng))
        random_scores.append(default_score(flow.run(SPEC, options,
                                                    seed=int(rng.integers(0, 2**31 - 1)))))

    print(f"\norchestrated search: {result.n_runs} runs, "
          f"best score {result.best_score:.3f}, pruned {result.n_pruned}")
    print(f"random sampling:     {result.n_runs} runs, "
          f"best score {max(random_scores):.3f}")

    assert tree.n_trajectories > 10_000  # the paper's "enormous tree"
    assert result.best_score >= max(random_scores) * 0.8 or result.best_score > 0
