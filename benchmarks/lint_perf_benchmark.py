"""Lint analyzer benchmark: cold vs warm ``repro lint --project``.

The whole-program analyzer keeps a content-hash incremental cache
(``.repro-lint-cache.json``): a warm run re-parses nothing, rebuilds
the project context from cached per-file summaries, and must produce a
report **identical** to the cold run (the cross-file rules consume
summaries on both paths, so this is identity by construction — the
benchmark proves it stays that way).

Checks (exit code 1 on failure):

- warm findings, suppressed findings and project-graph stats are
  identical to the cold run's;
- the warm run hits the cache for every file (zero misses);
- warm is >= 5x faster than cold (the real margin is far larger — a
  warm run skips parsing and the per-module rule pack entirely).

The cache file is written to a temporary directory; the benchmark
never touches the repo's own cache.  Timings are best-of ``--repeats``
to shrug off CI load spikes.

``--json PATH`` merges a machine-readable summary into ``PATH`` under
the ``"lint"`` key (see ``make bench-trajectory``); ``--smoke``
reduces repetitions for CI while keeping every assertion.

Usage::

    PYTHONPATH=src python benchmarks/lint_perf_benchmark.py
    PYTHONPATH=src python benchmarks/lint_perf_benchmark.py \
        --smoke --json BENCH_lint.json
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from vectorized_sta_benchmark import merge_json  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def report_key(report):
    """Everything that must be identical between cold and warm."""
    stats = {k: v for k, v in (report.project_stats or {}).items()
             if k != "cache"}
    return (
        [(f.path, f.line, f.col, f.rule_id, f.message)
         for f in report.findings],
        [(f.path, f.line, f.col, f.rule_id, f.message)
         for f in report.suppressed],
        report.n_files,
        stats,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--paths", nargs="*",
                        default=[os.path.join(REPO_ROOT, "src", "repro")],
                        help="tree to lint (default: src/repro)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions (best-of)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required warm/cold speedup")
    parser.add_argument("--smoke", action="store_true",
                        help="fewer repetitions (CI); same assertions")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="merge a 'lint' summary section into PATH")
    args = parser.parse_args(argv)
    repeats = 2 if args.smoke else args.repeats

    from repro.analysis import LintConfig, lint_project_paths

    failures = []
    with tempfile.TemporaryDirectory(prefix="lint-bench-") as tmp:
        cache_path = os.path.join(tmp, "lint-cache.json")
        config = LintConfig(strict=True, project=True,
                            project_root=REPO_ROOT, cache_path=cache_path)

        cold_s = float("inf")
        cold = None
        for _ in range(repeats):
            if os.path.exists(cache_path):
                os.unlink(cache_path)
            t0 = time.perf_counter()
            cold = lint_project_paths(args.paths, config)
            cold_s = min(cold_s, time.perf_counter() - t0)
        # one priming run wrote the cache above; now measure warm
        warm_s = float("inf")
        warm = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            warm = lint_project_paths(args.paths, config)
            warm_s = min(warm_s, time.perf_counter() - t0)

        cache = warm.project_stats["cache"]
        bit_identical = report_key(cold) == report_key(warm)
        speedup = cold_s / warm_s if warm_s > 0 else float("inf")

        if not bit_identical:
            failures.append("warm report differs from cold report")
        if cache["misses"] != 0:
            failures.append(f"warm run missed the cache "
                            f"{cache['misses']} time(s)")
        if speedup < args.min_speedup:
            failures.append(f"warm speedup {speedup:.1f}x below the "
                            f"{args.min_speedup:.1f}x floor")

        n_files = warm.n_files
        print(f"lint --project over {n_files} files: "
              f"cold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.1f} ms "
              f"({speedup:.1f}x), warm cache {cache['hits']} hit(s) / "
              f"{cache['misses']} miss(es), "
              f"identical={'yes' if bit_identical else 'NO'}")

        if args.json:
            merge_json(args.json, "lint", {
                "bit_identical": bit_identical,
                "files": n_files,
                "findings": len(warm.findings),
                "cold_ms": round(cold_s * 1e3, 4),
                "warm_ms": round(warm_s * 1e3, 4),
                "speedup": round(speedup, 2),
            })
            print(f"wrote 'lint' section to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
