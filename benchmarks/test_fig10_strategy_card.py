"""Figure 10: the MDP-derived GO/STOP strategy card.

Paper setup: the card is "automatically derived from 1400 logfiles of
an industry tool"; axes are binned violations at time t (x) and change
in DRVs since the previous iteration (y).  Shape: STOP (purple) fills
the right half (very large DRVs); GO (yellow) fills low-DRV states; GO
also covers moderately-large DRVs with negative slope.
"""

import numpy as np
from conftest import print_header

from repro.bench import RouterLogCorpus
from repro.core.doomed import GO, STOP, MDPCardLearner

N_CARD_LOGS = 1400


def test_fig10_strategy_card(benchmark, train_corpus, test_corpus):
    # the paper's card uses 1400 logfiles; mix both domains like a tool
    # vendor would
    logs = list(train_corpus.logs[:700]) + list(test_corpus.logs[:700])
    assert len(logs) == N_CARD_LOGS

    learner = MDPCardLearner()
    card = benchmark.pedantic(learner.fit, args=(logs,), rounds=1, iterations=1)

    grid = card.as_grid()
    space = card.space
    print_header("Figure 10: MDP strategy card (G=GO, S=STOP; x=DRV bin, y=slope bin)")
    header = "slope\\drv " + " ".join(f"{vb:>2}" for vb in range(space.n_violation_bins))
    print(header)
    for sb in range(space.max_up, -space.max_down - 1, -1):
        row = [f"{sb:>9}"]
        for vb in range(space.n_violation_bins):
            action = grid[vb, sb + space.max_down]
            row.append(" G" if action == GO else " S")
        print(" ".join(row))
    counts = card.counts()
    print(f"\nstates: {counts['go']} GO, {counts['stop']} STOP "
          f"({counts['visited']} visited in training)")

    # paper shape assertions
    right_half = grid[14:, :]  # very large violation bins
    assert (right_half == STOP).mean() > 0.8, "right half of the card is STOP"
    low_drv = grid[1:5, : space.max_down]  # small DRVs, falling
    assert (low_drv == GO).mean() > 0.6, "low-DRV states are GO"
    moderate_falling = grid[6:9, 2 : space.max_down - 2]
    assert (moderate_falling == GO).mean() > 0.5, (
        "moderately large DRVs with negative slope are GO"
    )
    rising_large = grid[10:14, space.max_down + 1 :]
    assert (rising_large == STOP).mean() > 0.5, "large and rising means STOP"
