# Developer entry points.  Everything runs against the in-tree sources
# (PYTHONPATH=src), no install required.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test lint lint-perf smoke metrics-smoke warehouse-smoke stage-smoke sta-smoke dse-smoke bench-trajectory bench

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Determinism & parallel-safety static analysis (rule catalog:
# docs/static-analysis.md).  --strict: any finding fails, including
# warnings and stale suppressions.  --project enables the cross-file
# rules (R009-R012) over the import/call graph; the content-hash cache
# (.repro-lint-cache.json) makes warm re-runs near-instant.
lint:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli lint --strict \
		--project src/repro

# Analyzer cache smoke: cold vs warm project lint over src/repro must
# produce identical reports with a >=5x warm speedup and zero cache
# misses.
lint-perf:
	PYTHONPATH=$(PYTHONPATH) timeout 240 $(PYTHON) \
		benchmarks/lint_perf_benchmark.py --smoke

# One small parallel campaign through the FlowExecutor, bounded by a
# hard timeout: proves the process pool, the result cache and the CLI
# stats plumbing work end to end without burning CI minutes.
smoke:
	PYTHONPATH=$(PYTHONPATH) timeout 180 $(PYTHON) -m repro.cli explore \
		--design PHY --rounds 2 --concurrent 3 --workers 2 --seed 1
	PYTHONPATH=$(PYTHONPATH) timeout 180 $(PYTHON) -m repro.cli mab \
		--design PHY --arms 0.4,0.6 --iterations 2 --concurrent 2 --workers 2

# A bounded 2-worker instrumented campaign: every parallel run's step
# metrics plus executor events must land in one METRICS JSONL file that
# `repro metrics summary` can read back — the cross-process collection
# path end to end.
metrics-smoke:
	PYTHONPATH=$(PYTHONPATH) timeout 240 $(PYTHON) -m repro.cli explore \
		--design PHY --rounds 2 --concurrent 3 --workers 2 --seed 1 \
		--metrics-out .metrics-smoke.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli metrics summary \
		--in .metrics-smoke.jsonl --design phy
	rm -f .metrics-smoke.jsonl

# Warehouse smoke: two small campaigns land in one sqlite warehouse
# under distinct campaign ids, then the cross-campaign read path is
# exercised end to end (summary, per-campaign query, retention).
warehouse-smoke:
	rm -f .warehouse-smoke.sqlite
	PYTHONPATH=$(PYTHONPATH) timeout 240 $(PYTHON) -m repro.cli explore \
		--design PHY --rounds 2 --concurrent 3 --workers 2 --seed 1 \
		--metrics-db .warehouse-smoke.sqlite --campaign smoke-a
	PYTHONPATH=$(PYTHONPATH) timeout 240 $(PYTHON) -m repro.cli explore \
		--design PHY --rounds 2 --concurrent 3 --workers 2 --seed 2 \
		--metrics-db .warehouse-smoke.sqlite --campaign smoke-b
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli metrics summary \
		--in .warehouse-smoke.sqlite --design phy
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli metrics query \
		--in .warehouse-smoke.sqlite --campaign smoke-b
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli metrics compact \
		--db .warehouse-smoke.sqlite --keep-last 1
	rm -f .warehouse-smoke.sqlite

# Stage-prefix cache smoke: a small 2-worker router-knob sweep at a
# fixed (design, seed).  Asserts bit-identical results with the cache
# on and off and at least one prefix hit (more jobs than workers, so a
# worker-local cache must serve a shared prefix).
stage-smoke:
	PYTHONPATH=$(PYTHONPATH) timeout 240 $(PYTHON) \
		benchmarks/stage_cache_benchmark.py --smoke --workers 2

# Incremental STA smoke: the kernel equivalence suites (bitwise vs. the
# frozen pre-refactor engines, random-edit walks through update()) plus
# the optimizer benchmark in assert-only mode (bit-identical QoR, >=2x
# less timing work).
sta-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q \
		tests/eda/test_sta_equivalence.py tests/eda/test_sta_incremental.py
	PYTHONPATH=$(PYTHONPATH) timeout 240 $(PYTHON) \
		benchmarks/incremental_sta_benchmark.py --smoke

# DSE kill-policy smoke: the same sweep campaign twice through the
# declarative engine — blind vs. online MDP killing — asserting the
# doomed points are killed, the best result is bit-identical and the
# killing campaign executes >=1.3x less runtime proxy; then one CLI
# engine run with killing and a surrogate.
dse-smoke:
	PYTHONPATH=$(PYTHONPATH) timeout 240 $(PYTHON) \
		benchmarks/dse_kill_benchmark.py --smoke
	PYTHONPATH=$(PYTHONPATH) timeout 240 $(PYTHON) -m repro.cli dse \
		--design MCU --strategy explorer --rounds 2 --concurrent 3 \
		--kill mdp --surrogate forest --seed 2

# Benchmark trajectory: run the STA benchmarks (vectorized-kernel
# speedup on the largest corpus design, incremental-update work saved
# on PULPino), the place & route kernel benchmark (annealer and
# global-router fast paths), the lint-analyzer cache benchmark and the
# DSE kill-policy benchmark, merge their summaries into
# BENCH_sta.json / BENCH_place_route.json / BENCH_lint.json /
# BENCH_dse.json, and fail on regression against the committed
# baselines.  Thresholds are ratios measured within one run, so they
# carry across machines.
bench-trajectory:
	rm -f BENCH_sta.json BENCH_place_route.json BENCH_lint.json \
		BENCH_dse.json BENCH_metrics.json
	PYTHONPATH=$(PYTHONPATH) timeout 240 $(PYTHON) \
		benchmarks/vectorized_sta_benchmark.py --smoke --json BENCH_sta.json
	PYTHONPATH=$(PYTHONPATH) timeout 240 $(PYTHON) \
		benchmarks/incremental_sta_benchmark.py --smoke --json BENCH_sta.json
	$(PYTHON) benchmarks/check_bench_regression.py BENCH_sta.json \
		benchmarks/BENCH_sta_baseline.json
	PYTHONPATH=$(PYTHONPATH) timeout 240 $(PYTHON) \
		benchmarks/vectorized_place_route_benchmark.py --smoke \
		--json BENCH_place_route.json
	$(PYTHON) benchmarks/check_bench_regression.py BENCH_place_route.json \
		benchmarks/BENCH_place_route_baseline.json
	PYTHONPATH=$(PYTHONPATH) timeout 240 $(PYTHON) \
		benchmarks/lint_perf_benchmark.py --smoke --json BENCH_lint.json
	$(PYTHON) benchmarks/check_bench_regression.py BENCH_lint.json \
		benchmarks/BENCH_lint_baseline.json
	PYTHONPATH=$(PYTHONPATH) timeout 240 $(PYTHON) \
		benchmarks/dse_kill_benchmark.py --smoke --json BENCH_dse.json
	$(PYTHON) benchmarks/check_bench_regression.py BENCH_dse.json \
		benchmarks/BENCH_dse_baseline.json
	PYTHONPATH=$(PYTHONPATH) timeout 240 $(PYTHON) \
		benchmarks/metrics_warehouse_benchmark.py --smoke \
		--json BENCH_metrics.json
	$(PYTHON) benchmarks/check_bench_regression.py BENCH_metrics.json \
		benchmarks/BENCH_metrics_baseline.json

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only
