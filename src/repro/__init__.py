"""repro — reproduction of Kahng, "Reducing Time and Effort in IC
Implementation: A Roadmap of Challenges and Solutions" (DAC 2018).

The package is organized as:

- :mod:`repro.eda` — a self-contained, simulated SP&R tool substrate
  (library, netlist, synthesis, placement, routing, STA, power, flow).
- :mod:`repro.ml` — from-scratch ML kit (linear models, trees, HMMs,
  MDPs, clustering).
- :mod:`repro.core` — the paper's contribution: MAB tool-run scheduling,
  doomed-run prediction, analysis-correlation learning, GWTW/adaptive
  multistart search, flow orchestration, the ITRS design cost model and
  tool-noise characterization.
- :mod:`repro.metrics` — a METRICS 2.0 measurement/feedback system.
- :mod:`repro.bench` — design and logfile corpus generators.
"""

__version__ = "1.0.0"
