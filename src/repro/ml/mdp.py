"""Finite Markov decision processes: value iteration and policy iteration.

The doomed-run predictor (paper Sec 3.3, Fig 10) derives a "blackjack
strategy card" by policy iteration over an MDP whose states are binned
logfile observations and whose actions are GO/STOP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class FiniteMDP:
    """A finite MDP given by explicit transition and reward tensors.

    ``transitions[a, s, s']`` is P(s' | s, a); each ``transitions[a, s]``
    row must sum to 1 (absorbing states self-loop).  ``rewards[a, s]`` is
    the expected immediate reward for taking action ``a`` in state ``s``.
    """

    transitions: np.ndarray  # (n_actions, n_states, n_states)
    rewards: np.ndarray  # (n_actions, n_states)
    gamma: float = 0.95

    def __post_init__(self):
        self.transitions = np.asarray(self.transitions, dtype=float)
        self.rewards = np.asarray(self.rewards, dtype=float)
        if self.transitions.ndim != 3:
            raise ValueError("transitions must have shape (A, S, S)")
        n_a, n_s, n_s2 = self.transitions.shape
        if n_s != n_s2:
            raise ValueError("transition matrices must be square")
        if self.rewards.shape != (n_a, n_s):
            raise ValueError("rewards must have shape (A, S)")
        if not 0.0 <= self.gamma < 1.0:
            raise ValueError("gamma must be in [0, 1)")
        row_sums = self.transitions.sum(axis=2)
        if not np.allclose(row_sums, 1.0, atol=1e-6):
            raise ValueError("every transitions[a, s] row must sum to 1")

    @property
    def n_states(self) -> int:
        return self.transitions.shape[1]

    @property
    def n_actions(self) -> int:
        return self.transitions.shape[0]

    def q_values(self, values: np.ndarray) -> np.ndarray:
        """Q(a, s) given a state-value vector."""
        return self.rewards + self.gamma * np.einsum(
            "ast,t->as", self.transitions, values
        )


def value_iteration(mdp: FiniteMDP, tol: float = 1e-8, max_iter: int = 10_000):
    """Solve an MDP by value iteration.

    Returns ``(values, policy)`` where ``policy[s]`` is the greedy action.
    """
    values = np.zeros(mdp.n_states)
    for _ in range(max_iter):
        q = mdp.q_values(values)
        new_values = q.max(axis=0)
        if float(np.max(np.abs(new_values - values))) < tol:
            values = new_values
            break
        values = new_values
    policy = np.argmax(mdp.q_values(values), axis=0)
    return values, policy


def policy_iteration(mdp: FiniteMDP, max_iter: int = 1_000):
    """Solve an MDP by Howard policy iteration (exact policy evaluation).

    Returns ``(values, policy)``.  Policy evaluation solves the linear
    system ``(I - gamma * P_pi) v = r_pi`` exactly.
    """
    n_s = mdp.n_states
    policy = np.zeros(n_s, dtype=int)
    identity = np.eye(n_s)
    for _ in range(max_iter):
        p_pi = mdp.transitions[policy, np.arange(n_s), :]
        r_pi = mdp.rewards[policy, np.arange(n_s)]
        values = np.linalg.solve(identity - mdp.gamma * p_pi, r_pi)
        q = mdp.q_values(values)
        new_policy = np.argmax(q, axis=0)
        if np.array_equal(new_policy, policy):
            return values, policy
        policy = new_policy
    return values, policy
