"""CART decision trees (regression and classification).

Axis-aligned binary splits chosen greedily.  Regression splits minimize
within-node variance; classification splits minimize Gini impurity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """One tree node; leaves carry ``value`` and internal nodes a split."""

    value: float = 0.0
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    class_counts: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _as_2d(X) -> np.ndarray:
    arr = np.asarray(X, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    return arr


class _BaseTree:
    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        random_state: Optional[int] = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._root: Optional[_Node] = None
        self.n_features_: int = 0

    # Subclasses define: _leaf_value, _impurity
    def fit(self, X, y):
        X = _as_2d(X)
        y = self._prepare_y(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_features_ = X.shape[1]
        self._rng = np.random.default_rng(self.random_state)
        self._root = self._build(X, y, depth=0)
        return self

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        return self._rng.choice(n_features, size=self.max_features, replace=False)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = self._make_leaf(y)
        n = X.shape[0]
        if depth >= self.max_depth or n < self.min_samples_split:
            return node
        if self._impurity(y) <= 1e-12:
            return node
        best = self._best_split(X, y)
        if best is None:
            return node
        feature, threshold, mask = best
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        n = X.shape[0]
        best_gain = 1e-12
        best = None
        parent_imp = self._impurity(y)
        for feature in self._candidate_features(X.shape[1]):
            col = X[:, feature]
            order = np.argsort(col, kind="stable")
            sorted_col = col[order]
            sorted_y = y[order]
            # candidate thresholds: midpoints between distinct consecutive values
            distinct = np.nonzero(np.diff(sorted_col) > 0)[0]
            for idx in distinct:
                n_left = idx + 1
                n_right = n - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                imp_l = self._impurity(sorted_y[:n_left])
                imp_r = self._impurity(sorted_y[n_left:])
                gain = parent_imp - (n_left * imp_l + n_right * imp_r) / n
                if gain > best_gain:
                    threshold = 0.5 * (sorted_col[idx] + sorted_col[idx + 1])
                    best_gain = gain
                    best = (int(feature), float(threshold), col <= threshold)
        return best

    def _apply(self, X: np.ndarray) -> list:
        if self._root is None:
            raise RuntimeError("tree is not fitted; call fit() first")
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"feature-count mismatch: fitted with {self.n_features_}, got {X.shape[1]}"
            )
        leaves = []
        for row in X:
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            leaves.append(node)
        return leaves

    @property
    def depth_(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""

        def rec(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(rec(node.left), rec(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return rec(self._root)


class DecisionTreeRegressor(_BaseTree):
    """CART regression tree minimizing within-leaf variance."""

    def _prepare_y(self, y) -> np.ndarray:
        return np.asarray(y, dtype=float).reshape(-1)

    def _impurity(self, y: np.ndarray) -> float:
        return float(np.var(y)) if y.shape[0] else 0.0

    def _make_leaf(self, y: np.ndarray) -> _Node:
        return _Node(value=float(np.mean(y)))

    def predict(self, X) -> np.ndarray:
        X = _as_2d(X)
        return np.array([leaf.value for leaf in self._apply(X)])


class DecisionTreeClassifier(_BaseTree):
    """CART classification tree minimizing Gini impurity."""

    def _prepare_y(self, y) -> np.ndarray:
        y = np.asarray(y).reshape(-1)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        return encoded.astype(int)

    def _impurity(self, y: np.ndarray) -> float:
        if y.shape[0] == 0:
            return 0.0
        counts = np.bincount(y, minlength=len(self.classes_))
        p = counts / y.shape[0]
        return float(1.0 - np.sum(p * p))

    def _make_leaf(self, y: np.ndarray) -> _Node:
        counts = np.bincount(y, minlength=len(self.classes_)).astype(float)
        return _Node(value=float(np.argmax(counts)), class_counts=counts)

    def predict(self, X) -> np.ndarray:
        X = _as_2d(X)
        idx = [int(leaf.value) for leaf in self._apply(X)]
        return self.classes_[idx]

    def predict_proba(self, X) -> np.ndarray:
        """Per-class probabilities from leaf class frequencies."""
        X = _as_2d(X)
        rows = []
        for leaf in self._apply(X):
            counts = leaf.class_counts
            total = counts.sum()
            rows.append(counts / total if total > 0 else counts)
        return np.stack(rows)
