"""Dataset splitting and cross-validation utilities."""

from __future__ import annotations

from typing import Optional

import numpy as np


def train_test_split(X, y, test_size: float = 0.25, random_state: Optional[int] = None):
    """Random split into train/test partitions.

    Returns ``(X_train, X_test, y_train, y_test)``; each partition is
    non-empty for any ``test_size`` strictly between 0 and 1 and at least
    two samples.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y have different numbers of rows")
    n = X.shape[0]
    if n < 2:
        raise ValueError("need at least two samples to split")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    n_test = min(n - 1, max(1, int(round(n * test_size))))
    rng = np.random.default_rng(random_state)
    perm = rng.permutation(n)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """K-fold cross-validation index generator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: Optional[int] = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X):
        n = np.asarray(X).shape[0]
        if n < self.n_splits:
            raise ValueError("more splits than samples")
        indices = np.arange(n)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for k in range(self.n_splits):
            test_idx = folds[k]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != k])
            yield train_idx, test_idx


def cross_val_score(model_factory, X, y, scorer, n_splits: int = 5, random_state: Optional[int] = None):
    """Cross-validated scores for a model built by ``model_factory()``.

    ``scorer(y_true, y_pred)`` maps to a float; returns one score per fold.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in KFold(n_splits, random_state=random_state).split(X):
        model = model_factory()
        model.fit(X[train_idx], y[train_idx])
        scores.append(float(scorer(y[test_idx], model.predict(X[test_idx]))))
    return np.array(scores)
