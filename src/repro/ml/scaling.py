"""Feature scaling transforms."""

from __future__ import annotations

import numpy as np


def _as_2d(X) -> np.ndarray:
    arr = np.asarray(X, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    return arr


class StandardScaler:
    """Zero-mean, unit-variance scaling, constant columns left at zero."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = _as_2d(X)
        if X.shape[0] == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        X = _as_2d(X)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        X = _as_2d(X)
        return X * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale each column into [0, 1]; constant columns map to 0."""

    def __init__(self):
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        X = _as_2d(X)
        if X.shape[0] == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.min_ = X.min(axis=0)
        rng = X.max(axis=0) - self.min_
        rng[rng == 0.0] = 1.0
        self.range_ = rng
        return self

    def transform(self, X) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler is not fitted")
        X = _as_2d(X)
        return (X - self.min_) / self.range_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
