"""Statistical tests and distribution fits used in noise characterization.

The paper (Fig 3 right, citing [29][15]) asserts that SP&R tool noise is
essentially Gaussian.  These helpers quantify that claim for our
simulated flow: moment-based normality testing (Jarque-Bera) and a
chi-square goodness-of-fit against a fitted normal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NormalFit:
    """A fitted normal distribution with test statistics."""

    mean: float
    std: float
    skewness: float
    excess_kurtosis: float
    jarque_bera: float
    jb_pvalue: float

    @property
    def looks_gaussian(self) -> bool:
        """True when the Jarque-Bera test does not reject at 1%."""
        return self.jb_pvalue > 0.01


def skewness(x) -> float:
    """Sample skewness (biased, moment-based)."""
    arr = np.asarray(x, dtype=float).reshape(-1)
    if arr.shape[0] < 3:
        raise ValueError("need at least 3 samples")
    centered = arr - arr.mean()
    s = arr.std()
    if s == 0:
        return 0.0
    return float(np.mean(centered**3) / s**3)


def excess_kurtosis(x) -> float:
    """Sample excess kurtosis (biased, moment-based; 0 for a normal)."""
    arr = np.asarray(x, dtype=float).reshape(-1)
    if arr.shape[0] < 4:
        raise ValueError("need at least 4 samples")
    centered = arr - arr.mean()
    s = arr.std()
    if s == 0:
        return 0.0
    return float(np.mean(centered**4) / s**4 - 3.0)


def _chi2_sf(x: float, df: int) -> float:
    """Survival function of the chi-square distribution.

    Uses the regularized upper incomplete gamma via a series/continued
    fraction (Numerical Recipes style), so no scipy dependency.
    """
    if x < 0:
        return 1.0
    a = df / 2.0
    x2 = x / 2.0
    if x2 < a + 1.0:
        return 1.0 - _gammainc_lower(a, x2)
    return _gammainc_upper(a, x2)


def _gammainc_lower(a: float, x: float) -> float:
    """Regularized lower incomplete gamma P(a, x) by series."""
    if x <= 0:
        return 0.0
    term = 1.0 / a
    total = term
    n = a
    for _ in range(500):
        n += 1.0
        term *= x / n
        total += term
        if abs(term) < abs(total) * 1e-14:
            break
    import math

    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _gammainc_upper(a: float, x: float) -> float:
    """Regularized upper incomplete gamma Q(a, x) by continued fraction."""
    import math

    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))


def jarque_bera(x) -> tuple:
    """Jarque-Bera statistic and p-value (chi-square with 2 dof)."""
    arr = np.asarray(x, dtype=float).reshape(-1)
    n = arr.shape[0]
    if n < 8:
        raise ValueError("need at least 8 samples for a meaningful JB test")
    s = skewness(arr)
    k = excess_kurtosis(arr)
    jb = n / 6.0 * (s * s + k * k / 4.0)
    return float(jb), float(_chi2_sf(jb, 2))


def fit_normal(x) -> NormalFit:
    """Fit a normal and run the Jarque-Bera normality test."""
    arr = np.asarray(x, dtype=float).reshape(-1)
    jb, p = jarque_bera(arr)
    return NormalFit(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)),
        skewness=skewness(arr),
        excess_kurtosis=excess_kurtosis(arr),
        jarque_bera=jb,
        jb_pvalue=p,
    )


def chi_square_normality(x, n_bins: int = 8) -> tuple:
    """Chi-square goodness-of-fit of samples against a fitted normal.

    Bins are equal-probability under the fitted normal, so expected
    counts are uniform.  Returns ``(statistic, p_value)``; dof is
    ``n_bins - 3`` (bins minus one, minus two fitted parameters).
    """
    arr = np.asarray(x, dtype=float).reshape(-1)
    if n_bins < 4:
        raise ValueError("need at least 4 bins")
    n = arr.shape[0]
    if n < 5 * n_bins:
        raise ValueError("need at least 5 samples per bin on average")
    mu = arr.mean()
    sigma = arr.std(ddof=1)
    if sigma == 0:
        raise ValueError("degenerate (constant) sample")
    # equal-probability bin edges from the normal quantile function
    probs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    edges = mu + sigma * np.sqrt(2.0) * _erfinv_vec(2.0 * probs - 1.0)
    counts, _ = np.histogram(arr, bins=np.concatenate([[-np.inf], edges, [np.inf]]))
    expected = n / n_bins
    stat = float(np.sum((counts - expected) ** 2 / expected))
    dof = n_bins - 3
    return stat, float(_chi2_sf(stat, dof))


def _erfinv_vec(y: np.ndarray) -> np.ndarray:
    """Inverse error function via Newton refinement of a rational seed."""
    y = np.asarray(y, dtype=float)
    # Winitzki's approximation as the seed
    a = 0.147
    ln_term = np.log(1.0 - y * y)
    first = 2.0 / (np.pi * a) + ln_term / 2.0
    x = np.sign(y) * np.sqrt(np.sqrt(first * first - ln_term / a) - first)
    # two Newton steps: f(x) = erf(x) - y
    for _ in range(2):
        err = _erf_vec(x) - y
        deriv = 2.0 / np.sqrt(np.pi) * np.exp(-x * x)
        x = x - err / deriv
    return x


def _erf_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized error function (Abramowitz-Stegun 7.1.26)."""
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-ax * ax))
