"""Binary logistic regression (Newton / IRLS).

Used by the doomed-run logistic baseline and by success-probability
models in the prediction package.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class LogisticRegression:
    """L2-regularized binary logistic regression via IRLS.

    Labels are coerced to {0, 1}; ``alpha`` is the ridge penalty on the
    weights (never on the intercept).
    """

    def __init__(self, alpha: float = 1e-3, max_iter: int = 50, tol: float = 1e-8):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LogisticRegression":
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y).reshape(-1).astype(float)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        labels = np.unique(y)
        if not np.all(np.isin(labels, (0.0, 1.0))):
            raise ValueError("labels must be 0/1")
        if labels.size < 2:
            # degenerate: one class; predict it with certainty-ish odds
            self.coef_ = np.zeros(X.shape[1])
            self.intercept_ = 10.0 if labels[0] == 1.0 else -10.0
            return self

        n, d = X.shape
        A = np.hstack([np.ones((n, 1)), X])
        w = np.zeros(d + 1)
        penalty = self.alpha * np.eye(d + 1)
        penalty[0, 0] = 0.0  # don't shrink the intercept
        for _ in range(self.max_iter):
            z = A @ w
            p = _sigmoid(z)
            gradient = A.T @ (p - y) + penalty @ w
            weights = np.maximum(p * (1.0 - p), 1e-8)
            hessian = (A * weights[:, None]).T @ A + penalty
            step = np.linalg.solve(hessian, gradient)
            w = w - step
            if float(np.max(np.abs(step))) < self.tol:
                break
        self.intercept_ = float(w[0])
        self.coef_ = w[1:]
        return self

    def predict_proba(self, X) -> np.ndarray:
        """P(y=1 | x) per row."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"feature-count mismatch: fitted with {self.coef_.shape[0]}, got {X.shape[1]}"
            )
        return _sigmoid(X @ self.coef_ + self.intercept_)

    def predict(self, X) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(int)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
