"""Gradient-boosted regression trees (squared loss)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.trees import DecisionTreeRegressor, _as_2d


class GradientBoostingRegressor:
    """Stagewise additive model of shallow regression trees.

    With squared loss each stage fits the current residuals; the
    contribution of each tree is damped by ``learning_rate``.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        random_state: Optional[int] = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state
        self.estimators_: list[DecisionTreeRegressor] = []
        self.init_: float = 0.0

    def fit(self, X, y) -> "GradientBoostingRegressor":
        X = _as_2d(X)
        y = np.asarray(y, dtype=float).reshape(-1)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.random_state)
        self.init_ = float(np.mean(y))
        pred = np.full(y.shape, self.init_)
        self.estimators_ = []
        for _ in range(self.n_estimators):
            residual = y - pred
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X, residual)
            update = tree.predict(X)
            pred = pred + self.learning_rate * update
            self.estimators_.append(tree)
            if np.max(np.abs(residual)) < 1e-12:
                break
        return self

    def predict(self, X) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("model is not fitted; call fit() first")
        X = _as_2d(X)
        pred = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            pred = pred + self.learning_rate * tree.predict(X)
        return pred

    def staged_predict(self, X):
        """Yield predictions after each boosting stage (for early-stop studies)."""
        if not self.estimators_:
            raise RuntimeError("model is not fitted; call fit() first")
        X = _as_2d(X)
        pred = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            pred = pred + self.learning_rate * tree.predict(X)
            yield pred.copy()
