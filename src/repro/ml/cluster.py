"""Clustering: k-means (Lloyd's algorithm with k-means++ seeding)."""

from __future__ import annotations

from typing import Optional

import numpy as np


class KMeans:
    """Lloyd's algorithm with k-means++ initialization.

    Used by the data miner to group tool runs into behaviour regimes and
    by the big-valley landscape analysis to find solution clusters.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        n_init: int = 4,
        max_iter: int = 100,
        tol: float = 1e-6,
        random_state: Optional[int] = None,
    ):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: float = np.inf

    def fit(self, X) -> "KMeans":
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.shape[0] < self.n_clusters:
            raise ValueError("need at least n_clusters samples")
        rng = np.random.default_rng(self.random_state)
        best = None
        for _ in range(self.n_init):
            centers, labels, inertia = self._single_run(X, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia)
        self.cluster_centers_, self.labels_, self.inertia_ = best
        return self

    def _single_run(self, X: np.ndarray, rng: np.random.Generator):
        centers = self._kmeanspp(X, rng)
        labels = np.zeros(X.shape[0], dtype=int)
        for _ in range(self.max_iter):
            dists = self._sq_distances(X, centers)
            labels = np.argmin(dists, axis=1)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = X[labels == k]
                if members.shape[0] > 0:
                    new_centers[k] = members.mean(axis=0)
                else:
                    # re-seed empty cluster at the farthest point
                    far = int(np.argmax(dists.min(axis=1)))
                    new_centers[k] = X[far]
            shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
            centers = new_centers
            if shift < self.tol:
                break
        dists = self._sq_distances(X, centers)
        labels = np.argmin(dists, axis=1)
        inertia = float(np.sum(dists[np.arange(X.shape[0]), labels]))
        return centers, labels, inertia

    def _kmeanspp(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = X.shape[0]
        centers = [X[rng.integers(0, n)]]
        for _ in range(1, self.n_clusters):
            d2 = self._sq_distances(X, np.stack(centers)).min(axis=1)
            total = d2.sum()
            if total <= 0:
                centers.append(X[rng.integers(0, n)])
                continue
            probs = d2 / total
            centers.append(X[rng.choice(n, p=probs)])
        return np.stack(centers)

    @staticmethod
    def _sq_distances(X: np.ndarray, centers: np.ndarray) -> np.ndarray:
        diff = X[:, None, :] - centers[None, :, :]
        return np.sum(diff * diff, axis=2)

    def predict(self, X) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise RuntimeError("KMeans is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return np.argmin(self._sq_distances(X, self.cluster_centers_), axis=1)
