"""From-scratch machine-learning substrate used by the core library.

The paper's thesis is that ML must pervade EDA tools and flows.  This
package provides the learning machinery every ``repro.core`` subsystem
builds on: linear models, tree ensembles, discrete hidden Markov models,
finite Markov decision processes, clustering, and model-evaluation
metrics.  Everything is implemented on top of numpy only (no sklearn),
so the whole reproduction is self-contained.
"""

from repro.ml.linear import LinearRegression, RidgeRegression, PolynomialFeatures
from repro.ml.logistic import LogisticRegression
from repro.ml.scaling import StandardScaler, MinMaxScaler
from repro.ml.trees import DecisionTreeRegressor, DecisionTreeClassifier
from repro.ml.forest import RandomForestRegressor, RandomForestClassifier
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.cluster import KMeans
from repro.ml.hmm import DiscreteHMM
from repro.ml.mdp import FiniteMDP, value_iteration, policy_iteration
from repro.ml.metrics import (
    mean_absolute_error,
    mean_squared_error,
    root_mean_squared_error,
    r2_score,
    accuracy_score,
    confusion_matrix,
)
from repro.ml.model_selection import train_test_split, KFold, cross_val_score

__all__ = [
    "LinearRegression",
    "LogisticRegression",
    "RidgeRegression",
    "PolynomialFeatures",
    "StandardScaler",
    "MinMaxScaler",
    "DecisionTreeRegressor",
    "DecisionTreeClassifier",
    "RandomForestRegressor",
    "RandomForestClassifier",
    "GradientBoostingRegressor",
    "KMeans",
    "DiscreteHMM",
    "FiniteMDP",
    "value_iteration",
    "policy_iteration",
    "mean_absolute_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "r2_score",
    "accuracy_score",
    "confusion_matrix",
    "train_test_split",
    "KFold",
    "cross_val_score",
]
