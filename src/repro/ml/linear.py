"""Linear models: ordinary least squares, ridge, polynomial features.

These are the workhorses of the analysis-correlation application
(paper Sec 3.2): given cheap graph-based STA features, predict the
signoff tool's result.
"""

from __future__ import annotations

from itertools import combinations_with_replacement

import numpy as np


def _as_2d(X) -> np.ndarray:
    arr = np.asarray(X, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"X must be 1-D or 2-D, got shape {arr.shape}")
    return arr


class LinearRegression:
    """Ordinary least squares via the pseudo-inverse.

    Attributes after :meth:`fit`: ``coef_`` (per-feature weights) and
    ``intercept_``.
    """

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearRegression":
        X = _as_2d(X)
        y = np.asarray(y, dtype=float).reshape(-1)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if self.fit_intercept:
            A = np.hstack([np.ones((X.shape[0], 1)), X])
        else:
            A = X
        w, *_ = np.linalg.lstsq(A, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(w[0])
            self.coef_ = w[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = w
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        X = _as_2d(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"feature-count mismatch: fitted with {self.coef_.shape[0]}, got {X.shape[1]}"
            )
        return X @ self.coef_ + self.intercept_


class RidgeRegression(LinearRegression):
    """L2-regularized least squares.

    The intercept is never penalized.  ``alpha`` is the regularization
    strength; ``alpha=0`` degenerates to OLS.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        super().__init__(fit_intercept=fit_intercept)
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = float(alpha)

    def fit(self, X, y) -> "RidgeRegression":
        X = _as_2d(X)
        y = np.asarray(y, dtype=float).reshape(-1)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            Xc, yc = X, y
        n_feat = Xc.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(n_feat)
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        if self.fit_intercept:
            self.intercept_ = y_mean - float(x_mean @ self.coef_)
        else:
            self.intercept_ = 0.0
        return self


class PolynomialFeatures:
    """Expand features with all monomials up to ``degree``.

    Matches the usual convention: for input ``(a, b)`` and degree 2 the
    output columns are ``a, b, a^2, ab, b^2`` (no bias column; the
    downstream linear model adds its own intercept).
    """

    def __init__(self, degree: int = 2):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = int(degree)

    def transform(self, X) -> np.ndarray:
        X = _as_2d(X)
        n_samples, n_features = X.shape
        cols = []
        for deg in range(1, self.degree + 1):
            for combo in combinations_with_replacement(range(n_features), deg):
                col = np.ones(n_samples)
                for idx in combo:
                    col = col * X[:, idx]
                cols.append(col)
        return np.stack(cols, axis=1)
