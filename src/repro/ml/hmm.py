"""Discrete hidden Markov model (Rabiner-style).

The paper (Sec 3.3) points to HMMs [36] as one way to treat tool logfile
data as a time series for doomed-run prediction.  This module implements
a discrete-observation HMM with scaled forward-backward, Baum-Welch
training over multiple sequences, Viterbi decoding, and per-sequence
log-likelihood scoring.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np


class DiscreteHMM:
    """HMM with ``n_states`` hidden states and ``n_symbols`` discrete symbols.

    Parameters are row-stochastic: ``startprob_`` (n_states,),
    ``transmat_`` (n_states, n_states), ``emissionprob_``
    (n_states, n_symbols).
    """

    def __init__(
        self,
        n_states: int,
        n_symbols: int,
        n_iter: int = 50,
        tol: float = 1e-4,
        random_state: Optional[int] = None,
    ):
        if n_states < 1 or n_symbols < 1:
            raise ValueError("n_states and n_symbols must be >= 1")
        self.n_states = n_states
        self.n_symbols = n_symbols
        self.n_iter = n_iter
        self.tol = tol
        self.random_state = random_state
        rng = np.random.default_rng(random_state)
        self.startprob_ = _normalize_rows(rng.random(n_states)[None, :])[0]
        self.transmat_ = _normalize_rows(rng.random((n_states, n_states)) + 0.5)
        self.emissionprob_ = _normalize_rows(rng.random((n_states, n_symbols)) + 0.5)

    # ------------------------------------------------------------------
    def _check_sequence(self, obs: Sequence[int]) -> np.ndarray:
        arr = np.asarray(obs, dtype=int).reshape(-1)
        if arr.shape[0] == 0:
            raise ValueError("observation sequence is empty")
        if arr.min() < 0 or arr.max() >= self.n_symbols:
            raise ValueError("observation symbol out of range")
        return arr

    def _forward(self, obs: np.ndarray):
        """Scaled forward pass; returns (alpha, scale factors)."""
        T = obs.shape[0]
        alpha = np.zeros((T, self.n_states))
        scale = np.zeros(T)
        alpha[0] = self.startprob_ * self.emissionprob_[:, obs[0]]
        scale[0] = alpha[0].sum() or 1e-300
        alpha[0] /= scale[0]
        for t in range(1, T):
            alpha[t] = (alpha[t - 1] @ self.transmat_) * self.emissionprob_[:, obs[t]]
            scale[t] = alpha[t].sum() or 1e-300
            alpha[t] /= scale[t]
        return alpha, scale

    def _backward(self, obs: np.ndarray, scale: np.ndarray) -> np.ndarray:
        T = obs.shape[0]
        beta = np.zeros((T, self.n_states))
        beta[-1] = 1.0
        for t in range(T - 2, -1, -1):
            beta[t] = (self.transmat_ @ (self.emissionprob_[:, obs[t + 1]] * beta[t + 1]))
            beta[t] /= scale[t + 1]
        return beta

    def score(self, obs: Sequence[int]) -> float:
        """Log-likelihood of one observation sequence under the model."""
        arr = self._check_sequence(obs)
        _, scale = self._forward(arr)
        return float(np.sum(np.log(scale)))

    def fit(self, sequences: Iterable[Sequence[int]]) -> "DiscreteHMM":
        """Baum-Welch over multiple observation sequences."""
        seqs = [self._check_sequence(s) for s in sequences]
        if not seqs:
            raise ValueError("need at least one training sequence")
        prev_ll = -np.inf
        for _ in range(self.n_iter):
            start_acc = np.zeros(self.n_states)
            trans_num = np.zeros((self.n_states, self.n_states))
            trans_den = np.zeros(self.n_states)
            emis_num = np.zeros((self.n_states, self.n_symbols))
            emis_den = np.zeros(self.n_states)
            total_ll = 0.0
            for obs in seqs:
                T = obs.shape[0]
                alpha, scale = self._forward(obs)
                beta = self._backward(obs, scale)
                total_ll += float(np.sum(np.log(scale)))
                gamma = alpha * beta
                gamma = gamma / np.maximum(gamma.sum(axis=1, keepdims=True), 1e-300)
                start_acc += gamma[0]
                for t in range(T - 1):
                    xi = (
                        alpha[t][:, None]
                        * self.transmat_
                        * self.emissionprob_[:, obs[t + 1]][None, :]
                        * beta[t + 1][None, :]
                    )
                    s = xi.sum()
                    if s > 0:
                        xi /= s
                    trans_num += xi
                    trans_den += gamma[t]
                for t in range(T):
                    emis_num[:, obs[t]] += gamma[t]
                    emis_den += gamma[t]
            self.startprob_ = start_acc / start_acc.sum()
            self.transmat_ = trans_num / np.maximum(trans_den[:, None], 1e-300)
            self.transmat_ = _normalize_rows(self.transmat_ + 1e-12)
            self.emissionprob_ = emis_num / np.maximum(emis_den[:, None], 1e-300)
            self.emissionprob_ = _normalize_rows(self.emissionprob_ + 1e-12)
            if abs(total_ll - prev_ll) < self.tol:
                break
            prev_ll = total_ll
        return self

    def viterbi(self, obs: Sequence[int]) -> np.ndarray:
        """Most likely hidden-state path (log-space Viterbi)."""
        arr = self._check_sequence(obs)
        T = arr.shape[0]
        log_start = np.log(np.maximum(self.startprob_, 1e-300))
        log_trans = np.log(np.maximum(self.transmat_, 1e-300))
        log_emit = np.log(np.maximum(self.emissionprob_, 1e-300))
        delta = np.zeros((T, self.n_states))
        psi = np.zeros((T, self.n_states), dtype=int)
        delta[0] = log_start + log_emit[:, arr[0]]
        for t in range(1, T):
            cand = delta[t - 1][:, None] + log_trans
            psi[t] = np.argmax(cand, axis=0)
            delta[t] = cand[psi[t], np.arange(self.n_states)] + log_emit[:, arr[t]]
        path = np.zeros(T, dtype=int)
        path[-1] = int(np.argmax(delta[-1]))
        for t in range(T - 2, -1, -1):
            path[t] = psi[t + 1][path[t + 1]]
        return path


def _normalize_rows(mat: np.ndarray) -> np.ndarray:
    mat = np.asarray(mat, dtype=float)
    sums = mat.sum(axis=1, keepdims=True)
    sums[sums == 0.0] = 1.0
    return mat / sums
