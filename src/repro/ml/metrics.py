"""Model-evaluation metrics (regression and classification)."""

from __future__ import annotations

import numpy as np


def _as_1d(a) -> np.ndarray:
    arr = np.asarray(a, dtype=float)
    return arr.reshape(-1)


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute error between two equal-length vectors."""
    yt, yp = _as_1d(y_true), _as_1d(y_pred)
    _check_lengths(yt, yp)
    return float(np.mean(np.abs(yt - yp)))


def mean_squared_error(y_true, y_pred) -> float:
    """Mean squared error between two equal-length vectors."""
    yt, yp = _as_1d(y_true), _as_1d(y_pred)
    _check_lengths(yt, yp)
    return float(np.mean((yt - yp) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination.

    Returns 1.0 for a perfect fit.  When ``y_true`` is constant the score
    is 1.0 for a perfect prediction and 0.0 otherwise (the degenerate
    convention avoids division by zero).
    """
    yt, yp = _as_1d(y_true), _as_1d(y_pred)
    _check_lengths(yt, yp)
    ss_res = float(np.sum((yt - yp) ** 2))
    ss_tot = float(np.sum((yt - np.mean(yt)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly-matching labels."""
    yt = np.asarray(y_true).reshape(-1)
    yp = np.asarray(y_pred).reshape(-1)
    _check_lengths(yt, yp)
    return float(np.mean(yt == yp))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true label i predicted as j.

    ``labels`` fixes row/column order; by default the sorted union of
    observed labels is used.
    """
    yt = np.asarray(y_true).reshape(-1)
    yp = np.asarray(y_pred).reshape(-1)
    _check_lengths(yt, yp)
    if labels is None:
        labels = sorted(set(yt.tolist()) | set(yp.tolist()))
    index = {lab: i for i, lab in enumerate(labels)}
    mat = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(yt.tolist(), yp.tolist()):
        mat[index[t], index[p]] += 1
    return mat


def _check_lengths(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape[0] != b.shape[0]:
        raise ValueError(
            f"length mismatch: y_true has {a.shape[0]} entries, y_pred has {b.shape[0]}"
        )
    if a.shape[0] == 0:
        raise ValueError("metrics are undefined for empty inputs")
