"""Bagged tree ensembles (random forests)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.trees import DecisionTreeClassifier, DecisionTreeRegressor, _as_2d


class _BaseForest:
    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        max_features: Optional[str] = "sqrt",
        random_state: Optional[int] = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.estimators_: list = []

    def _n_candidate_features(self, n_features: int) -> Optional[int]:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "third":
            return max(1, n_features // 3)
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        raise ValueError(f"unsupported max_features: {self.max_features!r}")

    def fit(self, X, y):
        X = _as_2d(X)
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        m = self._n_candidate_features(X.shape[1])
        self.estimators_ = []
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            tree = self._make_tree(m, int(rng.integers(0, 2**31 - 1)))
            tree.fit(X[idx], y[idx])
            self.estimators_.append(tree)
        return self


class RandomForestRegressor(_BaseForest):
    """Bootstrap-aggregated regression trees; prediction is the mean."""

    def _make_tree(self, max_features, seed):
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=max_features,
            random_state=seed,
        )

    def predict(self, X) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("forest is not fitted; call fit() first")
        preds = np.stack([t.predict(X) for t in self.estimators_])
        return preds.mean(axis=0)


class RandomForestClassifier(_BaseForest):
    """Bootstrap-aggregated classification trees; prediction by majority vote."""

    def _make_tree(self, max_features, seed):
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=max_features,
            random_state=seed,
        )

    def predict_proba(self, X) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("forest is not fitted; call fit() first")
        # Align per-tree probabilities onto the union of classes.
        classes = self.classes_
        index = {c: i for i, c in enumerate(classes)}
        X = _as_2d(X)
        agg = np.zeros((X.shape[0], len(classes)))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            for j, c in enumerate(tree.classes_):
                agg[:, index[c]] += proba[:, j]
        return agg / len(self.estimators_)

    @property
    def classes_(self) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("forest is not fitted; call fit() first")
        all_classes = np.concatenate([t.classes_ for t in self.estimators_])
        return np.unique(all_classes)

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
