"""Declarative search spaces over :class:`~repro.eda.flow.FlowOptions`.

A :class:`SearchSpace` wraps a
:class:`~repro.core.orchestration.tree.FlowOptionTree` — the flow-step
option menus of paper Fig 5(a) — and optionally a set of
design-generator knobs.  Its ``sample``/``perturb`` draw order is the
contract the trajectory strategy's bit-identity with the historical
:class:`~repro.core.orchestration.explorer.TrajectoryExplorer` rests
on: one ``rng.integers`` draw per option in step order for a sample,
and exactly three draws (step, option, value) for a perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.orchestration.tree import FlowOptionTree, default_option_tree
from repro.eda.flow import FlowOptions


@dataclass
class SearchSpace:
    """The knobs a campaign may turn and the values they may take.

    ``design_knobs`` extends the flow-option tree with design-generator
    parameters (e.g. a :class:`~repro.eda.synthesis.DesignSpec` field
    sweep); they ride along in every trajectory dict but are stripped
    before :meth:`to_flow_options`.
    """

    tree: FlowOptionTree = field(default_factory=default_option_tree)
    design_knobs: Dict[str, List] = field(default_factory=dict)

    def __post_init__(self):
        flow_names = {name for _, name in self.tree.option_names()}
        for name, values in self.design_knobs.items():
            if not values:
                raise ValueError(f"design knob {name!r} has no values")
            if name in flow_names:
                raise ValueError(f"design knob {name!r} shadows a flow option")

    @classmethod
    def from_tree(cls, tree: FlowOptionTree) -> "SearchSpace":
        return cls(tree=tree)

    # ------------------------------------------------------------ geometry
    @property
    def n_points(self) -> int:
        total = self.tree.n_trajectories
        for values in self.design_knobs.values():
            total *= len(values)
        return total

    def option_names(self) -> List[Tuple[str, str]]:
        names = self.tree.option_names()
        names += [("design", name) for name in self.design_knobs]
        return names

    # ------------------------------------------------------------ sampling
    def sample(self, rng: np.random.Generator) -> Dict[str, object]:
        """One uniformly random point; flow options draw first, in the
        tree's step order (the explorer-compatible stream), then any
        design knobs in declaration order."""
        choice = self.tree.sample(rng)
        for name, values in self.design_knobs.items():
            choice[name] = values[int(rng.integers(0, len(values)))]
        return choice

    def perturb(self, point: Dict[str, object],
                rng: np.random.Generator) -> Dict[str, object]:
        """Clone a point, re-rolling one random flow option — the exact
        three-draw perturbation of the historical explorer."""
        clone = dict(point)
        step = self.tree.steps[int(rng.integers(0, len(self.tree.steps)))]
        option = list(step.options)[int(rng.integers(0, len(step.options)))]
        values = step.options[option]
        clone[option] = values[int(rng.integers(0, len(values)))]
        return clone

    def enumerate(self, limit: int = 1000) -> Iterator[Dict[str, object]]:
        """Flat {option: value} points, flow-tree order (no design knobs)."""
        return self.tree.enumerate(limit=limit)

    # ------------------------------------------------------- materializing
    def to_flow_options(self, point: Dict[str, object]) -> FlowOptions:
        """Materialize a point's flow-option part as :class:`FlowOptions`."""
        flow_part = {k: v for k, v in point.items() if k not in self.design_knobs}
        return FlowOptions(**flow_part)

    def design_part(self, point: Dict[str, object]) -> Dict[str, object]:
        return {k: point[k] for k in self.design_knobs if k in point}

    # ------------------------------------------------------------ features
    def feature_names(self) -> List[str]:
        """Stable feature order for surrogate models."""
        return [name for _, name in self.option_names()]

    def features(self, point: Dict[str, object]) -> List[float]:
        """A point as a numeric surrogate feature vector (missing knobs
        contribute 0.0, non-numeric values their index in the menu)."""
        values_of: Dict[str, List] = {}
        for step in self.tree.steps:
            values_of.update(step.options)
        values_of.update(self.design_knobs)
        row = []
        for name in self.feature_names():
            value = point.get(name)
            if value is None:
                row.append(0.0)
            elif isinstance(value, (int, float, np.floating, np.integer)):
                row.append(float(value))
            else:
                row.append(float(values_of[name].index(value)))
        return row


def default_flow_space(
    target_frequencies: Optional[Tuple[float, ...]] = None,
) -> SearchSpace:
    """The substrate flow's own option tree as a search space."""
    if target_frequencies is None:
        return SearchSpace(tree=default_option_tree())
    return SearchSpace(tree=default_option_tree(target_frequencies))
