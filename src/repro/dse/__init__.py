"""Declarative design-space exploration (paper Fig 5(b), unified).

The four campaign layers that grew up as silos — GWTW trajectory
exploration, batched bandits, adaptive multistart and GWTW annealing —
are plugins of one engine here.  A campaign is declared as:

- a :class:`~repro.dse.space.SearchSpace` (which knobs, which values),
- an :class:`~repro.dse.objective.Objective` (what "better" means,
  scalar or Pareto),
- a :class:`~repro.dse.budget.Budget` (runs / runtime proxy / wall),
- a strategy name from the registry,

and executed by :meth:`DSEEngine.run`, which returns a unified
:class:`~repro.dse.result.DSEResult`.  Two cross-cutting layers ride
on the shared engine: surrogate-guided candidate proposal
(:mod:`repro.dse.surrogate`) and online doomed-run killing
(:mod:`repro.dse.kill`) through the executor's ``stop_callback`` path.

The legacy entry points (``TrajectoryExplorer.explore``,
``BatchBanditScheduler.run``, ``AdaptiveMultistart.run``,
``go_with_the_winners``, ...) remain as thin façades over this engine
and stay bit-identical to their historical behavior — see
``docs/dse.md`` for the migration table.
"""

from repro.dse.budget import Budget, BudgetTracker
from repro.dse.engine import DSEEngine
from repro.dse.kill import CardKillPolicy, HMMKillPolicy, train_kill_policy
from repro.dse.objective import OBJECTIVES, Objective, ParetoObjective
from repro.dse.registry import Strategy, available_strategies, register_strategy
from repro.dse.result import DSEResult
from repro.dse.space import SearchSpace, default_flow_space
from repro.dse.surrogate import SurrogateProposer

__all__ = [
    "Budget",
    "BudgetTracker",
    "CardKillPolicy",
    "DSEEngine",
    "DSEResult",
    "HMMKillPolicy",
    "OBJECTIVES",
    "Objective",
    "ParetoObjective",
    "SearchSpace",
    "Strategy",
    "SurrogateProposer",
    "available_strategies",
    "default_flow_space",
    "register_strategy",
    "train_kill_policy",
]
