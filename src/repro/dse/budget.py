"""Campaign budgets: runs, simulated tool cost, wall clock.

A :class:`Budget` declares the limits; a :class:`BudgetTracker` is the
mutable per-campaign ledger strategies charge against.  All limits are
optional — the default budget is unlimited, which is what the legacy
façades use (their budgets are their own round/iteration counts).

Determinism note: only ``max_wall_s`` consults the clock, and
strategies check it *between* batches — a wall-exhausted campaign stops
at a batch boundary, so the runs it did execute are still bit-identical
at any worker count; only how many batches ran may differ by machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Budget:
    """Declarative campaign limits (None = unlimited).

    ``max_runs`` counts charged work units — flow runs for flow
    strategies, local searches for multistart, thread-stages for the
    annealing strategies.  ``max_runtime_proxy`` bounds the summed
    simulated tool cost of delivered results, the machine-independent
    runtime currency of the substrate.
    """

    max_runs: Optional[int] = None
    max_runtime_proxy: Optional[float] = None
    max_wall_s: Optional[float] = None

    def __post_init__(self):
        if self.max_runs is not None and self.max_runs < 1:
            raise ValueError("max_runs must be >= 1")
        if self.max_runtime_proxy is not None and self.max_runtime_proxy <= 0:
            raise ValueError("max_runtime_proxy must be positive")
        if self.max_wall_s is not None and self.max_wall_s <= 0:
            raise ValueError("max_wall_s must be positive")

    @property
    def unlimited(self) -> bool:
        return (self.max_runs is None and self.max_runtime_proxy is None
                and self.max_wall_s is None)


class BudgetTracker:
    """The running ledger one campaign charges against."""

    def __init__(self, budget: Budget):
        self.budget = budget
        self.runs = 0
        self.runtime_proxy = 0.0
        self._t0 = time.perf_counter()

    def charge_runs(self, n: int = 1) -> None:
        self.runs += n

    def charge_proxy(self, amount: float) -> None:
        self.runtime_proxy += amount

    @property
    def wall_s(self) -> float:
        return time.perf_counter() - self._t0

    @property
    def exhausted(self) -> bool:
        budget = self.budget
        if budget.max_runs is not None and self.runs >= budget.max_runs:
            return True
        if (budget.max_runtime_proxy is not None
                and self.runtime_proxy >= budget.max_runtime_proxy):
            return True
        if budget.max_wall_s is not None and self.wall_s >= budget.max_wall_s:
            return True
        return False
