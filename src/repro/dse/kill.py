"""Online doomed-run killing: predictors as executor stop hooks.

The doomed-run predictors of :mod:`repro.core.doomed` were an offline
artifact (paper Fig 9/10 and the error table); here they become live
kill policies.  Each policy is a *picklable* callable — a module-level
dataclass, not the closure :func:`~repro.core.doomed.evaluate
.make_stop_callback` returns — so it can cross the
:class:`~repro.core.parallel.FlowExecutor` process boundary and ride
the existing ``SPRFlow``/``DetailedRouter`` ``stop_callback`` path:
the router hands it the DRV history after every rip-up iteration and
terminates the run when it returns True.

The decision is deterministic given the history, so campaigns with a
kill policy stay bit-identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.doomed.card import StrategyCard
from repro.core.doomed.evaluate import stop_iteration
from repro.core.doomed.hmm_predictor import HMMDoomPredictor
from repro.core.doomed.mdp_policy import MDPCardLearner


@dataclass(frozen=True)
class CardKillPolicy:
    """Stop hook over a GO/STOP :class:`StrategyCard` (the MDP card).

    Fires after ``consecutive`` STOP signals in a row — the paper's
    accuracy fix for the oversensitive raw policy.
    """

    card: StrategyCard
    consecutive: int = 3

    def __post_init__(self):
        if self.consecutive < 1:
            raise ValueError("consecutive must be >= 1")

    def __call__(self, history) -> bool:
        return stop_iteration(self.card, history, self.consecutive) is not None


@dataclass(frozen=True)
class HMMKillPolicy:
    """Stop hook over the likelihood-ratio :class:`HMMDoomPredictor`."""

    predictor: HMMDoomPredictor
    consecutive: int = 3

    def __post_init__(self):
        if self.consecutive < 1:
            raise ValueError("consecutive must be >= 1")

    def __call__(self, history) -> bool:
        return self.predictor.stop_iteration(history, self.consecutive) is not None


def train_kill_policy(kind: str = "mdp", n_train: int = 600, seed: int = 0,
                      consecutive: int = 3):
    """Fit a kill policy on an artificial router-log corpus.

    ``kind`` selects the predictor family: ``"mdp"`` (strategy card via
    policy iteration) or ``"hmm"`` (likelihood-ratio classifier).
    """
    from repro.bench.corpus import RouterLogCorpus

    corpus = RouterLogCorpus.artificial(n=n_train, seed=seed)
    if kind == "mdp":
        return CardKillPolicy(MDPCardLearner().fit(corpus), consecutive)
    if kind == "hmm":
        predictor = HMMDoomPredictor(seed=seed).fit(corpus)
        return HMMKillPolicy(predictor, consecutive)
    raise ValueError(f"unknown kill-policy kind {kind!r} (known: mdp, hmm)")
