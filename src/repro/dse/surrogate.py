"""Surrogate-guided candidate proposal (EDALearn-style guidance).

Mid-campaign, a :class:`SurrogateProposer` fits a ``repro.ml`` forest
or GBM regressor mapping option settings to the objective's ranking
key, then biases candidate generation: instead of one blind
perturbation per refill slot, several are drawn and the model's argmax
is kept.  Training rows come from the campaign's METRICS run vectors
when a :class:`~repro.metrics.MetricsServer` is collecting (the
schema'd ``option.*``/``flow.*`` metrics), else from the in-memory
observations the strategy feeds it.

The proposer is deterministic: models are seeded, candidate draws come
from the campaign rng, and ties break on the first candidate — but a
surrogate-guided campaign consumes a *different* rng stream than a
blind one, so the legacy façades never enable it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor

#: (metric name in a run vector, FlowOptions field) — the feature basis
FEATURE_METRICS = (
    ("flow.target_ghz", "target_clock_ghz"),
    ("option.synth_effort", "synth_effort"),
    ("option.utilization", "utilization"),
    ("option.cts_effort", "cts_effort"),
    ("option.router_effort", "router_effort"),
    ("option.opt_guardband", "opt_guardband"),
)


def _vector_key(vector: Dict[str, float], objective_name: str) -> Optional[float]:
    """A run vector's higher-is-better objective key, or None when the
    vector cannot express this objective (then the proposer falls back
    to its in-memory observations)."""
    success = vector.get("flow.success", 0.0) > 0.5
    if objective_name == "score":
        area = vector.get("flow.area")
        ghz = vector.get("flow.achieved_ghz")
        if area is None or ghz is None:
            return None
        if success:
            return ghz * 1000.0 / max(1.0, area)
        wns = vector.get("signoff.wns", 0.0)
        drvs = vector.get("droute.final_drvs", 0.0)
        return -(min(1.0, -min(0.0, wns) / 1000.0) + min(1.0, drvs / 10000.0))
    if not success:
        return None  # constrained objectives train on successful runs only
    if objective_name == "area":
        area = vector.get("flow.area")
        return None if area is None else -area
    if objective_name == "power":
        power = vector.get("signoff.power")
        return None if power is None else -power
    if objective_name == "wns":
        return vector.get("signoff.wns")
    if objective_name == "frequency":
        return vector.get("flow.achieved_ghz")
    return None


class SurrogateProposer:
    """Train-on-the-fly surrogate that biases perturbation proposals."""

    def __init__(self, model: str = "forest", min_fit: int = 8,
                 n_candidates: int = 8, random_state: int = 0):
        if model not in ("forest", "gbm"):
            raise ValueError("model must be 'forest' or 'gbm'")
        if min_fit < 4:
            raise ValueError("min_fit must be >= 4")
        if n_candidates < 2:
            raise ValueError("n_candidates must be >= 2")
        self.model_kind = model
        self.min_fit = min_fit
        self.n_candidates = n_candidates
        self.random_state = random_state
        self._X: List[List[float]] = []
        self._y: List[float] = []
        self._model = None
        self._fit_rows = 0
        self.fit_score: Optional[float] = None  # training r2 of last fit
        self.n_fits = 0
        self.n_proposals = 0

    # ------------------------------------------------------------ features
    def point_features(self, space, point: Dict[str, object]) -> List[float]:
        """A search-space point in the fixed option-metric basis."""
        options = space.to_flow_options(point)
        return [float(getattr(options, attr)) for _, attr in FEATURE_METRICS]

    # ------------------------------------------------------------ training
    def observe(self, features: Sequence[float], key: float) -> None:
        """Record one (settings, objective key) pair from the campaign."""
        if np.isfinite(key):
            self._X.append([float(f) for f in features])
            self._y.append(float(key))

    def _server_rows(self, server, objective_name: str, design=None,
                     campaign=None, since=None):
        kwargs = {}
        if campaign is not None:
            kwargs["campaign"] = campaign
        if since is not None:
            kwargs["since"] = since
        X, y = [], []
        for run_id in server.runs(design, **kwargs):
            vector = server.run_vector(run_id)
            if any(metric not in vector for metric, _ in FEATURE_METRICS):
                continue
            key = _vector_key(vector, objective_name)
            if key is None or not np.isfinite(key):
                continue
            X.append([float(vector[metric]) for metric, _ in FEATURE_METRICS])
            y.append(float(key))
        return X, y

    def maybe_fit(self, server=None, objective_name: str = "score",
                  design=None) -> bool:
        """(Re)fit when enough new rows exist; returns True on a fit."""
        if server is not None:
            X, y = self._server_rows(server, objective_name, design)
            if len(X) < self.min_fit:
                X, y = self._X, self._y
        else:
            X, y = self._X, self._y
        return self._fit_rows_if_fresh(X, y)

    def fit_from_store(self, store, objective_name: str = "score",
                       design=None, campaign=None, since=None) -> bool:
        """Train on the full archive of a metrics store (all campaigns
        by default, or one design/campaign/since slice); returns True
        when a model was fitted.  Unlike :meth:`maybe_fit` there is no
        in-memory fallback — the warehouse is the corpus."""
        X, y = self._server_rows(store, objective_name, design,
                                 campaign=campaign, since=since)
        if len(X) < self.min_fit:
            return False
        return self._fit_rows_if_fresh(X, y)

    def _fit_rows_if_fresh(self, X, y) -> bool:
        if len(X) < self.min_fit or len(X) == self._fit_rows:
            return False
        if self.model_kind == "forest":
            model = RandomForestRegressor(
                n_estimators=24, max_depth=6, random_state=self.random_state)
        else:
            model = GradientBoostingRegressor(
                n_estimators=60, max_depth=3, random_state=self.random_state)
        arr_X = np.asarray(X, dtype=float)
        arr_y = np.asarray(y, dtype=float)
        model.fit(arr_X, arr_y)
        predicted = np.asarray(model.predict(arr_X), dtype=float)
        ss_res = float(np.sum((arr_y - predicted) ** 2))
        ss_tot = float(np.sum((arr_y - arr_y.mean()) ** 2))
        self.fit_score = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
        self._model = model
        self._fit_rows = len(X)
        self.n_fits += 1
        return True

    @property
    def ready(self) -> bool:
        return self._model is not None

    # ------------------------------------------------------------ proposal
    def propose(self, space, donor: Dict[str, object],
                rng: np.random.Generator) -> Dict[str, object]:
        """The predicted-best of ``n_candidates`` perturbations of
        ``donor`` (ties keep the earliest candidate)."""
        if self._model is None:
            return space.perturb(donor, rng)
        candidates = [space.perturb(donor, rng)
                      for _ in range(self.n_candidates)]
        X = np.asarray([self.point_features(space, c) for c in candidates])
        predicted = np.asarray(self._model.predict(X), dtype=float)
        self.n_proposals += 1
        return candidates[int(np.argmax(predicted))]
