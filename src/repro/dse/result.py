"""The unified campaign outcome: :class:`DSEResult`.

One dataclass normalizes what the four legacy result types each named
differently: the optimization trace (``score_trace`` vs ``cost_trace``),
the per-candidate values (``all_costs``), the method tag, and the
executor's saved-work accounting.  The legacy dataclasses stay — the
``to_*`` converters rebuild them bit-identically for the back-compat
façades — and the legacy field names survive here as deprecated alias
properties, so code written against any one silo reads a
:class:`DSEResult` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.eda.flow import FlowResult

#: registry strategy name -> the method tag its legacy dataclass used
LEGACY_METHOD_NAMES = {
    "explorer": "explorer",
    "bandit": "bandit",
    "sweep": "sweep",
    "gwtw": "gwtw",
    "independent": "multistart",   # GWTWResult's baseline tag
    "multistart": "adaptive",      # MultistartResult's adaptive tag
    "random": "random",
}


@dataclass
class DSEResult:
    """Outcome of one :meth:`~repro.dse.engine.DSEEngine.run` campaign.

    ``best_score`` and ``trace`` are raw objective values in the
    objective's natural units (costs stay costs); ranking direction
    lives in the objective, not the result.  ``runtime_proxy_executed``
    is the executor's actually-paid work delta for this campaign, and
    ``kill_proxy_saved`` the router proxy the online kill policy
    avoided on the ``n_killed`` terminated runs.
    """

    method: str
    objective: str
    best_score: float
    best_result: Optional[FlowResult] = None
    best_assign: Optional[np.ndarray] = None
    trace: List[float] = field(default_factory=list)
    all_scores: List[float] = field(default_factory=list)
    n_runs: int = 0
    n_failed: int = 0
    n_pruned: int = 0
    n_killed: int = 0
    total_runtime_proxy: float = 0.0
    runtime_proxy_executed: float = 0.0
    kill_proxy_saved: float = 0.0
    stage_hits: int = 0
    total_moves: int = 0
    n_iterations: int = 0
    n_concurrent: int = 0
    failures: List = field(default_factory=list)
    records: List = field(default_factory=list)
    pareto: List[FlowResult] = field(default_factory=list)
    surrogate_fit: Optional[float] = None

    # ------------------------------------------------- deprecated aliases
    @property
    def score_trace(self) -> List[float]:
        """Deprecated alias of :attr:`trace` (ExplorationResult name)."""
        return self.trace

    @property
    def cost_trace(self) -> List[float]:
        """Deprecated alias of :attr:`trace` (GWTWResult name)."""
        return self.trace

    @property
    def all_costs(self) -> List[float]:
        """Deprecated alias of :attr:`all_scores` (MultistartResult name)."""
        return self.all_scores

    @property
    def best_cost(self) -> float:
        """Deprecated alias of :attr:`best_score` (landscape-result name)."""
        return self.best_score

    @property
    def n_local_searches(self) -> int:
        """Deprecated alias of :attr:`n_runs` (MultistartResult name)."""
        return self.n_runs

    @property
    def legacy_method(self) -> str:
        """The method tag the pre-refactor dataclass would have carried."""
        return LEGACY_METHOD_NAMES.get(self.method, self.method)

    # --------------------------------------------------- façade converters
    def to_exploration_result(self):
        from repro.core.orchestration.explorer import ExplorationResult

        return ExplorationResult(
            best_result=self.best_result,
            best_score=self.best_score,
            n_runs=self.n_runs,
            n_pruned=self.n_pruned,
            total_runtime_proxy=self.total_runtime_proxy,
            score_trace=list(self.trace),
            n_failed=self.n_failed,
            failures=list(self.failures),
            runtime_proxy_executed=self.runtime_proxy_executed,
            stage_hits=self.stage_hits,
        )

    def to_multistart_result(self):
        from repro.core.search.multistart import MultistartResult

        return MultistartResult(
            best_cost=self.best_score,
            best_assign=self.best_assign,
            all_costs=list(self.all_scores),
            n_local_searches=self.n_runs,
            method=self.legacy_method,
        )

    def to_gwtw_result(self):
        from repro.core.search.gwtw import GWTWResult

        return GWTWResult(
            best_cost=self.best_score,
            best_assign=self.best_assign,
            cost_trace=list(self.trace),
            total_moves=self.total_moves,
            method=self.legacy_method,
        )

    def to_schedule_result(self):
        from repro.core.bandit.scheduler import ScheduleResult

        return ScheduleResult(
            records=list(self.records),
            n_iterations=self.n_iterations,
            n_concurrent=self.n_concurrent,
        )
