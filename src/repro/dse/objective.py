"""What "better" means: scalar and Pareto campaign objectives.

Every strategy ranks candidates through :meth:`Objective.key` — a
higher-is-better float — while :meth:`Objective.value` reports the
raw objective in its natural units (area stays area, whatever the
direction).  The built-in ``"score"`` objective is exactly the
historical explorer score, so façade campaigns rank bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.core.orchestration.explorer import default_score
from repro.eda.flow import FlowResult


@dataclass(frozen=True)
class Objective:
    """A named scalar objective over :class:`FlowResult`.

    ``direction`` is ``"max"`` or ``"min"``; ``requires_success``
    objectives rank failed runs at ``-inf`` (an unroutable block with a
    tiny area must not win an area minimization).
    """

    name: str
    fn: Callable[[FlowResult], float]
    direction: str = "max"
    requires_success: bool = False

    def __post_init__(self):
        if self.direction not in ("max", "min"):
            raise ValueError("direction must be 'max' or 'min'")

    def value(self, result: FlowResult) -> float:
        """The raw objective in its natural units."""
        return float(self.fn(result))

    def key(self, result: FlowResult) -> float:
        """Higher-is-better ranking key."""
        if self.requires_success and not result.success:
            return -math.inf
        raw = self.value(result)
        return raw if self.direction == "max" else -raw

    def update_front(self, front: List[FlowResult],
                     result: FlowResult) -> List[FlowResult]:
        """Scalar objectives keep no front."""
        return front

    @classmethod
    def from_callable(cls, fn: Callable[[FlowResult], float],
                      name: str = "custom") -> "Objective":
        return cls(name=name, fn=fn, direction="max")


@dataclass(frozen=True)
class ParetoObjective:
    """Joint objective over several axes (e.g. area / WNS / power).

    Ranking scalarizes with ``weights`` (candidate generation needs a
    total order), while :meth:`update_front` maintains the actual
    non-dominated set, reported in ``DSEResult.pareto``.
    """

    objectives: Tuple[Objective, ...]
    weights: Tuple[float, ...] = ()
    name: str = "pareto"
    requires_success: bool = True
    _weights: Tuple[float, ...] = field(init=False, repr=False, default=())

    def __post_init__(self):
        if len(self.objectives) < 2:
            raise ValueError("a Pareto objective needs at least 2 axes")
        weights = self.weights or tuple(1.0 for _ in self.objectives)
        if len(weights) != len(self.objectives):
            raise ValueError("one weight per objective axis")
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        object.__setattr__(self, "_weights", tuple(float(w) for w in weights))

    def value(self, result: FlowResult) -> float:
        return self.key(result)

    def key(self, result: FlowResult) -> float:
        if self.requires_success and not result.success:
            return -math.inf
        return float(sum(w * o.key(result)
                         for w, o in zip(self._weights, self.objectives)))

    def axis_values(self, result: FlowResult) -> Dict[str, float]:
        return {o.name: o.value(result) for o in self.objectives}

    def _dominates(self, a: FlowResult, b: FlowResult) -> bool:
        keys_a = [o.key(a) for o in self.objectives]
        keys_b = [o.key(b) for o in self.objectives]
        return (all(x >= y for x, y in zip(keys_a, keys_b))
                and any(x > y for x, y in zip(keys_a, keys_b)))

    def update_front(self, front: List[FlowResult],
                     result: FlowResult) -> List[FlowResult]:
        """The non-dominated set after observing ``result``."""
        if self.requires_success and not result.success:
            return front
        if any(self._dominates(kept, result) for kept in front):
            return front
        survivors = [kept for kept in front
                     if not self._dominates(result, kept)]
        survivors.append(result)
        return survivors


def _area(result: FlowResult) -> float:
    return result.area


def _power(result: FlowResult) -> float:
    return result.power


def _wns(result: FlowResult) -> float:
    return result.wns


def _frequency(result: FlowResult) -> float:
    return result.achieved_ghz


#: objective name -> zero-argument factory
OBJECTIVES: Dict[str, Callable[[], object]] = {
    "score": lambda: Objective("score", default_score, "max"),
    "area": lambda: Objective("area", _area, "min", requires_success=True),
    "power": lambda: Objective("power", _power, "min", requires_success=True),
    "wns": lambda: Objective("wns", _wns, "max"),
    "frequency": lambda: Objective("frequency", _frequency, "max",
                                   requires_success=True),
    "pareto": lambda: ParetoObjective(
        objectives=(
            Objective("area", _area, "min", requires_success=True),
            Objective("wns", _wns, "max"),
            Objective("power", _power, "min", requires_success=True),
        ),
    ),
}


def resolve_objective(objective) -> object:
    """Accept an objective name, a bare callable, or an instance."""
    if isinstance(objective, (Objective, ParetoObjective)):
        return objective
    if isinstance(objective, str):
        if objective not in OBJECTIVES:
            known = ", ".join(sorted(OBJECTIVES))
            raise ValueError(f"unknown objective {objective!r} (known: {known})")
        return OBJECTIVES[objective]()
    if callable(objective):
        if objective is default_score:
            return OBJECTIVES["score"]()
        return Objective.from_callable(objective)
    raise TypeError(f"cannot interpret {objective!r} as an objective")
