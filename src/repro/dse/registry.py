"""The strategy registry: search algorithms as engine plugins.

A strategy is a class with a ``name`` and a ``run(task, ctx) ->
DSEResult`` method; :func:`register_strategy` is its decorator.  The
built-in pack (``repro.dse.strategies``) registers the four historical
searchers plus the declarative sweep on import, mirroring how the
analysis rule pack self-registers.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Type

_LOCK = threading.Lock()
_STRATEGIES: Dict[str, Type["Strategy"]] = {}


class Strategy:
    """Base class: one search algorithm behind the engine.

    ``run`` receives the campaign *task* (a
    :class:`~repro.eda.synthesis.DesignSpec` for flow strategies, a
    :class:`~repro.core.search.landscape.BisectionProblem` for the
    landscape strategies, a ``(policy, env)`` pair for the bandit) and
    the engine's :class:`~repro.dse.engine.DSEContext`.
    """

    name: str = ""

    def run(self, task, ctx):
        raise NotImplementedError


def register_strategy(cls: Type[Strategy]) -> Type[Strategy]:
    """Class decorator: add a strategy to the registry by its ``name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    with _LOCK:
        existing = _STRATEGIES.get(cls.name)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"strategy {cls.name!r} already registered by {existing.__name__}"
            )
        _STRATEGIES[cls.name] = cls
    return cls


def load_builtin_strategies() -> None:
    """Import the built-in strategy pack (idempotent)."""
    import repro.dse.strategies  # noqa: F401 - registers on import


def get_strategy(name: str) -> Strategy:
    """An instance of the strategy registered under ``name``."""
    load_builtin_strategies()
    with _LOCK:
        cls = _STRATEGIES.get(name)
    if cls is None:
        known = ", ".join(available_strategies())
        raise KeyError(f"no strategy registered under {name!r} (known: {known})")
    return cls()


def available_strategies() -> List[str]:
    load_builtin_strategies()
    with _LOCK:
        return sorted(_STRATEGIES)
