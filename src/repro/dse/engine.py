"""The declarative design-space-exploration engine.

One entrypoint for every searcher the repo grew organically: a
:class:`DSEEngine` binds a :class:`~repro.dse.space.SearchSpace`, an
:class:`~repro.dse.objective.Objective`, a :class:`~repro.dse.budget.Budget`
and a registered strategy, runs the campaign, and returns a unified
:class:`~repro.dse.result.DSEResult`.  The historical entrypoints
(``TrajectoryExplorer.explore``, ``BatchBanditScheduler.run``,
``AdaptiveMultistart.run``, ``go_with_the_winners`` ...) are façades
over this engine and stay bit-identical to their pre-refactor
behavior.

Two campaign-level services plug in here rather than per strategy:

* an optional online **kill policy** (:mod:`repro.dse.kill`) becomes
  the executor ``stop_callback`` — doomed runs are terminated
  mid-route and the saved runtime proxy is read back from
  :class:`~repro.core.parallel.ExecutorStats` into the result;
* an optional **surrogate proposer** (:mod:`repro.dse.surrogate`)
  trains on the campaign's METRICS run vectors and biases candidate
  generation in the strategies that refill populations.

When the engine's executor carries a metrics collector, the campaign
summary is emitted as first-class ``dse.*`` records.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from repro.dse.budget import Budget, BudgetTracker
from repro.dse.objective import Objective, resolve_objective
from repro.dse.registry import get_strategy, load_builtin_strategies
from repro.dse.result import DSEResult
from repro.dse.space import SearchSpace, default_flow_space
from repro.dse.surrogate import SurrogateProposer


class DSEContext:
    """Everything a strategy sees: the declarative triple plus the
    campaign's shared services."""

    def __init__(self, space: SearchSpace, objective: Objective,
                 tracker: BudgetTracker, seed, params: Dict,
                 executor=None, stop_callback: Optional[Callable] = None,
                 surrogate: Optional[SurrogateProposer] = None):
        self.space = space
        self.objective = objective
        self.tracker = tracker
        self.seed = seed
        self.params = params
        self.executor = executor
        self.stop_callback = stop_callback
        self.surrogate = surrogate

    def get_executor(self):
        """The campaign executor, creating (and keeping) a serial one
        when the caller supplied none — the engine reads kill stats off
        it after the strategy returns."""
        if self.executor is None:
            from repro.core.parallel import FlowExecutor

            self.executor = FlowExecutor(n_workers=1)
        return self.executor

    @property
    def server(self):
        """The live MetricsServer behind the executor's collector, when
        one is collecting (surrogate training data source).  A
        warehouse-backed server exposes *all* persisted campaigns, so a
        surrogate refit mid-campaign trains on the full archive, not
        just this session's runs; use
        :meth:`~repro.dse.surrogate.SurrogateProposer.fit_from_store`
        to pre-train before the first round."""
        collector = getattr(self.executor, "collector", None)
        return None if collector is None else getattr(collector, "server", None)


class DSEEngine:
    """Declarative campaign runner: space x objective x budget x strategy."""

    def __init__(self, space: Optional[SearchSpace] = None,
                 objective="score", budget: Optional[Budget] = None,
                 strategy: str = "explorer", executor=None,
                 kill_policy: Optional[Callable] = None,
                 surrogate: Optional[SurrogateProposer] = None,
                 params: Optional[Dict] = None):
        load_builtin_strategies()
        self.space = space if space is not None else default_flow_space()
        self.objective = resolve_objective(objective)
        self.budget = budget if budget is not None else Budget()
        self.strategy = get_strategy(strategy)
        self.executor = executor
        self.kill_policy = kill_policy
        self.surrogate = surrogate
        self.params = dict(params or {})

    def run(self, task, seed=0) -> DSEResult:
        """Run the campaign over ``task`` (a DesignSpec for flow
        strategies, a BisectionProblem for landscape ones, or a
        ``(policy, environment)`` pair for the bandit)."""
        tracker = BudgetTracker(self.budget)
        ctx = DSEContext(
            space=self.space,
            objective=self.objective,
            tracker=tracker,
            seed=seed,
            params=self.params,
            executor=self.executor,
            stop_callback=self.kill_policy,
            surrogate=self.surrogate,
        )
        kills_before = kill_saved_before = 0.0
        if ctx.executor is not None:
            kills_before = ctx.executor.stats.kills
            kill_saved_before = ctx.executor.stats.kill_proxy_saved
        result = self.strategy.run(task, ctx)
        if ctx.executor is not None:
            result.n_killed = ctx.executor.stats.kills - int(kills_before)
            result.kill_proxy_saved = (
                ctx.executor.stats.kill_proxy_saved - kill_saved_before
            )
        if self.surrogate is not None:
            result.surrogate_fit = self.surrogate.fit_score
        self._report(task, seed, result, ctx)
        return result

    # ---------------------------------------------------------------- metrics
    def _report(self, task, seed, result: DSEResult, ctx: DSEContext) -> None:
        """Emit the campaign summary as ``dse.*`` records when the
        executor carries a collector."""
        collector = getattr(ctx.executor, "collector", None)
        if collector is None:
            return
        from repro.metrics.collector import QueueTransmitter

        collector.start()
        design = getattr(task, "name", None) or "landscape"
        run_id = f"dse-{result.method}-{0 if seed is None else int(seed)}"
        tx = QueueTransmitter(collector.queue, design, run_id, tool="dse")
        tx.send("dse.runs", result.n_runs)
        tx.send("dse.failed", result.n_failed)
        tx.send("dse.pruned", result.n_pruned)
        tx.send("dse.killed", result.n_killed)
        tx.send("dse.kill_proxy_saved", result.kill_proxy_saved)
        tx.send("dse.runtime_proxy", result.total_runtime_proxy)
        if math.isfinite(result.best_score):
            tx.send("dse.best_score", result.best_score)
        if result.surrogate_fit is not None:
            tx.send("dse.surrogate_fit", result.surrogate_fit)
        tx.flush()
