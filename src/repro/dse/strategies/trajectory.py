"""The "explorer" strategy: GWTW over whole flow trajectories.

This is the historical :class:`TrajectoryExplorer.explore` loop,
re-homed as an engine plugin.  With the surrogate disabled (the façade
path) its rng stream, job seeds and bookkeeping are bit-identical to
the pre-refactor implementation: trajectories sample in slot order,
per-round run seeds are pre-drawn before any launch, and each refill
perturbation costs exactly three rng draws.  A surrogate changes the
draw pattern (several candidate perturbations per refill slot), which
is why only explicit engine campaigns enable it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.parallel import FlowExecutionError, FlowJob
from repro.dse.registry import Strategy, register_strategy
from repro.dse.result import DSEResult
from repro.eda.flow import FlowResult


def _was_pruned(run: FlowResult) -> bool:
    for log in run.logs:
        if log.step == "droute":
            iterations = log.metrics.get("iterations", 0)
            return iterations < run.options.router_max_iterations and run.final_drvs > 0
    return False


@register_strategy
class TrajectoryStrategy(Strategy):
    """Clone-the-winners search over the flow-option tree.

    Params: ``n_concurrent`` (licenses per round, >= 2), ``n_rounds``,
    ``survivor_fraction`` in (0, 1).
    """

    name = "explorer"

    def run(self, task, ctx) -> DSEResult:
        n_concurrent = int(ctx.params.get("n_concurrent", 5))
        n_rounds = int(ctx.params.get("n_rounds", 6))
        survivor_fraction = float(ctx.params.get("survivor_fraction", 0.4))
        if n_concurrent < 2:
            raise ValueError("need at least 2 concurrent runs to clone winners")
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if not 0.0 < survivor_fraction < 1.0:
            raise ValueError("survivor_fraction must be in (0, 1)")
        space, objective = ctx.space, ctx.objective
        rng = np.random.default_rng(ctx.seed)
        executor = ctx.get_executor()
        executed_before = executor.stats.runtime_proxy_executed
        stage_hits_before = executor.stats.stage_hits
        trajectories = [space.sample(rng) for _ in range(n_concurrent)]
        result = DSEResult(method=self.name, objective=objective.name,
                           best_score=-np.inf)
        best_key = -np.inf
        front: List[FlowResult] = []
        for _ in range(n_rounds):
            if ctx.tracker.exhausted:
                break
            # seeds drawn in slot order *before* launching keeps the rng
            # stream identical to the historical serial loop
            seeds = [int(rng.integers(0, 2**31 - 1)) for _ in trajectories]
            jobs = [
                FlowJob(task, space.to_flow_options(trajectory), job_seed)
                for trajectory, job_seed in zip(trajectories, seeds)
            ]
            outcomes = executor.run_jobs(jobs, stop_callback=ctx.stop_callback)
            scored: List[Tuple[float, Dict, Optional[FlowResult]]] = []
            for trajectory, run in zip(trajectories, outcomes):
                result.n_runs += 1
                ctx.tracker.charge_runs(1)
                if isinstance(run, FlowExecutionError):
                    result.n_failed += 1
                    result.failures.append(run)
                    scored.append((-np.inf, trajectory, None))
                    continue
                result.total_runtime_proxy += run.runtime_proxy
                ctx.tracker.charge_proxy(run.runtime_proxy)
                if any(log.step == "droute" and log.metrics.get("success", 1) == 0
                       and run.final_drvs > 0 for log in run.logs) and _was_pruned(run):
                    result.n_pruned += 1
                key = objective.key(run)
                scored.append((key, trajectory, run))
                front = objective.update_front(front, run)
                if ctx.surrogate is not None:
                    ctx.surrogate.observe(
                        ctx.surrogate.point_features(space, trajectory), key)
            scored.sort(key=lambda t: t[0], reverse=True)
            if scored[0][0] > best_key:
                best_key = scored[0][0]
                result.best_result = scored[0][2]
                result.best_score = (objective.value(scored[0][2])
                                     if scored[0][2] is not None else scored[0][0])
            result.trace.append(result.best_score)
            if ctx.surrogate is not None:
                ctx.surrogate.maybe_fit(server=ctx.server,
                                        objective_name=objective.name)
            # winners survive; losers are replaced by perturbed winners
            n_survive = max(1, int(n_concurrent * survivor_fraction))
            survivors = [t for _, t, _ in scored[:n_survive]]
            trajectories = list(survivors)
            while len(trajectories) < n_concurrent:
                donor = survivors[int(rng.integers(0, len(survivors)))]
                if ctx.surrogate is not None and ctx.surrogate.ready:
                    trajectories.append(ctx.surrogate.propose(space, donor, rng))
                else:
                    trajectories.append(space.perturb(donor, rng))
        result.runtime_proxy_executed = (
            executor.stats.runtime_proxy_executed - executed_before
        )
        result.stage_hits = executor.stats.stage_hits - stage_hits_before
        result.pareto = front
        return result
