"""The "sweep" strategy: evaluate an explicit candidate list.

Unlike the adaptive strategies, a sweep's candidate set is fixed up
front — either passed verbatim via ``params["points"]`` or enumerated
from the search space — and every point gets exactly one flow run with
a seed pre-drawn from the campaign rng in point order.  Because the
evaluated set does not depend on run outcomes, two sweeps over the
same points and seed are directly comparable run for run: this is the
strategy the kill-policy benchmark uses to show runtime saved at
identical QoR.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.parallel import FlowExecutionError, FlowJob
from repro.dse.registry import Strategy, register_strategy
from repro.dse.result import DSEResult
from repro.eda.flow import FlowResult


@register_strategy
class SweepStrategy(Strategy):
    """One run per candidate point, in batches of ``n_concurrent``.

    Params: ``points`` (list of search-space dicts; default enumerates
    the space), ``limit`` (enumeration cap, default 64) and
    ``n_concurrent`` (batch width, default 5).
    """

    name = "sweep"

    def run(self, task, ctx) -> DSEResult:
        n_concurrent = int(ctx.params.get("n_concurrent", 5))
        if n_concurrent < 1:
            raise ValueError("n_concurrent must be >= 1")
        space, objective = ctx.space, ctx.objective
        points = ctx.params.get("points")
        if points is None:
            points = space.enumerate(limit=int(ctx.params.get("limit", 64)))
        points = [dict(p) for p in points]
        if not points:
            raise ValueError("sweep needs at least one candidate point")
        rng = np.random.default_rng(ctx.seed)
        # all seeds pre-drawn in point order: the executed set is fixed
        # before any outcome is known
        seeds = [int(rng.integers(0, 2**31 - 1)) for _ in points]
        executor = ctx.get_executor()
        executed_before = executor.stats.runtime_proxy_executed
        stage_hits_before = executor.stats.stage_hits
        result = DSEResult(method=self.name, objective=objective.name,
                           best_score=-np.inf, n_concurrent=n_concurrent)
        best_key = -np.inf
        front: List[FlowResult] = []
        for lo in range(0, len(points), n_concurrent):
            if ctx.tracker.exhausted:
                break
            batch = points[lo:lo + n_concurrent]
            jobs = [
                FlowJob(task, space.to_flow_options(point), seed)
                for point, seed in zip(batch, seeds[lo:lo + n_concurrent])
            ]
            outcomes = executor.run_jobs(jobs, stop_callback=ctx.stop_callback)
            for point, run in zip(batch, outcomes):
                result.n_runs += 1
                ctx.tracker.charge_runs(1)
                if isinstance(run, FlowExecutionError):
                    result.n_failed += 1
                    result.failures.append(run)
                    result.all_scores.append(-np.inf)
                    continue
                result.total_runtime_proxy += run.runtime_proxy
                ctx.tracker.charge_proxy(run.runtime_proxy)
                key = objective.key(run)
                result.all_scores.append(key)
                front = objective.update_front(front, run)
                if ctx.surrogate is not None:
                    ctx.surrogate.observe(
                        ctx.surrogate.point_features(space, point), key)
                if key > best_key:
                    best_key = key
                    result.best_result = run
                    result.best_score = objective.value(run)
                result.trace.append(result.best_score)
        result.runtime_proxy_executed = (
            executor.stats.runtime_proxy_executed - executed_before
        )
        result.stage_hits = executor.stats.stage_hits - stage_hits_before
        result.pareto = front
        return result
