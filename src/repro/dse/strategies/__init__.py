"""The built-in strategy pack: importing this package registers the
four historical searchers and the declarative sweep with the registry
(:mod:`repro.dse.registry`)."""

from repro.dse.strategies import bandit, landscape, sweep, trajectory  # noqa: F401
