"""Landscape strategies: annealing and multistart over bisection.

The historical :func:`go_with_the_winners` / :func:`independent_multistart`
(paper Fig 6(a)) and :class:`AdaptiveMultistart` / :func:`random_multistart`
(Fig 6(b)) loops, re-homed as engine plugins.  The annealing kernel
``_anneal_steps`` and the consensus-start construction are frozen
against drift by R011 (``tests/eda/search_reference.py``); rng streams
match the pre-refactor code draw for draw, so the façades stay
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.search.landscape import BisectionProblem
from repro.dse.registry import Strategy, register_strategy
from repro.dse.result import DSEResult


@dataclass
class _Thread:
    assign: np.ndarray
    cost: float
    temperature: float


def _anneal_steps(
    problem: BisectionProblem,
    thread: _Thread,
    n_steps: int,
    rng: np.random.Generator,
    cooling: float,
) -> None:
    """Metropolis single-flip annealing, in place."""
    for _ in range(n_steps):
        node = int(rng.integers(0, problem.n_nodes))
        trial = thread.assign.copy()
        trial[node] = ~trial[node]
        if not problem.is_balanced(trial):
            continue
        delta = -problem.gain(thread.assign, node)  # cost change
        if delta <= 0 or rng.random() < np.exp(-delta / max(1e-9, thread.temperature)):
            thread.assign = trial
            thread.cost += delta
        thread.temperature *= cooling


def _rebalance(
    problem: BisectionProblem, assign: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Flip random nodes of the larger side until balanced."""
    assign = assign.copy()
    half = problem.n_nodes // 2
    while not problem.is_balanced(assign):
        ones = int(np.sum(assign))
        side = ones > half
        candidates = np.nonzero(assign == side)[0]
        assign[rng.choice(candidates)] = not side
    return assign


def _consensus_start(
    problem: BisectionProblem,
    elite: List[np.ndarray],
    rng: np.random.Generator,
) -> np.ndarray:
    """Agreeing nodes keep their side; contested nodes randomize."""
    # align all elite to the first (bisection has label symmetry)
    reference = elite[0]
    aligned = [reference]
    for sol in elite[1:]:
        flipped = ~sol
        if np.sum(sol != reference) <= np.sum(flipped != reference):
            aligned.append(sol)
        else:
            aligned.append(flipped)
    votes = np.mean(np.stack(aligned), axis=0)
    start = np.where(
        votes > 0.5 + 1e-9,
        True,
        np.where(votes < 0.5 - 1e-9, False, rng.random(problem.n_nodes) < 0.5),
    )
    return _rebalance(problem, start.astype(bool), rng)


def _local_search_job(problem: BisectionProblem, start: np.ndarray, seed: int) -> np.ndarray:
    """One local search under its own child rng (module-level so a
    process-pool executor can pickle it)."""
    return problem.local_search(start, np.random.default_rng(seed))


class _AnnealingStrategy(Strategy):
    """Shared GWTW/independent loop; subclasses decide about cloning."""

    clone_winners = True

    def run(self, problem, ctx) -> DSEResult:
        n_threads = int(ctx.params.get("n_threads", 8))
        n_stages = int(ctx.params.get("n_stages", 10))
        steps_per_stage = int(ctx.params.get("steps_per_stage", 60))
        survivor_fraction = float(ctx.params.get("survivor_fraction", 0.5))
        t_start = float(ctx.params.get("t_start", 3.0))
        if self.clone_winners:
            if n_threads < 2:
                raise ValueError("GWTW needs at least 2 threads")
            if not 0.0 < survivor_fraction < 1.0:
                raise ValueError("survivor_fraction must be in (0, 1)")
        rng = np.random.default_rng(ctx.seed)
        cooling = (0.02 / t_start) ** (1.0 / max(1, n_stages * steps_per_stage))
        threads = []
        for _ in range(n_threads):
            assign = problem.random_solution(rng)
            threads.append(_Thread(assign, problem.cost(assign), t_start))

        result = DSEResult(method=self.name, objective="cut_cost",
                           best_score=np.inf, best_assign=threads[0].assign)
        for _ in range(n_stages):
            if ctx.tracker.exhausted:
                break
            for thread in threads:
                _anneal_steps(problem, thread, steps_per_stage, rng, cooling)
                result.total_moves += steps_per_stage
            result.n_runs += n_threads
            ctx.tracker.charge_runs(n_threads)
            if self.clone_winners:
                threads.sort(key=lambda t: t.cost)
                if threads[0].cost < result.best_score:
                    result.best_score = threads[0].cost
                    result.best_assign = threads[0].assign.copy()
                result.trace.append(result.best_score)
                # clone winners over losers
                n_survive = max(1, int(n_threads * survivor_fraction))
                for i in range(n_survive, n_threads):
                    donor = threads[i % n_survive]
                    threads[i] = _Thread(donor.assign.copy(), donor.cost,
                                         donor.temperature)
            else:
                best = min(threads, key=lambda t: t.cost)
                if best.cost < result.best_score:
                    result.best_score = best.cost
                    result.best_assign = best.assign.copy()
                result.trace.append(result.best_score)
        # final polish of the champion
        polished = problem.local_search(result.best_assign, rng)
        cost = problem.cost(polished)
        if cost < result.best_score:
            result.best_score = cost
            result.best_assign = polished
        return result


@register_strategy
class GWTWStrategy(_AnnealingStrategy):
    """Go-With-The-Winners annealing (clone winners each stage)."""

    name = "gwtw"
    clone_winners = True


@register_strategy
class IndependentAnnealingStrategy(_AnnealingStrategy):
    """Same move budget, no cloning — GWTW's control arm."""

    name = "independent"
    clone_winners = False


@register_strategy
class AdaptiveMultistartStrategy(Strategy):
    """Boese-Kahng-Muddu adaptive multistart (elite-consensus starts)."""

    name = "multistart"

    def run(self, problem, ctx) -> DSEResult:
        n_initial = int(ctx.params.get("n_initial", 12))
        n_adaptive_rounds = int(ctx.params.get("n_adaptive_rounds", 4))
        starts_per_round = int(ctx.params.get("starts_per_round", 4))
        elite_size = int(ctx.params.get("elite_size", 5))
        if n_initial < 2:
            raise ValueError("need at least 2 initial starts")
        if elite_size < 2:
            raise ValueError("elite pool must hold at least 2 solutions")
        executor = ctx.executor
        rng = np.random.default_rng(ctx.seed)
        pool: List[np.ndarray] = []
        costs: List[float] = []

        def add(minimum: np.ndarray) -> None:
            pool.append(minimum)
            costs.append(problem.cost(minimum))

        def run_batch(starts: List[np.ndarray]) -> None:
            tasks = [(problem, start, int(rng.integers(0, 2**31 - 1)))
                     for start in starts]
            for minimum in executor.map(_local_search_job, tasks):
                if isinstance(minimum, np.ndarray):
                    add(minimum)

        if executor is None:
            for _ in range(n_initial):
                add(problem.local_search(problem.random_solution(rng), rng))
        else:
            run_batch([problem.random_solution(rng) for _ in range(n_initial)])
        n_searches = n_initial
        ctx.tracker.charge_runs(n_initial)

        for _ in range(n_adaptive_rounds):
            if ctx.tracker.exhausted:
                break
            elite_idx = np.argsort(costs)[:elite_size]
            elite = [pool[i] for i in elite_idx]
            if executor is None:
                for _ in range(starts_per_round):
                    add(problem.local_search(
                        _consensus_start(problem, elite, rng), rng))
            else:
                run_batch([_consensus_start(problem, elite, rng)
                           for _ in range(starts_per_round)])
            n_searches += starts_per_round
            ctx.tracker.charge_runs(starts_per_round)

        if not costs:
            raise RuntimeError("every local search failed to execute")
        best_idx = int(np.argmin(costs))
        return DSEResult(
            method=self.name,
            objective="cut_cost",
            best_score=costs[best_idx],
            best_assign=pool[best_idx],
            all_scores=costs,
            n_runs=n_searches,
        )


@register_strategy
class RandomMultistartStrategy(Strategy):
    """Equal-budget baseline: every start is random."""

    name = "random"

    def run(self, problem, ctx) -> DSEResult:
        n_starts = int(ctx.params.get("n_starts", 12))
        if n_starts < 1:
            raise ValueError("need at least 1 start")
        executor = ctx.executor
        rng = np.random.default_rng(ctx.seed)
        if executor is None:
            pool = [problem.local_search(problem.random_solution(rng), rng)
                    for _ in range(n_starts)]
        else:
            tasks = []
            for _ in range(n_starts):
                start = problem.random_solution(rng)
                tasks.append((problem, start, int(rng.integers(0, 2**31 - 1))))
            pool = [m for m in executor.map(_local_search_job, tasks)
                    if isinstance(m, np.ndarray)]
            if not pool:
                raise RuntimeError("every local search failed to execute")
        ctx.tracker.charge_runs(n_starts)
        costs = [problem.cost(m) for m in pool]
        best_idx = int(np.argmin(costs))
        return DSEResult(
            method=self.name,
            objective="cut_cost",
            best_score=costs[best_idx],
            best_assign=pool[best_idx],
            all_scores=costs,
            n_runs=n_starts,
        )
