"""The "bandit" strategy: batched bandit scheduling as an engine plugin.

The historical :class:`BatchBanditScheduler.run` loop, bit-identical:
per iteration the policy selects ``n_concurrent`` arms, the
environment pulls them as one batch (through the engine's executor
when it has one), and the policy updates with every reward before the
next iteration.

The task is either an explicit ``(policy, environment)`` pair — the
façade path — or a :class:`~repro.eda.synthesis.DesignSpec`, in which
case a :class:`FlowArmEnvironment` over the search space's
``target_clock_ghz`` menu and a Thompson-sampling policy are built
from the campaign seed (the declarative ``repro dse`` path).
"""

from __future__ import annotations

from typing import List

from repro.core.bandit.scheduler import BanditRunRecord
from repro.dse.registry import Strategy, register_strategy
from repro.dse.result import DSEResult


@register_strategy
class BanditStrategy(Strategy):
    """Batched bandit over tool-run arms.

    Params: ``n_iterations``, ``n_concurrent`` (both >= 1), and for
    the declarative path ``max_area`` / ``max_power`` constraints.
    """

    name = "bandit"

    def run(self, task, ctx) -> DSEResult:
        n_iterations = int(ctx.params.get("n_iterations", 40))
        n_concurrent = int(ctx.params.get("n_concurrent", 5))
        if n_iterations < 1 or n_concurrent < 1:
            raise ValueError("iterations and concurrency must be >= 1")
        if isinstance(task, tuple) and len(task) == 2:
            policy, env = task
        else:
            policy, env = self._build_campaign(task, ctx)
        if policy.n_arms != env.n_arms:
            raise ValueError(
                f"policy has {policy.n_arms} arms but environment has {env.n_arms}"
            )
        result = DSEResult(method=self.name, objective=ctx.objective.name,
                           best_score=0.0, n_iterations=n_iterations,
                           n_concurrent=n_concurrent)
        best = 0.0
        best_result_key = None
        for it in range(n_iterations):
            if ctx.tracker.exhausted:
                result.n_iterations = it
                break
            arms = [policy.select() for _ in range(n_concurrent)]
            outcomes = env.pull_batch(arms, executor=ctx.executor,
                                      stop_callback=ctx.stop_callback)
            for slot, (arm, (reward, info)) in enumerate(zip(arms, outcomes)):
                policy.update(arm, reward)
                success = bool(getattr(info, "success", None)
                               if not isinstance(info, dict) else info.get("success"))
                result.records.append(
                    BanditRunRecord(
                        iteration=it, slot=slot, arm=arm, reward=reward, success=success
                    )
                )
                result.n_runs += 1
                ctx.tracker.charge_runs(1)
                if not success:
                    result.n_failed += 1
                best = max(best, reward)
                flow_result = getattr(info, "result", None)
                if flow_result is not None:
                    result.total_runtime_proxy += flow_result.runtime_proxy
                    ctx.tracker.charge_proxy(flow_result.runtime_proxy)
                    key = ctx.objective.key(flow_result)
                    if best_result_key is None or key > best_result_key:
                        best_result_key = key
                        result.best_result = flow_result
            result.trace.append(best)
        result.best_score = best
        result.all_scores = [r.reward for r in result.records]
        return result

    @staticmethod
    def _build_campaign(spec, ctx):
        from repro.core.bandit.environment import FlowArmEnvironment
        from repro.core.bandit.policies import ThompsonSampling

        frequencies: List[float] = []
        for step in ctx.space.tree.steps:
            if "target_clock_ghz" in step.options:
                frequencies = [float(f) for f in step.options["target_clock_ghz"]]
        if not frequencies:
            raise ValueError(
                "bandit campaigns need a target_clock_ghz menu in the space")
        seed = 0 if ctx.seed is None else int(ctx.seed)
        env = FlowArmEnvironment(
            spec, frequencies, seed=seed,
            max_area=ctx.params.get("max_area"),
            max_power=ctx.params.get("max_power"),
        )
        return ThompsonSampling(env.n_arms, seed=seed + 1), env
