"""Determinism & parallel-safety static analysis (``repro lint``).

The substrate's contract is that every result is a pure function of
(design, options, seed) and every campaign is bit-reproducible across
the :class:`~repro.core.parallel.FlowExecutor` process pool.  This
package encodes those invariants as an AST-based rule pack — unseeded
global RNGs, unguarded module state, nondeterministic iteration,
wall-clock reads, unpicklable pool payloads, METRICS vocabulary drift,
swallowed exceptions, undocumented CLI flags — and runs them over the
tree in CI (``make lint`` / ``repro lint --strict --project src/repro``).

``--project`` mode (:mod:`repro.analysis.project`) additionally builds
the whole-program import/call graph from per-file summaries, enables
the cross-file rules (R009 lock discipline, R010 shared-write
atomicity, R011 scalar-kernel drift, R012 RNG-across-boundary), and
keeps a content-hash incremental cache so warm runs only re-analyze
changed files.

Suppress a finding inline with a justified allow-comment::

    _CACHE = {}  # repro: allow[R002] -- guarded by _LOCK below

See ``docs/static-analysis.md`` for the rule catalog and how to add a
rule.
"""

from repro.analysis.engine import (
    Analyzer,
    LintConfig,
    discover_files,
    find_project_root,
    lint_paths,
)
from repro.analysis.findings import Finding, LintReport, Severity
from repro.analysis.project import (
    LintCache,
    ModuleSummary,
    ProjectContext,
    build_context,
    lint_project_modules,
    lint_project_paths,
    summarize_module,
)
from repro.analysis.registry import (
    ModuleInfo,
    ProjectInfo,
    Rule,
    all_rules,
    get_rule,
    register_rule,
)
from repro.analysis.reporting import format_human, format_json, to_dict
from repro.analysis.suppressions import Suppression, find_suppressions

__all__ = [
    "Analyzer",
    "Finding",
    "LintCache",
    "LintConfig",
    "LintReport",
    "ModuleInfo",
    "ModuleSummary",
    "ProjectContext",
    "ProjectInfo",
    "Rule",
    "Severity",
    "Suppression",
    "all_rules",
    "build_context",
    "discover_files",
    "find_project_root",
    "find_suppressions",
    "format_human",
    "format_json",
    "get_rule",
    "lint_paths",
    "lint_project_modules",
    "lint_project_paths",
    "register_rule",
    "summarize_module",
    "to_dict",
]
