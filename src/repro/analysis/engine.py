"""The analyzer: files -> parsed modules -> rules -> report.

Drives the whole pass: gathers ``.py`` files deterministically, parses
them, runs every enabled rule's module and project hooks, applies
inline suppressions, and returns a :class:`~repro.analysis.findings.LintReport`
sorted by (path, line, rule).  ``repro lint`` and ``make lint`` are
thin wrappers around :func:`lint_paths`.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.findings import (
    PARSE_ERROR_RULE,
    Finding,
    LintReport,
    Severity,
)
from repro.analysis.registry import ModuleInfo, ProjectInfo, Rule, all_rules
from repro.analysis.suppressions import apply_suppressions, find_suppressions

_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "build", "dist"}


@dataclass
class LintConfig:
    """What to run and what counts as failure."""

    select: Optional[Sequence[str]] = None   # rule ids to run (None = all)
    ignore: Sequence[str] = ()               # rule ids to skip
    fail_on: Severity = Severity.ERROR      # exit nonzero at/above this
    strict: bool = False                     # fail on ANY active finding
    project_root: Optional[str] = None       # repo root (docs/, README.md)
    project: bool = False                    # whole-program mode (R009-R012)
    use_cache: bool = True                   # incremental cache (project mode)
    cache_path: Optional[str] = None         # default: <root>/.repro-lint-cache.json

    def enabled_rules(self) -> List[Rule]:
        rules = all_rules()
        if self.select is not None:
            wanted = set(self.select)
            unknown = wanted - {rule.rule_id for rule in rules}
            if unknown:
                raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
            rules = [rule for rule in rules if rule.rule_id in wanted]
        return [rule for rule in rules if rule.rule_id not in set(self.ignore)]

    def fails(self, report: LintReport) -> bool:
        if self.strict:
            return bool(report.findings)
        return report.count_at_least(self.fail_on) > 0


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, duplicate-free file list."""
    out: List[str] = []
    seen = set()
    for path in paths:
        if os.path.isfile(path):
            candidates = [path]
        elif os.path.isdir(path):
            candidates = []
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in _SKIP_DIRS and not d.startswith(".")
                )
                candidates.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames) if name.endswith(".py")
                )
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for cand in candidates:
            resolved = os.path.abspath(cand)
            if resolved not in seen:
                seen.add(resolved)
                out.append(cand)
    return sorted(out, key=lambda p: _rel_path(p, None))


def find_project_root(start: str) -> str:
    """Walk up from ``start`` to the repo root (pyproject.toml / .git)."""
    here = os.path.abspath(start if os.path.isdir(start)
                           else os.path.dirname(start) or ".")
    while True:
        if any(os.path.exists(os.path.join(here, marker))
               for marker in ("pyproject.toml", "setup.py", ".git")):
            return here
        parent = os.path.dirname(here)
        if parent == here:
            return os.path.abspath(start)
        here = parent


def _rel_path(path: str, root: Optional[str]) -> str:
    if root:
        try:
            rel = os.path.relpath(os.path.abspath(path), root)
            if not rel.startswith(".."):
                return rel.replace(os.sep, "/")
        except ValueError:  # different drive on win32
            pass
    return path.replace(os.sep, "/")


class Analyzer:
    """One configured lint pass; reusable across file sets."""

    def __init__(self, config: Optional[LintConfig] = None):
        self.config = config or LintConfig()
        self.rules = self.config.enabled_rules()

    # ------------------------------------------------------------ entry
    def lint_paths(self, paths: Sequence[str]) -> LintReport:
        files = discover_files(paths)
        root = self.config.project_root or (
            find_project_root(paths[0]) if paths else os.getcwd()
        )
        modules: List[ModuleInfo] = []
        parse_failures: List[Finding] = []
        for path in files:
            rel = _rel_path(path, root)
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                parse_failures.append(Finding(
                    rule_id=PARSE_ERROR_RULE,
                    severity=Severity.ERROR,
                    path=rel,
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                ))
                continue
            modules.append(ModuleInfo(path=rel, source=source, tree=tree))
        report = self._run(ProjectInfo(root=root, modules=modules))
        report.findings.extend(parse_failures)
        report.findings.sort(key=lambda f: f.sort_key)
        report.n_files = len(files)
        return report

    def lint_source(self, source: str, path: str = "snippet.py",
                    root: Optional[str] = None) -> LintReport:
        """Lint one in-memory module (the test fixtures' entry point)."""
        tree = ast.parse(source, filename=path)
        module = ModuleInfo(path=path, source=source, tree=tree)
        report = self._run(ProjectInfo(root=root or os.getcwd(),
                                       modules=[module]))
        report.n_files = 1
        return report

    # ------------------------------------------------------------ internals
    def _run(self, project: ProjectInfo) -> LintReport:
        by_module: Dict[str, List[Finding]] = {
            module.path: [] for module in project.modules
        }
        for rule in self.rules:
            for module in project.modules:
                self._collect(rule.check_module(module), by_module)
            self._collect(rule.check_project(project), by_module)

        report = LintReport(
            rule_ids=tuple(rule.rule_id for rule in self.rules)
        )
        module_paths = set()
        for module in project.modules:
            module_paths.add(module.path)
            suppressions = find_suppressions(module.source, module.tree)
            active, silenced = apply_suppressions(
                by_module[module.path], suppressions, module.path
            )
            report.findings.extend(active)
            report.suppressed.extend(silenced)
        for path, findings in by_module.items():
            if path not in module_paths:  # defensive: no source to check
                report.findings.extend(findings)
        report.findings.sort(key=lambda f: f.sort_key)
        report.suppressed.sort(key=lambda f: f.sort_key)
        return report

    @staticmethod
    def _collect(findings: Iterable[Finding],
                 by_module: Dict[str, List[Finding]]) -> None:
        for finding in findings:
            # findings for files outside the linted set (defensive) are kept
            by_module.setdefault(finding.path, []).append(finding)


def lint_paths(paths: Sequence[str],
               config: Optional[LintConfig] = None) -> LintReport:
    """Convenience: configure, run, report.

    With ``config.project`` set, dispatches to the whole-program
    analyzer (:func:`repro.analysis.project.lint_project_paths`) —
    summary-based cross-file rules plus the incremental cache.
    """
    if config is not None and config.project:
        from repro.analysis.project import lint_project_paths
        return lint_project_paths(paths, config)
    return Analyzer(config).lint_paths(paths)
