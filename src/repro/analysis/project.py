"""Whole-program analysis: summaries, graphs and the incremental cache.

``repro lint --project`` grows the per-file rule pack into a
whole-program pass.  The layer has three parts:

- **Per-file summaries** (:class:`ModuleSummary`): one deterministic
  AST walk per file extracts everything the cross-file rules need —
  imports, top-level symbols, mutable globals and locks, per-function
  call sites with the lock context lexically held at each, shared-state
  mutations, write-style file opens, RNG constructions and executor
  boundary payloads.  Summaries are plain data, so they serialize into
  the incremental cache and a warm run never re-parses unchanged files.

- **The project context** (:class:`ProjectContext`): built once per run
  from the summaries — module symbol table, import graph, call graph,
  plus two interprocedural fixpoints: ``inherited_locks`` (the locks a
  private helper is guaranteed to hold because *every* in-project call
  site holds them) and ``init_only`` (helpers reachable only from
  ``__init__``, where pre-publication mutation is safe).  Cross-file
  rules (R009-R012) implement :meth:`~repro.analysis.registry.Rule.check_context`
  against this object.

- **The incremental cache** (:class:`LintCache`): content-hash-keyed
  per-file entries holding the summary, the raw (pre-suppression)
  module-rule findings and the parsed suppressions.  The cache key is
  the file's SHA-256 plus a pack signature (rule ids +
  :data:`ANALYSIS_CACHE_VERSION`), so editing one file re-analyzes only
  that file and bumping the version constant invalidates everything.
  Writes are atomic (``mkstemp`` + ``os.replace``) — the cache itself
  obeys R010.

Everything is ordered: files sorted, dict keys sorted on write, graph
edges sorted — the same tree produces byte-identical reports and cache
files regardless of discovery order.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import dotted_name, import_aliases, resolve_call_target
from repro.analysis.engine import (
    LintConfig,
    _rel_path,
    discover_files,
    find_project_root,
)
from repro.analysis.findings import (
    PARSE_ERROR_RULE,
    Finding,
    LintReport,
    Severity,
)
from repro.analysis.registry import ModuleInfo
from repro.analysis.suppressions import (
    Suppression,
    apply_suppressions,
    find_suppressions,
)

#: bump when summaries, fixpoints or any rule's logic change shape —
#: stale caches are then discarded wholesale instead of replaying
#: findings the current pack would no longer produce
ANALYSIS_CACHE_VERSION = 1

#: executor-surface method names whose arguments cross the process
#: boundary (kept in sync with rules/pickle_safety.py)
BOUNDARY_METHODS = {"run_jobs", "run_one", "map", "submit"}

#: calls that construct an explicit RNG generator object
_RNG_CONSTRUCTORS = {"numpy.random.default_rng", "random.Random",
                     "numpy.random.Generator"}

_LOCK_CALLS = {"threading.Lock", "threading.RLock"}
_MUTABLE_CALLS = {"dict", "list", "set", "collections.OrderedDict",
                  "collections.defaultdict", "collections.deque"}
_MUTATOR_METHODS = {
    "append", "add", "update", "setdefault", "pop", "popitem", "clear",
    "extend", "insert", "remove", "discard", "move_to_end", "appendleft",
}


# --------------------------------------------------------------- summaries
@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function."""

    raw: str                  # dotted text as written ("self.m", "mod.f", "f")
    lineno: int
    locks: Tuple[str, ...]    # candidate lock tokens lexically held
    flock_before: bool        # an fcntl.flock call precedes this site


@dataclass(frozen=True)
class MutationSite:
    """One mutation of shared state (module global or self attribute)."""

    scope: str                # "global" | "attr"
    name: str                 # resolved token / bare attribute name
    cls: str                  # owning class for attr scope, else ""
    lineno: int
    locks: Tuple[str, ...]
    via: str                  # "subscript" | "method:<m>" | "rebind" | "del"


@dataclass(frozen=True)
class WriteSite:
    """One write-mode file open / write call."""

    lineno: int
    call: str                 # "open" | "os.open" | "os.fdopen" | ".open" | ...
    path_text: str            # source text of the path expression
    protections: Tuple[str, ...]  # "append" | "flock" | "tmp-replace"
    locks: Tuple[str, ...]


@dataclass(frozen=True)
class BoundaryPayload:
    """One expression crossing the executor process boundary."""

    method: str               # boundary method name (run_jobs, map, ...)
    kind: str                 # "callable" | "rng-call" | "rng-name" | "call"
    target: str               # resolved token / description
    lineno: int


@dataclass
class FunctionSummary:
    """Everything the cross-file rules need from one function."""

    qualname: str             # "Class.method", "func", "<module>"
    lineno: int = 0
    cls: str = ""             # enclosing class name, "" at module level
    calls: List[CallSite] = field(default_factory=list)
    mutations: List[MutationSite] = field(default_factory=list)
    writes: List[WriteSite] = field(default_factory=list)
    rng_unseeded: List[Tuple[int, str]] = field(default_factory=list)
    boundary: List[BoundaryPayload] = field(default_factory=list)
    returns_generator: bool = False
    uses_flock: bool = False

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "cls": self.cls,
            "calls": [[c.raw, c.lineno, list(c.locks), c.flock_before]
                      for c in self.calls],
            "mutations": [[m.scope, m.name, m.cls, m.lineno, list(m.locks),
                           m.via] for m in self.mutations],
            "writes": [[w.lineno, w.call, w.path_text, list(w.protections),
                        list(w.locks)] for w in self.writes],
            "rng_unseeded": [list(site) for site in self.rng_unseeded],
            "boundary": [[b.method, b.kind, b.target, b.lineno]
                         for b in self.boundary],
            "returns_generator": self.returns_generator,
            "uses_flock": self.uses_flock,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        return cls(
            qualname=data["qualname"],
            lineno=data["lineno"],
            cls=data["cls"],
            calls=[CallSite(raw, line, tuple(locks), flock)
                   for raw, line, locks, flock in data["calls"]],
            mutations=[MutationSite(scope, name, mcls, line, tuple(locks), via)
                       for scope, name, mcls, line, locks, via
                       in data["mutations"]],
            writes=[WriteSite(line, call, text, tuple(prot), tuple(locks))
                    for line, call, text, prot, locks in data["writes"]],
            rng_unseeded=[(line, desc) for line, desc in data["rng_unseeded"]],
            boundary=[BoundaryPayload(method, kind, target, line)
                      for method, kind, target, line in data["boundary"]],
            returns_generator=data["returns_generator"],
            uses_flock=data["uses_flock"],
        )


@dataclass
class ModuleSummary:
    """The per-file fact base the :class:`ProjectContext` is built from."""

    path: str                 # repo-relative, '/'-separated
    module_name: str          # dotted import name ("repro.eda.flow")
    aliases: Dict[str, str] = field(default_factory=dict)
    imports: List[str] = field(default_factory=list)   # dotted modules
    top_level: Dict[str, int] = field(default_factory=dict)
    classes: List[str] = field(default_factory=list)
    mutable_globals: Dict[str, int] = field(default_factory=dict)
    lock_globals: List[str] = field(default_factory=list)
    lock_attrs: Dict[str, List[str]] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    # R006 / R008 raw material
    metric_literals: List[str] = field(default_factory=list)
    emit_sites: List[Tuple[int, str]] = field(default_factory=list)
    vocabulary: Optional[Dict[str, int]] = None
    cli_flags: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "module_name": self.module_name,
            "aliases": self.aliases,
            "imports": self.imports,
            "top_level": self.top_level,
            "classes": self.classes,
            "mutable_globals": self.mutable_globals,
            "lock_globals": self.lock_globals,
            "lock_attrs": self.lock_attrs,
            "functions": {name: fn.to_dict()
                          for name, fn in sorted(self.functions.items())},
            "metric_literals": self.metric_literals,
            "emit_sites": [list(site) for site in self.emit_sites],
            "vocabulary": self.vocabulary,
            "cli_flags": self.cli_flags,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        return cls(
            path=data["path"],
            module_name=data["module_name"],
            aliases=dict(data["aliases"]),
            imports=list(data["imports"]),
            top_level={k: int(v) for k, v in data["top_level"].items()},
            classes=list(data["classes"]),
            mutable_globals={k: int(v)
                             for k, v in data["mutable_globals"].items()},
            lock_globals=list(data["lock_globals"]),
            lock_attrs={k: list(v) for k, v in data["lock_attrs"].items()},
            functions={name: FunctionSummary.from_dict(fn)
                       for name, fn in data["functions"].items()},
            metric_literals=list(data["metric_literals"]),
            emit_sites=[(int(line), name)
                        for line, name in data["emit_sites"]],
            vocabulary=(None if data["vocabulary"] is None
                        else {k: int(v) for k, v in data["vocabulary"].items()}),
            cli_flags={k: int(v) for k, v in data["cli_flags"].items()},
        )


def module_name_for(path: str) -> str:
    """Dotted import name for a repo-relative path.

    ``src/repro/eda/flow.py`` -> ``repro.eda.flow`` (everything after a
    ``src`` component); without one, the path itself with ``/`` -> ``.``.
    ``__init__.py`` names the package.
    """
    parts = path.replace(os.sep, "/").split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part) or "<root>"


class _Summarizer:
    """One deterministic AST walk producing a :class:`ModuleSummary`."""

    def __init__(self, module: ModuleInfo):
        self.module = module
        self.aliases = import_aliases(module.tree)
        # per-function names bound to RNG generator constructions
        self._rng_names: Dict[str, Set[str]] = {}
        self.summary = ModuleSummary(
            path=module.path,
            module_name=module_name_for(module.path),
            aliases=dict(sorted(self.aliases.items())),
        )

    # -------------------------------------------------------------- entry
    def run(self) -> ModuleSummary:
        tree = self.module.tree
        self._collect_imports(tree)
        self._collect_top_level(tree)
        self._collect_metric_material(tree)
        module_fn = FunctionSummary(qualname="<module>", lineno=1)
        self.summary.functions["<module>"] = module_fn
        self._walk_scope(tree.body, module_fn, locals_=set(),
                         global_decls=set(), locks=(), cls="")
        for name, node in self._iter_functions(tree, prefix="", cls=""):
            fn = FunctionSummary(qualname=name, lineno=node.lineno,
                                 cls=name.rsplit(".", 1)[0] if "." in name else "")
            self.summary.functions[name] = fn
            locals_ = self._local_bindings(node)
            global_decls = self._global_decls(node)
            self._walk_scope(node.body, fn, locals_=locals_,
                             global_decls=global_decls, locks=(),
                             cls=fn.cls)
            self._finish_function(fn)
        self._finish_function(module_fn)
        self.summary.functions = dict(sorted(self.summary.functions.items()))
        return self.summary

    # ---------------------------------------------------------- module facts
    def _collect_imports(self, tree: ast.Module) -> None:
        mods: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                mods.update(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    mods.add(node.module)
                elif node.level:
                    base = self.summary.module_name.split(".")
                    base = base[: max(0, len(base) - node.level)]
                    target = ".".join(base + ([node.module]
                                              if node.module else []))
                    if target:
                        mods.add(target)
                        # resolve relative aliases too
                        for alias in node.names:
                            if alias.name != "*":
                                self.aliases[alias.asname or alias.name] = \
                                    f"{target}.{alias.name}"
        self.summary.imports = sorted(mods)
        self.summary.aliases = dict(sorted(self.aliases.items()))

    def _collect_top_level(self, tree: ast.Module) -> None:
        s = self.summary
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                s.top_level[stmt.name] = stmt.lineno
            elif isinstance(stmt, ast.ClassDef):
                s.top_level[stmt.name] = stmt.lineno
                s.classes.append(stmt.name)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                s.top_level[name] = stmt.lineno
                if isinstance(stmt.value, ast.Call) and \
                        resolve_call_target(stmt.value, self.aliases) \
                        in _LOCK_CALLS:
                    s.lock_globals.append(name)
                elif self._is_mutable_literal(stmt.value):
                    s.mutable_globals[name] = stmt.lineno
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                s.top_level[stmt.target.id] = stmt.lineno
                if stmt.value is not None and \
                        self._is_mutable_literal(stmt.value):
                    s.mutable_globals[stmt.target.id] = stmt.lineno

    def _collect_metric_material(self, tree: ast.Module) -> None:
        # lazily import to keep a single source of truth for the
        # vocabulary regex and emit-method set (rule R006) and the CLI
        # flag extractor (rule R008)
        from repro.analysis.rules.cli_docs import _cli_flags
        from repro.analysis.rules.metrics_vocab import (
            _EMIT_METHODS,
            _NAME_RE,
            _extract_vocabulary,
        )

        literals: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and \
                    isinstance(node.value, str) and _NAME_RE.match(node.value):
                literals.add(node.value)
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _EMIT_METHODS and node.args):
                first = node.args[0]
                if isinstance(first, ast.Constant) and \
                        isinstance(first.value, str) and \
                        _NAME_RE.match(first.value):
                    self.summary.emit_sites.append((first.lineno, first.value))
        self.summary.metric_literals = sorted(literals)
        self.summary.emit_sites.sort()
        self.summary.vocabulary = _extract_vocabulary(self.module)
        self.summary.cli_flags = _cli_flags(self.module)

    def _is_mutable_literal(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                             ast.ListComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            target = resolve_call_target(node, self.aliases)
            if target in _MUTABLE_CALLS:
                return True
            if target is None and isinstance(node.func, ast.Name):
                return node.func.id in _MUTABLE_CALLS
        return False

    # --------------------------------------------------------- function walk
    def _iter_functions(self, node: ast.AST, prefix: str, cls: str):
        """Yield (qualname, def-node) for every function, outer first."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = prefix + child.name
                yield name, child
                yield from self._iter_functions(child, name + ".", cls)
            elif isinstance(child, ast.ClassDef):
                yield from self._iter_functions(
                    child, prefix + child.name + ".", child.name)

    def _walk_scope(self, body, fn: FunctionSummary, locals_: Set[str],
                    global_decls: Set[str], locks: Tuple[str, ...],
                    cls: str) -> None:
        """Record sites for one function scope (no descent into defs)."""
        for node in body:
            self._visit(node, fn, locals_, global_decls, locks, cls)

    def _visit(self, node, fn, locals_, global_decls, locks, cls) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes summarized separately
        if isinstance(node, ast.With):
            held = list(locks)
            for item in node.items:
                token = self._lock_token(item.context_expr, locals_, cls)
                if token is not None:
                    held.append(token)
                self._visit(item.context_expr, fn, locals_, global_decls,
                            locks, cls)
            for child in node.body:
                self._visit(child, fn, locals_, global_decls,
                            tuple(held), cls)
            return

        self._record_mutation(node, fn, locals_, global_decls, locks, cls)
        if isinstance(node, ast.Call):
            self._record_call(node, fn, locals_, locks, cls)
        if isinstance(node, ast.Return) and node.value is not None:
            if self._is_rng_expr(node.value, fn):
                fn.returns_generator = True
        if isinstance(node, ast.Assign):
            # track names bound to generator constructions in this scope
            if isinstance(node.value, ast.Call) and \
                    self._rng_target(node.value) is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._rng_names.setdefault(fn.qualname,
                                                   set()).add(target.id)
        for child in ast.iter_child_nodes(node):
            self._visit(child, fn, locals_, global_decls, locks, cls)

    # ------------------------------------------------------------- helpers
    def _lock_token(self, expr: ast.AST, locals_: Set[str],
                    cls: str) -> Optional[str]:
        """Candidate lock token for a ``with`` context expression."""
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in locals_:
                return None
            if name in self.summary.lock_globals:
                return f"{self.summary.module_name}.{name}"
            target = self.aliases.get(name)
            if target and "." in target:
                return target  # filtered against lock globals at build
            return None
        if isinstance(expr, ast.Attribute) and \
                isinstance(expr.value, ast.Name) and expr.value.id == "self" \
                and cls:
            return f"{self.summary.module_name}.{cls}.{expr.attr}"
        return None

    def _record_mutation(self, node, fn, locals_, global_decls, locks,
                         cls) -> None:
        sites: List[Tuple[str, str, str, str]] = []  # scope, name, cls, via
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (node.targets
                       if isinstance(node, (ast.Assign, ast.Delete))
                       else [node.target])
            via = "del" if isinstance(node, ast.Delete) else "rebind"
            for target in targets:
                if isinstance(target, ast.Subscript):
                    base = target.value
                    if isinstance(base, ast.Name):
                        sites.append(("global", base.id, "", "subscript"))
                    elif self._is_self_attr(base, cls):
                        sites.append(("attr", base.attr, cls, "subscript"))
                elif isinstance(target, ast.Name):
                    if target.id in global_decls:
                        sites.append(("global", target.id, "", via))
                elif self._is_self_attr(target, cls):
                    sites.append(("attr", target.attr, cls, via))
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATOR_METHODS:
            base = node.func.value
            via = f"method:{node.func.attr}"
            if isinstance(base, ast.Name):
                sites.append(("global", base.id, "", via))
            elif self._is_self_attr(base, cls):
                sites.append(("attr", base.attr, cls, via))

        for scope, name, owner, via in sites:
            if scope == "global":
                token = self._global_token(name, locals_, global_decls)
                if token is None:
                    continue
                fn.mutations.append(MutationSite(
                    scope="global", name=token, cls="",
                    lineno=node.lineno, locks=locks, via=via))
            else:
                if name.startswith("__"):
                    continue
                # lock attributes are assigned, not "mutated"
                if name in self.summary.lock_attrs.get(owner, ()):
                    continue
                fn.mutations.append(MutationSite(
                    scope="attr", name=name, cls=owner,
                    lineno=node.lineno, locks=locks, via=via))

        # record per-class lock attributes (self._lock = threading.Lock())
        if isinstance(node, ast.Assign) and cls and \
                isinstance(node.value, ast.Call) and \
                resolve_call_target(node.value, self.aliases) in _LOCK_CALLS:
            for target in node.targets:
                if self._is_self_attr(target, cls):
                    attrs = self.summary.lock_attrs.setdefault(cls, [])
                    if target.attr not in attrs:
                        attrs.append(target.attr)
                    # retroactively drop the assignment we just recorded
                    fn.mutations = [
                        m for m in fn.mutations
                        if not (m.scope == "attr" and m.cls == cls
                                and m.name == target.attr)
                    ]

    @staticmethod
    def _is_self_attr(node: ast.AST, cls: str) -> bool:
        return (bool(cls) and isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self")

    def _global_token(self, name: str, locals_: Set[str],
                      global_decls: Set[str]) -> Optional[str]:
        if name in global_decls:
            return f"{self.summary.module_name}.{name}"
        if name in locals_:
            return None
        if name in self.summary.mutable_globals or \
                name in self.summary.top_level:
            return f"{self.summary.module_name}.{name}"
        target = self.aliases.get(name)
        if target and "." in target:
            return target
        return None

    def _rng_target(self, call: ast.Call) -> Optional[str]:
        target = resolve_call_target(call, self.aliases)
        return target if target in _RNG_CONSTRUCTORS else None

    def _is_rng_expr(self, expr: ast.AST, fn: FunctionSummary) -> bool:
        if isinstance(expr, ast.Call) and self._rng_target(expr) is not None:
            return True
        return (isinstance(expr, ast.Name)
                and expr.id in self._rng_names.get(fn.qualname, ()))

    def _record_call(self, node: ast.Call, fn: FunctionSummary, locals_,
                     locks, cls) -> None:
        raw = dotted_name(node.func)
        flock_before = fn.uses_flock
        if raw is not None:
            target = resolve_call_target(node, self.aliases)
            if target == "fcntl.flock" or raw.endswith(".flock"):
                fn.uses_flock = True
            fn.calls.append(CallSite(raw=raw, lineno=node.lineno,
                                     locks=locks,
                                     flock_before=flock_before))
            rng = self._rng_target(node)
            if rng is not None and self._is_unseeded(node):
                fn.rng_unseeded.append((node.lineno, rng))
            self._record_write(node, raw, target, fn, locks)
        elif isinstance(node.func, ast.Attribute):
            # method call on a computed object: keep attr-level facts
            if node.func.attr == "flock":
                fn.uses_flock = True
            self._record_write(node, "." + node.func.attr, None, fn, locks)
        self._record_boundary(node, fn, locals_, cls)
        # initializer= callables are executed inside every pool worker
        for kw in node.keywords:
            if kw.arg == "initializer":
                target = self._callable_token(kw.value, locals_)
                if target:
                    fn.boundary.append(BoundaryPayload(
                        method="initializer", kind="callable",
                        target=target, lineno=node.lineno))

    @staticmethod
    def _is_unseeded(call: ast.Call) -> bool:
        if call.keywords:
            return False
        if not call.args:
            return True
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None

    # ------------------------------------------------------------- writes
    _WRITE_MODE = frozenset("wax+")

    def _record_write(self, node: ast.Call, raw: str,
                      target: Optional[str], fn: FunctionSummary,
                      locks) -> None:
        call_kind = None
        path_text = ""
        protections: List[str] = []

        def mode_of(index: int, kwname: str) -> Optional[str]:
            for kw in node.keywords:
                if kw.arg == kwname and isinstance(kw.value, ast.Constant):
                    return str(kw.value.value)
            if len(node.args) > index and \
                    isinstance(node.args[index], ast.Constant):
                return str(node.args[index].value)
            return None

        if raw == "open" or target == "os.fdopen" or raw == "os.fdopen":
            mode = mode_of(1, "mode") or "r"
            if not (set(mode) & self._WRITE_MODE):
                return
            call_kind = "os.fdopen" if "fdopen" in raw else "open"
            path_text = ast.unparse(node.args[0]) if node.args else ""
            if "a" in mode:
                protections.append("append")
        elif target == "os.open" or raw == "os.open":
            flags_text = (ast.unparse(node.args[1])
                          if len(node.args) > 1 else "")
            if "O_WRONLY" not in flags_text and "O_RDWR" not in flags_text:
                return
            call_kind = "os.open"
            path_text = ast.unparse(node.args[0]) if node.args else ""
            if "O_APPEND" in flags_text:
                protections.append("append")
        elif raw.endswith(".open") and isinstance(node.func, ast.Attribute):
            mode = mode_of(0, "mode") or "r"
            if not (set(mode) & self._WRITE_MODE):
                return
            call_kind = ".open"
            path_text = ast.unparse(node.func.value)
            if "a" in mode:
                protections.append("append")
        elif raw.endswith((".write_text", ".write_bytes")) and \
                isinstance(node.func, ast.Attribute):
            call_kind = "." + node.func.attr
            path_text = ast.unparse(node.func.value)
        else:
            return
        fn.writes.append(WriteSite(
            lineno=node.lineno, call=call_kind, path_text=path_text,
            protections=tuple(protections), locks=tuple(locks)))

    # ----------------------------------------------------------- boundary
    def _record_boundary(self, node: ast.Call, fn: FunctionSummary,
                         locals_, cls) -> None:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr in BOUNDARY_METHODS):
            return
        method = node.func.attr
        stack = list(node.args) + [kw.value for kw in node.keywords]
        while stack:
            expr = stack.pop()
            if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
                stack.extend(expr.elts)
            elif isinstance(expr, ast.Dict):
                stack.extend(v for v in expr.values if v is not None)
            elif isinstance(expr, ast.Starred):
                stack.append(expr.value)
            elif isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
                stack.append(expr.elt)
            elif isinstance(expr, ast.Call):
                rng = self._rng_target(expr)
                if rng is not None:
                    fn.boundary.append(BoundaryPayload(
                        method=method, kind="rng-call", target=rng,
                        lineno=expr.lineno))
                else:
                    called = self._callable_token(expr.func, locals_)
                    if called:
                        fn.boundary.append(BoundaryPayload(
                            method=method, kind="call", target=called,
                            lineno=expr.lineno))
                stack.extend(expr.args)
                stack.extend(kw.value for kw in expr.keywords)
            elif isinstance(expr, ast.Name):
                if expr.id in self._rng_names.get(fn.qualname, ()):
                    fn.boundary.append(BoundaryPayload(
                        method=method, kind="rng-name", target=expr.id,
                        lineno=expr.lineno))
                else:
                    token = self._callable_token(expr, locals_)
                    if token:
                        fn.boundary.append(BoundaryPayload(
                            method=method, kind="callable", target=token,
                            lineno=expr.lineno))

    def _callable_token(self, expr: ast.AST, locals_) -> str:
        """Resolved dotted token for a function reference, or ''."""
        name = dotted_name(expr)
        if name is None:
            return ""
        root, _, rest = name.partition(".")
        if root in locals_:
            return ""
        if not rest and name in self.summary.top_level:
            return f"{self.summary.module_name}.{name}"
        target = self.aliases.get(root)
        if target:
            return f"{target}.{rest}" if rest else target
        return ""

    # ------------------------------------------------------------- finish
    def _finish_function(self, fn: FunctionSummary) -> None:
        """Apply function-level protections to recorded write sites."""
        uses_replace = any(
            c.raw in ("os.replace", "os.rename")
            or self.aliases.get(c.raw.partition(".")[0], "") == "os"
            and c.raw.endswith((".replace", ".rename"))
            for c in fn.calls)
        uses_mkstemp = any(
            resolve_call_target_raw(c.raw, self.aliases).startswith("tempfile.")
            for c in fn.calls)
        if not fn.writes:
            return
        new = []
        for w in fn.writes:
            protections = list(w.protections)
            if fn.uses_flock and "flock" not in protections:
                protections.append("flock")
            if uses_replace and (uses_mkstemp or "tmp" in w.path_text
                                 or "fd" in w.path_text):
                if "tmp-replace" not in protections:
                    protections.append("tmp-replace")
            new.append(WriteSite(w.lineno, w.call, w.path_text,
                                 tuple(protections), w.locks))
        fn.writes = new

    # ---------------------------------------------------------- local scan
    @staticmethod
    def _local_bindings(func: ast.AST) -> Set[str]:
        bound: Set[str] = set()
        hoisted: Set[str] = set()
        args = func.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            bound.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                hoisted.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                bound.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and \
                    isinstance(node.target, ast.Name):
                bound.add(node.target.id)
            elif isinstance(node, ast.withitem) and \
                    isinstance(node.optional_vars, ast.Name):
                bound.add(node.optional_vars.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not func:
                bound.add(node.name)
        return bound - hoisted

    @staticmethod
    def _global_decls(func: ast.AST) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                out.update(node.names)
        return out


def resolve_call_target_raw(raw: str, aliases: Dict[str, str]) -> str:
    """Resolve a dotted call text through the import alias map."""
    root, _, rest = raw.partition(".")
    target = aliases.get(root)
    if target is None:
        return raw
    return f"{target}.{rest}" if rest else target


def summarize_module(module: ModuleInfo) -> ModuleSummary:
    """Extract the cross-file fact base from one parsed module."""
    return _Summarizer(module).run()


# ----------------------------------------------------------------- context
@dataclass
class ProjectContext:
    """The whole program, as seen by cross-file rules."""

    root: str
    summaries: Dict[str, ModuleSummary]            # path -> summary
    module_by_name: Dict[str, str] = field(default_factory=dict)
    import_graph: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    call_graph: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: callee token -> ((caller token, call lineno, caller-held locks), ...)
    callers: Dict[str, Tuple[Tuple[str, int, Tuple[str, ...]], ...]] = \
        field(default_factory=dict)
    lock_tokens: frozenset = frozenset()
    inherited_locks: Dict[str, frozenset] = field(default_factory=dict)
    init_only: frozenset = frozenset()
    worker_reachable: frozenset = frozenset()
    cache: Optional["LintCache"] = None

    # ------------------------------------------------------------ queries
    def function(self, token: str) -> Optional[FunctionSummary]:
        mod, qualname = self.split_token(token)
        if mod is None:
            return None
        return self.summaries[self.module_by_name[mod]].functions.get(qualname)

    def split_token(self, token: str) -> Tuple[Optional[str], str]:
        """``repro.eda.flow.F.g`` -> (``repro.eda.flow``, ``F.g``)."""
        parts = token.split(".")
        for i in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:i])
            if mod in self.module_by_name:
                return mod, ".".join(parts[i:])
        return None, token

    def path_of(self, token: str) -> Optional[str]:
        mod, _ = self.split_token(token)
        return self.module_by_name.get(mod) if mod else None

    def effective_locks(self, token: str,
                        site_locks: Tuple[str, ...]) -> frozenset:
        """Locks provably held at a site: lexical + caller-inherited."""
        held = {t for t in site_locks if t in self.lock_tokens}
        held.update(self.inherited_locks.get(token, frozenset()))
        return frozenset(held)

    def in_init_context(self, token: str) -> bool:
        """True when the function only runs before its object/module is
        shared (``__init__`` itself, or helpers only ``__init__`` calls)."""
        _, qualname = self.split_token(token)
        return qualname.endswith("__init__") or token in self.init_only

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "files": len(self.summaries),
            "functions": sum(len(s.functions)
                             for s in self.summaries.values()),
            "import_edges": sum(len(v) for v in self.import_graph.values()),
            "call_edges": sum(len(v) for v in self.call_graph.values()),
            "lock_tokens": len(self.lock_tokens),
            "worker_reachable": len(self.worker_reachable),
        }
        if self.cache is not None and self.cache.enabled:
            out["cache"] = {"hits": self.cache.hits,
                            "misses": self.cache.misses}
        return out

    # --------------------------------------------------------- aux caching
    def aux_get(self, key: str, sig: str):
        if self.cache is None:
            return None
        return self.cache.aux_get(key, sig)

    def aux_put(self, key: str, sig: str, value) -> None:
        if self.cache is not None:
            self.cache.aux_put(key, sig, value)


def build_context(root: str, summaries: Dict[str, ModuleSummary],
                  cache: Optional["LintCache"] = None) -> ProjectContext:
    """Assemble graphs and fixpoints from per-file summaries."""
    summaries = dict(sorted(summaries.items()))
    ctx = ProjectContext(root=root, summaries=summaries, cache=cache)
    ctx.module_by_name = {s.module_name: path
                          for path, s in summaries.items()}

    # import graph restricted to in-project modules
    names = set(ctx.module_by_name)
    for path, s in summaries.items():
        edges = sorted({m for m in s.imports if m in names
                        and m != s.module_name})
        ctx.import_graph[s.module_name] = tuple(edges)

    # lock universe
    locks: Set[str] = set()
    for s in summaries.values():
        locks.update(f"{s.module_name}.{n}" for n in s.lock_globals)
        for cls, attrs in s.lock_attrs.items():
            locks.update(f"{s.module_name}.{cls}.{a}" for a in attrs)
    ctx.lock_tokens = frozenset(locks)

    # call graph
    tokens: Dict[str, FunctionSummary] = {}
    for s in summaries.values():
        for qualname, fn in s.functions.items():
            tokens[f"{s.module_name}.{qualname}"] = fn

    def resolve_call(s: ModuleSummary, fn: FunctionSummary,
                     raw: str) -> Optional[str]:
        if raw.startswith("self.") and fn.cls:
            cand = f"{s.module_name}.{fn.cls}.{raw[5:]}"
            return cand if cand in tokens else None
        root_name, _, rest = raw.partition(".")
        if not rest:
            cand = f"{s.module_name}.{raw}"
            if cand in tokens:
                return cand
            if raw in s.classes:
                init = f"{s.module_name}.{raw}.__init__"
                return init if init in tokens else None
        target = s.aliases.get(root_name)
        dotted = (f"{target}.{rest}" if rest else target) if target else None
        if dotted is None and rest:
            cand = f"{s.module_name}.{raw}"
            return cand if cand in tokens else None
        if dotted is None:
            return None
        if dotted in tokens:
            return dotted
        init = f"{dotted}.__init__"
        return init if init in tokens else None

    callers: Dict[str, List[Tuple[str, CallSite]]] = {}
    for path, s in summaries.items():
        for qualname, fn in s.functions.items():
            token = f"{s.module_name}.{qualname}"
            callees: Set[str] = set()
            for site in fn.calls:
                resolved = resolve_call(s, fn, site.raw)
                if resolved is not None and resolved != token:
                    callees.add(resolved)
                    callers.setdefault(resolved, []).append((token, site))
            ctx.call_graph[token] = tuple(sorted(callees))
    ctx.callers = {
        callee: tuple(sorted(
            (caller, site.lineno, site.locks) for caller, site in sites
        ))
        for callee, sites in sorted(callers.items())
    }

    # ---------------------------------------------------------- fixpoints
    def is_private(token: str) -> bool:
        leaf = token.rsplit(".", 1)[-1]
        return leaf.startswith("_") and not leaf.startswith("__")

    # inherited locks: private helpers whose EVERY in-project call site
    # holds a lock inherit the intersection of those lock sets
    inherited: Dict[str, frozenset] = {
        t: (frozenset(locks) if is_private(t) and callers.get(t)
            else frozenset())
        for t in tokens
    }
    for _ in range(len(tokens)):
        changed = False
        for t in sorted(tokens):
            if not (is_private(t) and callers.get(t)):
                continue
            acc: Optional[frozenset] = None
            for caller, site in callers[t]:
                held = {x for x in site.locks if x in ctx.lock_tokens}
                held |= inherited.get(caller, frozenset())
                acc = frozenset(held) if acc is None else (acc & held)
            acc = acc or frozenset()
            if acc != inherited[t]:
                inherited[t] = acc
                changed = True
        if not changed:
            break
    ctx.inherited_locks = {t: v for t, v in inherited.items() if v}

    # init-only: private helpers reachable solely from __init__ contexts
    init_only: Dict[str, bool] = {
        t: bool(is_private(t) and callers.get(t)) for t in tokens
    }
    for _ in range(len(tokens)):
        changed = False
        for t in sorted(tokens):
            if not (is_private(t) and callers.get(t)):
                continue
            ok = all(
                caller.rsplit(".", 1)[-1] == "__init__"
                or init_only.get(caller, False)
                for caller, _site in callers[t]
            )
            if ok != init_only[t]:
                init_only[t] = ok
                changed = True
        if not changed:
            break
    ctx.init_only = frozenset(t for t, v in init_only.items() if v)

    # worker reachability: functions shipped across the process boundary
    seeds: Set[str] = set()
    for s in summaries.values():
        for fn in s.functions.values():
            for payload in fn.boundary:
                if payload.kind == "callable" and payload.target in tokens:
                    seeds.add(payload.target)
    reachable = set(seeds)
    frontier = sorted(seeds)
    while frontier:
        nxt: Set[str] = set()
        for token in frontier:
            for callee in ctx.call_graph.get(token, ()):
                if callee not in reachable:
                    reachable.add(callee)
                    nxt.add(callee)
        frontier = sorted(nxt)
    ctx.worker_reachable = frozenset(reachable)
    return ctx


# ------------------------------------------------------------------- cache
class LintCache:
    """Content-hash-keyed per-file cache for ``repro lint --project``.

    One JSON file holds, per analyzed path: the file's SHA-256, the raw
    (pre-suppression) module-rule findings, the parsed suppressions and
    the :class:`ModuleSummary`.  A warm run re-analyzes only files whose
    hash changed; everything cross-file is recomputed from summaries, so
    warm findings are identical to a cold run by construction.  The
    whole file is discarded when the pack signature (enabled rules +
    :data:`ANALYSIS_CACHE_VERSION`) changes.
    """

    def __init__(self, path: Optional[str], signature: str,
                 enabled: bool = True):
        self.path = path
        self.signature = signature
        self.enabled = enabled and path is not None
        self.hits = 0
        self.misses = 0
        self._files: Dict[str, dict] = {}
        self._aux: Dict[str, dict] = {}
        self._dirty = False
        if self.enabled:
            self._load()

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return
        if data.get("version") != ANALYSIS_CACHE_VERSION or \
                data.get("signature") != self.signature:
            return
        files = data.get("files")
        aux = data.get("aux")
        if isinstance(files, dict):
            self._files = files
        if isinstance(aux, dict):
            self._aux = aux

    # -------------------------------------------------------------- files
    def lookup(self, rel_path: str, sha: str) -> Optional[dict]:
        entry = self._files.get(rel_path) if self.enabled else None
        if entry is not None and entry.get("sha") == sha:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, rel_path: str, sha: str, entry: dict) -> None:
        if not self.enabled:
            return
        entry = dict(entry)
        entry["sha"] = sha
        self._files[rel_path] = entry
        self._dirty = True

    def prune(self, keep: Sequence[str]) -> None:
        """Drop entries for files no longer in the linted set."""
        if not self.enabled:
            return
        keep_set = set(keep)
        stale = [p for p in self._files if p not in keep_set]
        for p in stale:
            del self._files[p]
            self._dirty = True

    # ---------------------------------------------------------------- aux
    def aux_get(self, key: str, sig: str):
        if not self.enabled:
            return None
        entry = self._aux.get(key)
        if entry is not None and entry.get("sig") == sig:
            return entry.get("value")
        return None

    def aux_put(self, key: str, sig: str, value) -> None:
        if not self.enabled:
            return
        self._aux[key] = {"sig": sig, "value": value}
        self._dirty = True

    # --------------------------------------------------------------- save
    def save(self) -> None:
        if not (self.enabled and self._dirty):
            return
        payload = {
            "version": ANALYSIS_CACHE_VERSION,
            "signature": self.signature,
            "files": {k: self._files[k] for k in sorted(self._files)},
            "aux": {k: self._aux[k] for k in sorted(self._aux)},
        }
        directory = os.path.dirname(self.path) or "."
        try:
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh, sort_keys=True)
                os.replace(tmp, self.path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            pass  # a cold next run is the only cost


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def pack_signature(rule_ids: Sequence[str]) -> str:
    payload = f"{ANALYSIS_CACHE_VERSION}:{','.join(sorted(rule_ids))}"
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------- driver
def _serialize_suppressions(sups: List[Suppression]) -> list:
    return [[s.line, list(s.rule_ids), s.justification, s.end_line]
            for s in sups]


def _deserialize_suppressions(data: list) -> List[Suppression]:
    return [Suppression(line=line, rule_ids=tuple(rules),
                        justification=just, end_line=end)
            for line, rules, just, end in data]


def lint_project_paths(paths: Sequence[str],
                       config: Optional[LintConfig] = None) -> LintReport:
    """The ``--project`` entry point: incremental whole-program lint."""
    config = config or LintConfig()
    rules = config.enabled_rules()
    files = discover_files(paths)
    root = config.project_root or (
        find_project_root(paths[0]) if paths else os.getcwd()
    )
    signature = pack_signature([rule.rule_id for rule in rules])
    cache_path = None
    if config.use_cache:
        cache_path = config.cache_path or os.path.join(
            root, ".repro-lint-cache.json")
    cache = LintCache(cache_path, signature, enabled=config.use_cache)

    summaries: Dict[str, ModuleSummary] = {}
    raw_findings: Dict[str, List[Finding]] = {}
    suppressions: Dict[str, List[Suppression]] = {}
    parse_failures: List[Finding] = []
    rel_paths: List[str] = []

    for path in files:
        rel = _rel_path(path, root)
        rel_paths.append(rel)
        with open(path, "rb") as fh:
            raw = fh.read()
        sha = content_hash(raw)
        entry = cache.lookup(rel, sha)
        if entry is not None:
            error = entry.get("error")
            if error is not None:
                parse_failures.append(Finding(
                    rule_id=PARSE_ERROR_RULE, severity=Severity.ERROR,
                    path=rel, line=int(error["line"]),
                    message=error["message"]))
                continue
            summaries[rel] = ModuleSummary.from_dict(entry["summary"])
            raw_findings[rel] = [Finding.from_dict(f)
                                 for f in entry["findings"]]
            suppressions[rel] = _deserialize_suppressions(
                entry["suppressions"])
            continue
        source = raw.decode("utf-8")
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            message = f"file does not parse: {exc.msg}"
            parse_failures.append(Finding(
                rule_id=PARSE_ERROR_RULE, severity=Severity.ERROR,
                path=rel, line=exc.lineno or 1, message=message))
            cache.store(rel, sha, {
                "error": {"line": exc.lineno or 1, "message": message}})
            continue
        module = ModuleInfo(path=rel, source=source, tree=tree)
        findings: List[Finding] = []
        for rule in rules:
            findings.extend(rule.check_module(module))
        findings.sort(key=lambda f: f.sort_key)
        sups = find_suppressions(source, tree)
        summary = summarize_module(module)
        summaries[rel] = summary
        raw_findings[rel] = findings
        suppressions[rel] = sups
        cache.store(rel, sha, {
            "summary": summary.to_dict(),
            "findings": [f.to_dict() for f in findings],
            "suppressions": _serialize_suppressions(sups),
        })

    cache.prune(rel_paths)
    context = build_context(root, summaries, cache=cache)
    context_findings: List[Finding] = []
    for rule in rules:
        context_findings.extend(rule.check_context(context))
    cache.save()

    by_path: Dict[str, List[Finding]] = {rel: [] for rel in summaries}
    passthrough: List[Finding] = []
    for finding in context_findings:
        if finding.path in by_path:
            by_path[finding.path].append(finding)
        else:
            passthrough.append(finding)  # defensive: outside linted set

    report = LintReport(rule_ids=tuple(rule.rule_id for rule in rules))
    for rel in sorted(summaries):
        merged = raw_findings.get(rel, []) + by_path[rel]
        merged.sort(key=lambda f: f.sort_key)
        active, silenced = apply_suppressions(
            merged, suppressions.get(rel, []), rel)
        report.findings.extend(active)
        report.suppressed.extend(silenced)
    report.findings.extend(passthrough)
    report.findings.extend(parse_failures)
    report.findings.sort(key=lambda f: f.sort_key)
    report.suppressed.sort(key=lambda f: f.sort_key)
    report.n_files = len(files)
    report.project_stats = context.stats()
    return report


def lint_project_modules(modules: Sequence[ModuleInfo], root: str,
                         config: Optional[LintConfig] = None) -> LintReport:
    """Project-mode lint over in-memory modules (the fixtures' entry
    point): no cache, same summary-based pipeline as the file driver."""
    config = config or LintConfig()
    rules = config.enabled_rules()
    summaries: Dict[str, ModuleSummary] = {}
    raw_findings: Dict[str, List[Finding]] = {}
    suppressions: Dict[str, List[Suppression]] = {}
    for module in modules:
        findings: List[Finding] = []
        for rule in rules:
            findings.extend(rule.check_module(module))
        findings.sort(key=lambda f: f.sort_key)
        summaries[module.path] = summarize_module(module)
        raw_findings[module.path] = findings
        suppressions[module.path] = find_suppressions(module.source,
                                                      module.tree)
    context = build_context(root, summaries, cache=None)
    context_findings: List[Finding] = []
    for rule in rules:
        context_findings.extend(rule.check_context(context))

    by_path: Dict[str, List[Finding]] = {rel: [] for rel in summaries}
    passthrough: List[Finding] = []
    for finding in context_findings:
        if finding.path in by_path:
            by_path[finding.path].append(finding)
        else:
            passthrough.append(finding)
    report = LintReport(rule_ids=tuple(rule.rule_id for rule in rules))
    for rel in sorted(summaries):
        merged = raw_findings[rel] + by_path[rel]
        merged.sort(key=lambda f: f.sort_key)
        active, silenced = apply_suppressions(merged, suppressions[rel], rel)
        report.findings.extend(active)
        report.suppressed.extend(silenced)
    report.findings.extend(passthrough)
    report.findings.sort(key=lambda f: f.sort_key)
    report.suppressed.sort(key=lambda f: f.sort_key)
    report.n_files = len(modules)
    report.project_stats = context.stats()
    return report
