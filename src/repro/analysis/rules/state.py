"""R002: module-level mutable state mutated without a lock.

A module-level dict/list/set is shared by every thread in the process
(the metrics drain thread, campaign threads) and *duplicated* into
every pool worker — mutations are both race-prone and silently
non-shared across the ``FlowExecutor`` process boundary.  Read-only
module constants are fine; the rule fires only when the object is
actually mutated somewhere in the module and the mutation site is not
inside a ``with <module-level threading.Lock>`` block.

Legitimate caches keep the lock (see ``_CPU_MAP_CACHE`` in
``repro/bench/corpus.py``) or carry an inline allow with the rationale.
"""

from __future__ import annotations

import ast
from typing import Dict, Set

from repro.analysis.astutil import import_aliases, resolve_call_target
from repro.analysis.findings import Severity
from repro.analysis.registry import ModuleInfo, Rule, register_rule

_MUTABLE_CALLS = {"dict", "list", "set", "collections.OrderedDict",
                  "collections.defaultdict", "collections.deque"}
_LOCK_CALLS = {"threading.Lock", "threading.RLock"}
_MUTATOR_METHODS = {
    "append", "add", "update", "setdefault", "pop", "popitem", "clear",
    "extend", "insert", "remove", "discard", "move_to_end", "appendleft",
}


def _is_mutable_literal(node: ast.AST, aliases) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        target = resolve_call_target(node, aliases)
        if target in _MUTABLE_CALLS:
            return True
        # builtins are not imports; resolve them by bare name
        if target is None and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_CALLS
    return False


@register_rule
class MutableModuleStateRule(Rule):
    rule_id = "R002"
    name = "unguarded-module-state"
    severity = Severity.ERROR
    description = (
        "module-level mutable containers mutated outside a module "
        "threading.Lock are race-prone and not shared across pool workers"
    )

    def check_module(self, module: ModuleInfo):
        aliases = import_aliases(module.tree)
        tracked: Dict[str, int] = {}   # name -> definition line
        locks: Set[str] = set()
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id.startswith("__"):  # __all__ and friends
                continue
            if isinstance(stmt.value, ast.Call) and \
                    resolve_call_target(stmt.value, aliases) in _LOCK_CALLS:
                locks.add(target.id)
            elif _is_mutable_literal(stmt.value, aliases):
                tracked[target.id] = stmt.lineno
        if not tracked:
            return

        findings = []
        self._scan(module.tree, tracked, locks, lock_held=False,
                   module=module, out=findings)
        yield from findings

    def _scan(self, node: ast.AST, tracked, locks, lock_held: bool,
              module: ModuleInfo, out: list) -> None:
        """Depth-first walk that tracks whether a module lock is held."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # names rebound locally shadow the module object; only
            # `global`-declared ones still alias the tracked state
            shadowed = self._local_bindings(node)
            visible = {k: v for k, v in tracked.items() if k not in shadowed}
            for child in node.body:
                self._scan(child, visible, locks, lock_held, module, out)
            return
        if isinstance(node, ast.With):
            held_here = lock_held or any(
                isinstance(item.context_expr, ast.Name)
                and item.context_expr.id in locks
                for item in node.items
            )
            for child in node.body:
                self._scan(child, tracked, locks, held_here, module, out)
            for item in node.items:
                self._scan(item.context_expr, tracked, locks, lock_held,
                           module, out)
            return

        name = self._mutated_name(node)
        if name is not None and name in tracked and not lock_held:
            out.append(self.finding(
                module, node.lineno,
                f"module-level mutable '{name}' mutated without holding a "
                f"module threading.Lock; guard it or inject the state",
                col=getattr(node, "col_offset", 0),
            ))
        for child in ast.iter_child_nodes(node):
            self._scan(child, tracked, locks, lock_held, module, out)

    @staticmethod
    def _local_bindings(func: ast.AST) -> Set[str]:
        """Names the function rebinds locally (params + plain assigns),
        minus anything it declares ``global``."""
        bound: Set[str] = set()
        hoisted: Set[str] = set()
        args = func.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            bound.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                hoisted.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and \
                    isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        return bound - hoisted

    @staticmethod
    def _mutated_name(node: ast.AST):
        """The tracked name this node mutates, if any."""
        # cache[key] = v / del cache[key] / cache[key] += v
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (node.targets if isinstance(node, (ast.Assign, ast.Delete))
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Subscript) and \
                        isinstance(target.value, ast.Name):
                    return target.value.id
        # cache.update(...) / items.append(...)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS and \
                    isinstance(node.func.value, ast.Name):
                return node.func.value.id
        return None
