"""R010: non-atomic writes to shared files (project mode).

Worker processes, reruns and concurrent flows all touch the same
cache/stats/metrics files.  A plain ``open(path, "w")`` to one of those
paths tears under concurrency: a reader can observe a half-written
file, and two writers interleave.  Three idioms make a shared write
safe, and the executor's ``_persist_cache_stats`` demonstrates all of
them:

- **append-only**: mode ``"a"`` / ``os.O_APPEND`` — the kernel makes
  each small write atomic (the JSONL pattern);
- **flock**: an ``fcntl.flock`` taken in the same function serializes
  writers (advisory, but every writer in this repo takes it);
- **tmp-replace**: write a ``tempfile.mkstemp`` sibling then
  ``os.replace`` it over the target — readers see the old or the new
  file, never a mix.

The rule consumes :class:`~repro.analysis.project.WriteSite` summaries:
a write-mode open whose path expression *looks shared* (mentions
cache / stats / metrics / jsonl / persist / log) and that carries none
of the three protections is flagged.  Paths that are clearly private
(tempfiles, user-supplied output arguments with no shared-looking
name) are left alone — this rule polices the repo's shared mutable
files, not every file the code ever writes.
"""

from __future__ import annotations

import re

from repro.analysis.findings import Severity
from repro.analysis.registry import Rule, register_rule

#: tokens marking a path expression as shared mutable state (the
#: lookbehind keeps e.g. "verilog" from matching "log")
_SHARED_HINTS = re.compile(
    r"(?<![a-zA-Z])(cache|stats|metrics|jsonl|persist|log)", re.IGNORECASE
)
#: substrings marking the write as the private half of tmp-replace
_PRIVATE_HINTS = re.compile(r"tmp|temp|mkstemp|fd\b", re.IGNORECASE)


@register_rule
class SharedWriteAtomicityRule(Rule):
    rule_id = "R010"
    name = "non-atomic-shared-write"
    severity = Severity.ERROR
    description = (
        "writes to shared cache/stats/metrics files must be append-mode, "
        "flock-serialized, or tmp-write + os.replace (--project mode)"
    )

    def check_context(self, context):
        for path, summary in context.summaries.items():
            for qualname, fn in sorted(summary.functions.items()):
                for site in fn.writes:
                    if site.protections:
                        continue
                    if not _SHARED_HINTS.search(site.path_text):
                        continue
                    if _PRIVATE_HINTS.search(site.path_text):
                        continue
                    yield self.finding_at(
                        path, site.lineno,
                        f"write to shared path {site.path_text!r} is not "
                        f"atomic: use append mode, fcntl.flock, or write a "
                        f"tempfile and os.replace() it over the target",
                    )
