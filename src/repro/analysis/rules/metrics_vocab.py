"""R006: METRICS vocabulary drift.

METRICS lesson (2): one name, one meaning.  Two drift modes break it:

- an emitter sends a name the schema does not define — the record is
  rejected at transmission time, i.e. a latent runtime crash;
- the schema defines a name nothing ever emits — dead vocabulary that
  readers (the miner, dashboards) wait on forever.

The rule resolves the vocabulary from the *linted* project's
``metrics/schema.py`` when present (AST-extracted, so fixtures can
carry their own mini-schema), else from the installed
:mod:`repro.metrics.schema`.  Emitters are literal first arguments to
``.send(...)`` / ``.record(...)`` / ``.emit(...)``; the no-emitter
check also accepts any string literal elsewhere in the project (the
flow wrappers route names through mapping dicts like
``_STEP_METRICS``), and is skipped entirely when the schema module is
not part of the linted set.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Severity
from repro.analysis.registry import ModuleInfo, ProjectInfo, Rule, register_rule

_EMIT_METHODS = {"send", "record", "emit"}
# kept in sync with repro.metrics.schema._NAME_RE: one or more
# dot-separated segments after the first (stage events have three)
_NAME_RE = re.compile(r"^[a-z_]+(\.[a-z_]+)+$")


def _extract_vocabulary(schema: ModuleInfo) -> Optional[Dict[str, int]]:
    """``VOCABULARY`` keys -> schema line, from the module's AST."""
    for stmt in schema.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name) and \
                stmt.targets[0].id == "VOCABULARY" and \
                isinstance(stmt.value, ast.Dict):
            return {
                key.value: key.lineno
                for key in stmt.value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
    return None


@register_rule
class MetricsVocabularyRule(Rule):
    rule_id = "R006"
    name = "metrics-vocabulary-drift"
    severity = Severity.ERROR
    description = (
        "emitted metric names must exist in the METRICS vocabulary, "
        "and every vocabulary entry needs an emitter"
    )

    def check_project(self, project: ProjectInfo):
        schema = None
        for module in project.modules:
            if module.path.endswith("metrics/schema.py"):
                schema = module
                break
        vocabulary = _extract_vocabulary(schema) if schema is not None else None
        if vocabulary is None:
            try:
                from repro.metrics.schema import VOCABULARY
            except ImportError:  # pragma: no cover - repro is importable here
                return
            vocabulary = {name: 0 for name in VOCABULARY}

        emitted: Set[str] = set()
        referenced: Set[str] = set()
        unknown: List[Tuple[ModuleInfo, int, str]] = []
        for module in project.modules:
            if schema is not None and module is schema:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Constant) and \
                        isinstance(node.value, str) and \
                        _NAME_RE.match(node.value):
                    referenced.add(node.value)
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _EMIT_METHODS
                        and node.args):
                    continue
                first = node.args[0]
                if not (isinstance(first, ast.Constant)
                        and isinstance(first.value, str)):
                    continue
                name = first.value
                if not _NAME_RE.match(name):
                    continue  # e.g. a file path; not a metric name
                emitted.add(name)
                if name not in vocabulary:
                    unknown.append((module, first.lineno, name))

        for module, line, name in unknown:
            yield self.finding(
                module, line,
                f"metric '{name}' is not in the METRICS vocabulary "
                f"(repro.metrics.schema.VOCABULARY); records with it are "
                f"rejected at transmission time",
            )
        if schema is not None:
            for name in sorted(vocabulary):
                if name not in emitted and name not in referenced:
                    yield self.finding(
                        schema, vocabulary[name],
                        f"vocabulary entry '{name}' has no emitter anywhere "
                        f"in the linted tree; remove it or emit it",
                        severity=Severity.WARNING,
                    )

    def check_context(self, context):
        """Summary-based variant for ``--project`` mode (no ASTs)."""
        schema_path = None
        for path in context.summaries:
            if path.endswith("metrics/schema.py"):
                schema_path = path
                break
        vocabulary = (context.summaries[schema_path].vocabulary
                      if schema_path is not None else None)
        if vocabulary is None:
            schema_path = None  # file present but no VOCABULARY dict
            try:
                from repro.metrics.schema import VOCABULARY
            except ImportError:  # pragma: no cover - repro is importable here
                return
            vocabulary = {name: 0 for name in VOCABULARY}

        emitted: Set[str] = set()
        referenced: Set[str] = set()
        for path, summary in context.summaries.items():
            if path == schema_path:
                continue
            referenced.update(summary.metric_literals)
            for line, name in summary.emit_sites:
                emitted.add(name)
                if name not in vocabulary:
                    yield self.finding_at(
                        path, line,
                        f"metric '{name}' is not in the METRICS vocabulary "
                        f"(repro.metrics.schema.VOCABULARY); records with it "
                        f"are rejected at transmission time",
                    )
        if schema_path is not None:
            for name in sorted(vocabulary):
                if name not in emitted and name not in referenced:
                    yield self.finding_at(
                        schema_path, vocabulary[name],
                        f"vocabulary entry '{name}' has no emitter anywhere "
                        f"in the linted tree; remove it or emit it",
                        severity=Severity.WARNING,
                    )
