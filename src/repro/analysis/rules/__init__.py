"""The builtin determinism & parallel-safety rule pack.

Importing this package registers every rule (the modules register on
import via :func:`~repro.analysis.registry.register_rule`):

======  ==============================  ========
id      name                            severity
======  ==============================  ========
R001    unseeded-global-rng             error
R002    unguarded-module-state          error
R003    nondeterministic-iteration      error
R004    wall-clock-read                 error
R005    unpicklable-across-pool         error
R006    metrics-vocabulary-drift        error*
R007    swallowed-exception             error*
R008    undocumented-cli-flag           warning
R009    inconsistent-lock-discipline    error
R010    non-atomic-shared-write         error
R011    scalar-kernel-drift             error
R012    rng-across-process-boundary     error
======  ==============================  ========

(*) R006 reports dead vocabulary entries and R007 reports swallowed
broad handlers at *warning*; their headline findings are errors.

R009-R012 are whole-program rules: they implement ``check_context``
against the :class:`~repro.analysis.project.ProjectContext` and only
fire in ``repro lint --project`` mode.

See ``docs/static-analysis.md`` for the catalog with rationale and
fix recipes.
"""

from repro.analysis.rules import (  # noqa: F401  (register on import)
    cli_docs,
    exceptions,
    io_atomicity,
    iteration,
    kernel_drift,
    metrics_vocab,
    pickle_safety,
    races,
    rng,
    rng_taint,
    state,
    wallclock,
)
