"""The builtin determinism & parallel-safety rule pack.

Importing this package registers every rule (the modules register on
import via :func:`~repro.analysis.registry.register_rule`):

======  ==============================  ========
id      name                            severity
======  ==============================  ========
R001    unseeded-global-rng             error
R002    unguarded-module-state          error
R003    nondeterministic-iteration      error
R004    wall-clock-read                 error
R005    unpicklable-across-pool         error
R006    metrics-vocabulary-drift        error*
R007    swallowed-exception             error*
R008    undocumented-cli-flag           warning
======  ==============================  ========

(*) R006 reports dead vocabulary entries and R007 reports swallowed
broad handlers at *warning*; their headline findings are errors.

See ``docs/static-analysis.md`` for the catalog with rationale and
fix recipes.
"""

from repro.analysis.rules import (  # noqa: F401  (register on import)
    cli_docs,
    exceptions,
    iteration,
    metrics_vocab,
    pickle_safety,
    rng,
    state,
    wallclock,
)
