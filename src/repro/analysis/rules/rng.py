"""R001: unseeded global random number generators.

The paper's Fig 3 claim — tool noise is a *statistical* object — only
reproduces if every stochastic component draws from an explicitly
seeded generator that is injected into it.  ``random.random()`` and the
``np.random.*`` module-level functions share hidden global state: two
campaigns with the same seeds diverge the moment any code path touches
them, and pool workers each re-seed the global independently, so the
noise model silently changes with ``n_workers``.  Construct
``np.random.default_rng(seed)`` / ``random.Random(seed)`` and pass the
generator instead.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import import_aliases, resolve_call_target
from repro.analysis.findings import Severity
from repro.analysis.registry import ModuleInfo, Rule, register_rule

#: numpy.random attributes that construct *explicit* generators — the
#: approved way to get randomness — rather than touching global state
_SEEDABLE_CONSTRUCTORS = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}

#: stdlib ``random`` attributes that are classes, not global-state calls
_STDLIB_CLASSES = {"Random", "SystemRandom"}


@register_rule
class UnseededGlobalRngRule(Rule):
    rule_id = "R001"
    name = "unseeded-global-rng"
    severity = Severity.ERROR
    description = (
        "module-level RNG state (random.* / np.random.* functions) is "
        "forbidden; inject a seeded random.Random or numpy Generator"
    )

    def check_module(self, module: ModuleInfo):
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, aliases)
            if target is None:
                continue
            parts = target.split(".")
            if parts[0] == "random" and len(parts) == 2:
                if parts[1] in _STDLIB_CLASSES:
                    continue
                yield self.finding(
                    module, node.lineno,
                    f"call to global-state RNG '{target}'; use an "
                    f"injected random.Random(seed) instead",
                    col=node.col_offset,
                )
            elif parts[:2] == ["numpy", "random"] and len(parts) == 3:
                if parts[2] in _SEEDABLE_CONSTRUCTORS:
                    continue
                yield self.finding(
                    module, node.lineno,
                    f"call to global-state RNG 'np.random.{parts[2]}'; use "
                    f"an injected np.random.default_rng(seed) instead",
                    col=node.col_offset,
                )
