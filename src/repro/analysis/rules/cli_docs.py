"""R008: CLI flags no document mentions.

Every ``add_argument("--flag", ...)`` in ``repro/cli.py`` is public
API; a flag that no file under ``docs/`` (or the README) mentions is
invisible to users and silently rots.  The rule cross-references the
flag strings in the CLI module against the text of ``README.md`` and
``docs/**/*.md`` in the project root — ``docs/cli.md`` is the canonical
place; mentioning the flag in any document satisfies the rule.
"""

from __future__ import annotations

import ast
import os
from typing import Dict

from repro.analysis.findings import Severity
from repro.analysis.registry import ModuleInfo, ProjectInfo, Rule, register_rule


def _cli_flags(cli: ModuleInfo) -> Dict[str, int]:
    """flag string -> first definition line, from add_argument calls."""
    flags: Dict[str, int] = {}
    for node in ast.walk(cli.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"):
            continue
        for arg in node.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str) \
                    and arg.value.startswith("--"):
                flags.setdefault(arg.value, arg.lineno)
    return flags


def _docs_text(root: str) -> str:
    chunks = []
    readme = os.path.join(root, "README.md")
    if os.path.isfile(readme):
        with open(readme, encoding="utf-8") as fh:
            chunks.append(fh.read())
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for dirpath, dirnames, filenames in os.walk(docs_dir):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(".md"):
                    with open(os.path.join(dirpath, name),
                              encoding="utf-8") as fh:
                        chunks.append(fh.read())
    return "\n".join(chunks)


@register_rule
class UndocumentedCliFlagRule(Rule):
    rule_id = "R008"
    name = "undocumented-cli-flag"
    severity = Severity.WARNING
    description = (
        "every repro.cli flag must be mentioned in README.md or a doc "
        "under docs/ (docs/cli.md is the canonical reference)"
    )

    def check_project(self, project: ProjectInfo):
        cli = project.module_named("cli.py")
        if cli is None:
            return
        flags = _cli_flags(cli)
        if not flags:
            return
        docs = _docs_text(project.root)
        for flag in sorted(flags):
            if flag not in docs:
                yield self.finding(
                    cli, flags[flag],
                    f"CLI flag '{flag}' is not mentioned in README.md or "
                    f"any doc under docs/; document it (docs/cli.md)",
                )

    def check_context(self, context):
        """Summary-based variant for ``--project`` mode (no ASTs)."""
        for path, summary in context.summaries.items():
            if path.rsplit("/", 1)[-1] != "cli.py" or not summary.cli_flags:
                continue
            docs = _docs_text(context.root)
            for flag in sorted(summary.cli_flags):
                if flag not in docs:
                    yield self.finding_at(
                        path, summary.cli_flags[flag],
                        f"CLI flag '{flag}' is not mentioned in README.md or "
                        f"any doc under docs/; document it (docs/cli.md)",
                    )
