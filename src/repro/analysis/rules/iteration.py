"""R003: nondeterministic iteration orders feeding results.

``set`` iteration order varies with insertion history and hash
randomization; ``os.listdir``/``glob.glob`` order varies with the
filesystem.  Any such order that reaches a result list, a metrics
stream, or a report breaks bit-reproducibility between runs and between
machines.  Wrap the expression in ``sorted(...)`` (cheap at these
sizes) or iterate a deterministically-ordered container instead.

The rule is syntactic: it flags iteration over expressions that are
*provably* unordered (set literals/constructors/comprehensions,
listdir/glob calls) when they are not consumed by an order-insensitive
reducer (``sorted``, ``min``, ``max``, ``sum``, ``len``, ``any``,
``all``, ``frozenset``, ``set``).  Sets held in variables are out of
scope — the linter does not do type inference.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import (
    import_aliases,
    resolve_call_target,
    walk_with_parents,
)
from repro.analysis.findings import Severity
from repro.analysis.registry import ModuleInfo, Rule, register_rule

_UNORDERED_CALLS = {"os.listdir", "glob.glob", "glob.iglob"}
_ORDER_INSENSITIVE = {"sorted", "min", "max", "sum", "len", "any", "all",
                      "set", "frozenset"}
#: consumers that materialize the (arbitrary) order into an output
_ORDER_MATERIALIZERS = {"list", "tuple", "enumerate"}


def _unordered_reason(node: ast.AST, aliases) -> str:
    """Why this expression has no defined order ('' when it does)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and \
                node.func.id in ("set", "frozenset"):
            return node.func.id
        target = resolve_call_target(node, aliases)
        if target in _UNORDERED_CALLS:
            return target
    return ""


@register_rule
class NondeterministicIterationRule(Rule):
    rule_id = "R003"
    name = "nondeterministic-iteration"
    severity = Severity.ERROR
    description = (
        "iterating a set / os.listdir / glob in arbitrary order feeds "
        "nondeterminism into results; wrap in sorted(...)"
    )

    def check_module(self, module: ModuleInfo):
        aliases = import_aliases(module.tree)
        for node, parents in walk_with_parents(module.tree):
            reason = ""
            where = node
            if isinstance(node, (ast.For, ast.AsyncFor)):
                reason = _unordered_reason(node.iter, aliases)
                where = node.iter
            elif isinstance(node, ast.comprehension):
                reason = _unordered_reason(node.iter, aliases)
                where = node.iter
                # `{... for x in set(...)}` building a set/reduction is fine
                if parents and isinstance(parents[-1], (ast.SetComp,
                                                        ast.DictComp)):
                    continue
            elif isinstance(node, ast.Call):
                reason = self._materialized_reason(node, aliases)
            if not reason:
                continue
            yield self.finding(
                module, where.lineno,
                f"iteration over unordered '{reason}' result; wrap it in "
                f"sorted(...) so the order is reproducible",
                col=where.col_offset,
            )

    @staticmethod
    def _materialized_reason(node: ast.Call, aliases) -> str:
        """list(set(...)), tuple(os.listdir(...)), sep.join(set(...))."""
        consumer = None
        if isinstance(node.func, ast.Name) and \
                node.func.id in _ORDER_MATERIALIZERS:
            consumer = node.func.id
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "join":
            consumer = "join"
        if consumer is None or len(node.args) < 1:
            return ""
        reason = _unordered_reason(node.args[0], aliases)
        return f"{reason}' passed to '{consumer}" if reason else ""
