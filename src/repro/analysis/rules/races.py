"""R009: inconsistent lock discipline on shared state (project mode).

A module global or instance attribute that is mutated under a lock at
one site must be mutated under a lock at *every* site — a single
unguarded writer races every guarded one, and the bug only shows up as
a rare nondeterministic corruption (the exact failure mode this repo's
determinism charter exists to prevent).

The rule is interprocedural through the summaries in
:class:`~repro.analysis.project.ProjectContext`:

- the lock held at a site is its lexical ``with`` stack *plus* the
  ``inherited_locks`` fixpoint (a private helper whose every in-project
  call site holds a lock is analyzed as holding it too — the
  ``MetricsServer.receive -> _append`` shape);
- sites inside ``__init__`` or the ``init_only`` fixpoint (helpers
  reachable solely from ``__init__``) are exempt — the object is not
  published yet, so pre-publication mutation cannot race;
- module-level statements are exempt (imports are serialized by the
  import lock and run once).

Only a *mixed* group fires: state never locked anywhere is single-owner
by convention (and R002 already polices module-global mutation); state
locked everywhere is correct.  The finding lands on each unguarded
site and names a guarded site to compare against.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.findings import Severity
from repro.analysis.registry import Rule, register_rule


@register_rule
class LockDisciplineRule(Rule):
    rule_id = "R009"
    name = "inconsistent-lock-discipline"
    severity = Severity.ERROR
    description = (
        "shared state guarded by a lock at one mutation site must be "
        "guarded at every mutation site (interprocedural, --project mode)"
    )

    def check_context(self, context):
        # group key -> [(path, line, locks_held, display_name)]
        groups: Dict[Tuple[str, ...], List[Tuple[str, int, frozenset, str]]] \
            = {}
        for path, summary in context.summaries.items():
            for qualname, fn in summary.functions.items():
                if qualname == "<module>":
                    continue  # import-time is serialized and runs once
                token = f"{summary.module_name}.{qualname}"
                if context.in_init_context(token):
                    continue  # pre-publication mutation cannot race
                for site in fn.mutations:
                    if site.scope == "global":
                        key = ("global", site.name)
                        display = site.name
                    else:
                        key = ("attr", summary.module_name, site.cls,
                               site.name)
                        display = f"{site.cls}.{site.name}"
                    for at_path, line, held in self._attributed_sites(
                            context, token, path, site):
                        groups.setdefault(key, []).append(
                            (at_path, line, held, display))

        for key in sorted(groups):
            sites = sorted(groups[key], key=lambda s: (s[0], s[1]))
            guarded = [s for s in sites if s[2]]
            unguarded = [s for s in sites if not s[2]]
            if not guarded or not unguarded:
                continue  # consistent discipline (all or nothing)
            ref_path, ref_line, ref_locks, display = guarded[0]
            lock = sorted(ref_locks)[0]
            for path, line, _held, name in unguarded:
                yield self.finding_at(
                    path, line,
                    f"'{name}' is mutated under lock '{lock}' at "
                    f"{ref_path}:{ref_line} but mutated without a lock "
                    f"here; every mutation site must hold the lock",
                )

    @staticmethod
    def _attributed_sites(context, token, path, site):
        """Where a mutation 'happens' for discipline purposes.

        A private helper's mutation is attributed to its call sites
        (each with that caller's lock context) — ``receive`` calling
        ``_append`` under the lock while ``sneak`` calls it bare is a
        race *at the bare call site*, which is also where the fix goes.
        Non-private functions, and helpers nobody calls, keep the
        mutation at its own line.
        """
        leaf = token.rsplit(".", 1)[-1]
        call_sites = (context.callers.get(token, ())
                      if leaf.startswith("_") and not leaf.startswith("__")
                      else ())
        if not call_sites:
            yield path, site.lineno, context.effective_locks(
                token, site.locks)
            return
        for caller, lineno, locks in call_sites:
            if context.in_init_context(caller):
                continue  # pre-publication path
            caller_path = context.path_of(caller)
            if caller_path is None:
                continue
            held = context.effective_locks(caller, locks)
            # locks held lexically inside the helper itself still count
            held |= {t for t in site.locks if t in context.lock_tokens}
            yield caller_path, lineno, frozenset(held)
