"""R004: wall-clock reads in deterministic code paths.

Flow and worker code must be a pure function of (design, options,
seed): the substrate models tool cost with a *runtime proxy*
(``FlowResult.runtime_proxy``), so reading the host clock inside a flow
step makes results machine- and load-dependent, and two runs of the
same campaign stop being bit-identical.  ``time.perf_counter`` is
deliberately **not** flagged: it measures durations for executor stats
and never feeds a result.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import import_aliases, resolve_call_target
from repro.analysis.findings import Severity
from repro.analysis.registry import ModuleInfo, Rule, register_rule

_WALL_CLOCK_CALLS = {
    "time.time": "the runtime proxy (FlowResult.runtime_proxy)",
    "time.time_ns": "the runtime proxy (FlowResult.runtime_proxy)",
    "time.localtime": "an injected timestamp",
    "time.gmtime": "an injected timestamp",
    "time.ctime": "an injected timestamp",
    "time.strftime": "an injected timestamp",
    "datetime.datetime.now": "an injected timestamp",
    "datetime.datetime.utcnow": "an injected timestamp",
    "datetime.datetime.today": "an injected timestamp",
    "datetime.date.today": "an injected timestamp",
}


@register_rule
class WallClockRule(Rule):
    rule_id = "R004"
    name = "wall-clock-read"
    severity = Severity.ERROR
    description = (
        "time.time()/datetime.now() make results host- and load-"
        "dependent; use the runtime proxy or inject the timestamp"
    )

    def check_module(self, module: ModuleInfo):
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, aliases)
            if target in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module, node.lineno,
                    f"wall-clock read '{target}' in deterministic code; "
                    f"use {_WALL_CLOCK_CALLS[target]}",
                    col=node.col_offset,
                )
