"""R012: RNG state crossing the process boundary (project mode).

The repo's determinism charter hands every worker its own
``SeedSequence.spawn`` child; two shapes quietly break that and only
show up as run-to-run metric jitter:

- a ``numpy.random.Generator`` (or ``random.Random``) object is placed
  *in* an executor payload — pickling copies the generator's state, so
  every task draws the same stream (correlated "random" decisions), and
  any state the parent advances afterwards diverges from the copies;
- a function that runs *inside* the workers (a payload callable, an
  ``initializer=``, or anything they transitively call) constructs an
  unseeded RNG — each worker then seeds from OS entropy and no two runs
  agree.

The rule is interprocedural over the project call graph: boundary
payloads recorded by the summarizer seed a closure walk, and an
unseeded construction anywhere in the closure is reported *at the
boundary site* (R001 separately flags the construction line itself;
this finding explains which executor call ships it to the workers).
Factories are followed one hop: a payload call whose target's summary
``returns_generator`` is treated as shipping a generator.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.analysis.findings import Severity
from repro.analysis.registry import Rule, register_rule


@register_rule
class RngBoundaryRule(Rule):
    rule_id = "R012"
    name = "rng-across-process-boundary"
    severity = Severity.ERROR
    description = (
        "RNG generators must not cross the executor process boundary, "
        "and worker-side code must not construct unseeded RNGs "
        "(interprocedural, --project mode)"
    )

    def check_context(self, context):
        for path, summary in context.summaries.items():
            for qualname, fn in sorted(summary.functions.items()):
                for payload in fn.boundary:
                    yield from self._check_payload(context, path, payload)

    def _check_payload(self, context, path, payload):
        if payload.kind == "rng-call":
            yield self.finding_at(
                path, payload.lineno,
                f"'{payload.target}' is constructed inside a "
                f"'{payload.method}' payload: the generator crosses the "
                f"process boundary; seed each task from "
                f"SeedSequence.spawn instead",
            )
            return
        if payload.kind == "rng-name":
            yield self.finding_at(
                path, payload.lineno,
                f"RNG generator '{payload.target}' is passed across the "
                f"process boundary via '{payload.method}': pickling "
                f"copies its state, so tasks draw correlated streams; "
                f"pass a spawned seed and construct the generator in the "
                f"worker",
            )
            return
        # callable / call payloads: follow the call graph into the workers
        target = payload.target
        fn = context.function(target)
        if fn is None:
            return
        if payload.kind == "call" and fn.returns_generator:
            yield self.finding_at(
                path, payload.lineno,
                f"'{target}' returns an RNG generator and its result is "
                f"shipped through '{payload.method}': the generator "
                f"crosses the process boundary; pass a spawned seed "
                f"instead",
            )
        site = self._unseeded_in_closure(context, target)
        if site is not None:
            where, line, ctor = site
            role = ("worker initializer" if payload.method == "initializer"
                    else f"'{payload.method}' payload")
            yield self.finding_at(
                path, payload.lineno,
                f"{role} '{target}' transitively constructs an unseeded "
                f"{ctor} (at {where}:{line}): workers seed from OS "
                f"entropy and runs stop being reproducible; thread a "
                f"spawned seed through instead",
            )

    @staticmethod
    def _unseeded_in_closure(
        context, start: str
    ) -> Optional[Tuple[str, int, str]]:
        """First unseeded RNG construction reachable from ``start``."""
        seen: Set[str] = {start}
        frontier: List[str] = [start]
        while frontier:
            token = frontier.pop(0)
            fn = context.function(token)
            if fn is None:
                continue
            if fn.rng_unseeded:
                line, ctor = sorted(fn.rng_unseeded)[0]
                where = context.path_of(token) or token
                return where, line, ctor
            for callee in context.call_graph.get(token, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return None
