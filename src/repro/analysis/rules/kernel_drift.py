"""R011: scalar/vectorized kernel drift (project mode).

The EDA kernels each keep a readable scalar path (``vectorize=False``)
next to the fast vectorized one, and the frozen pre-vectorization
copies live in ``tests/eda/*_reference.py`` as the equivalence oracle.
That oracle only proves anything while the live scalar code and the
frozen copy are *the same algorithm*: someone "fixing" the scalar path
without touching the reference (or vice versa) silently turns the
equivalence tests into a tautology check against stale code.

Each reference module declares which live functions it freezes::

    FROZEN_PAIRS = {
        "src/repro/eda/placement.py::QuadraticPlacer._spread":
            "ReferenceQuadraticPlacer._spread",
    }

The rule parses both sides, normalizes each function body
(unparse -> reparse kills formatting/comments, docstrings dropped,
names of the defs themselves canonicalized) and compares the AST
dumps.  A mismatch is an ERROR on the live function; a manifest entry
whose live or reference function no longer exists is an ERROR on the
reference file, so the manifest cannot rot silently.

Comparisons are cached in the project cache's aux section keyed by the
content hashes of both files, so warm runs skip the parse entirely.
"""

from __future__ import annotations

import ast
import hashlib
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register_rule

#: where the frozen reference modules live, relative to the repo root
REFERENCE_DIR = os.path.join("tests", "eda")


def _iter_defs(node: ast.AST, prefix: str = ""):
    """Yield (qualname, def-node) for every function, classes in path."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            name = prefix + child.name
            yield name, child
            yield from _iter_defs(child, name + ".")
        elif isinstance(child, ast.ClassDef):
            yield from _iter_defs(child, prefix + child.name + ".")
        elif isinstance(child, (ast.If, ast.Try, ast.With, ast.For,
                                ast.While)):
            # defs nested under control flow keep their qualname
            yield from _iter_defs(child, prefix)


def _def_index(tree: ast.Module) -> Dict[str, ast.AST]:
    return dict(_iter_defs(tree))


def normalized_dump(node: ast.AST) -> str:
    """Canonical text of one function: algorithm, not presentation.

    Unparse -> reparse discards formatting and comments; docstrings are
    stripped; the compared defs' own names are canonicalized (live and
    reference spell the enclosing scope differently).
    """
    clone = ast.parse(ast.unparse(node)).body[0]
    clone.name = "<kernel>"
    for sub in ast.walk(clone):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.ClassDef)):
            body = sub.body
            if (body and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)):
                sub.body = body[1:] or [ast.Pass()]
    return ast.dump(clone, include_attributes=False)


def _frozen_pairs(tree: ast.Module) -> Tuple[Dict[str, str], int]:
    """FROZEN_PAIRS dict and its line, ({} , 0) when absent."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name) and \
                stmt.targets[0].id == "FROZEN_PAIRS" and \
                isinstance(stmt.value, ast.Dict):
            pairs = {}
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if isinstance(key, ast.Constant) and \
                        isinstance(value, ast.Constant):
                    pairs[str(key.value)] = str(value.value)
            return pairs, stmt.lineno
    return {}, 0


@register_rule
class KernelDriftRule(Rule):
    rule_id = "R011"
    name = "scalar-kernel-drift"
    severity = Severity.ERROR
    description = (
        "live scalar kernels must match their frozen copies in "
        "tests/eda/*_reference.py (FROZEN_PAIRS manifests, --project mode)"
    )

    def check_context(self, context):
        ref_dir = os.path.join(context.root, REFERENCE_DIR)
        if not os.path.isdir(ref_dir):
            return
        ref_files = [
            name for name in sorted(os.listdir(ref_dir))
            if name.endswith("_reference.py")
        ]
        for name in ref_files:
            yield from self._check_reference(
                context, os.path.join(ref_dir, name),
                f"{REFERENCE_DIR}/{name}".replace(os.sep, "/"))

    # ---------------------------------------------------------------- one
    def _check_reference(self, context, ref_abs: str,
                         ref_rel: str) -> Iterable[Finding]:
        try:
            with open(ref_abs, "rb") as fh:
                ref_raw = fh.read()
        except OSError:
            return
        try:
            ref_tree = ast.parse(ref_raw.decode("utf-8"))
        except SyntaxError:
            return  # the reference file is linted/tested elsewhere
        pairs, manifest_line = _frozen_pairs(ref_tree)
        # restrict to live files actually in the linted set, so linting
        # a subtree never reports on files outside it
        pairs = {key: value for key, value in pairs.items()
                 if key.split("::", 1)[0] in context.summaries}
        if not pairs:
            return

        live_sources: Dict[str, Optional[bytes]] = {}
        for key in sorted(pairs):
            live_rel = key.split("::", 1)[0]
            if live_rel not in live_sources:
                live_abs = os.path.join(context.root, live_rel)
                try:
                    with open(live_abs, "rb") as fh:
                        live_sources[live_rel] = fh.read()
                except OSError:
                    live_sources[live_rel] = None

        sig = hashlib.sha256()
        sig.update(ref_raw)
        for live_rel in sorted(live_sources):
            sig.update(live_rel.encode())
            sig.update(live_sources[live_rel] or b"<unreadable>")
        signature = sig.hexdigest()
        cached = context.aux_get(f"R011:{ref_rel}", signature)
        if cached is not None:
            for data in cached:
                yield Finding.from_dict(data)
            return

        findings: List[Finding] = []
        ref_defs = _def_index(ref_tree)
        live_defs: Dict[str, Dict[str, ast.AST]] = {}
        live_lines: Dict[str, Dict[str, int]] = {}
        for live_rel, raw in live_sources.items():
            if raw is None:
                continue
            try:
                tree = ast.parse(raw.decode("utf-8"))
            except SyntaxError:
                continue  # E000 already reported by the driver
            index = _def_index(tree)
            live_defs[live_rel] = index
            live_lines[live_rel] = {q: node.lineno
                                    for q, node in index.items()}

        for key in sorted(pairs):
            live_rel, live_qual = key.split("::", 1)
            ref_qual = pairs[key]
            live_node = live_defs.get(live_rel, {}).get(live_qual)
            ref_node = ref_defs.get(ref_qual)
            if live_node is None or ref_node is None:
                missing = (f"live function '{live_qual}' in {live_rel}"
                           if live_node is None
                           else f"reference function '{ref_qual}'")
                findings.append(self.finding_at(
                    ref_rel, manifest_line,
                    f"FROZEN_PAIRS entry {key!r} is stale: {missing} "
                    f"does not exist; update the manifest",
                ))
                continue
            if normalized_dump(live_node) != normalized_dump(ref_node):
                findings.append(self.finding_at(
                    live_rel, live_lines[live_rel][live_qual],
                    f"scalar kernel '{live_qual}' has drifted from its "
                    f"frozen reference '{ref_qual}' ({ref_rel}); the "
                    f"scalar/vectorized equivalence tests no longer "
                    f"certify this code — re-freeze deliberately or "
                    f"revert the drift",
                ))

        context.aux_put(f"R011:{ref_rel}", signature,
                        [f.to_dict() for f in findings])
        yield from findings
