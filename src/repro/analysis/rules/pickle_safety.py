"""R005: unpicklable objects crossing the executor process boundary.

Everything submitted to :class:`~repro.core.parallel.FlowExecutor`
(jobs, ``stop_callback``, ``map`` payloads) is pickled into pool
workers when ``n_workers > 1``.  Lambdas, nested functions, locks and
open file handles pickle either not at all or wrongly — and the
failure only appears in process mode, long after the serial tests went
green.  Job callables must be module-level functions and payloads plain
data (see ``run_flow_job`` / ``run_instrumented_flow_job``).

The rule inspects arguments (including inside list/tuple/dict literals
and nested constructor calls like ``FlowJob(...)``) at call sites whose
method name matches the executor surface: ``run_jobs``, ``run_one``,
``map``, ``submit``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.analysis.astutil import import_aliases, resolve_call_target
from repro.analysis.findings import Severity
from repro.analysis.registry import ModuleInfo, Rule, register_rule

_BOUNDARY_METHODS = {"run_jobs", "run_one", "map", "submit"}
_UNPICKLABLE_CALLS = {
    "threading.Lock": "a threading.Lock",
    "threading.RLock": "a threading.RLock",
    "threading.Condition": "a threading.Condition",
    "threading.Event": "a threading.Event",
    "threading.Semaphore": "a threading.Semaphore",
}


def _payload_exprs(call: ast.Call) -> Iterator[ast.AST]:
    """Argument expressions, descending into containers/constructors."""
    stack = list(call.args) + [kw.value for kw in call.keywords]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Dict):
            stack.extend(v for v in node.values if v is not None)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            stack.append(node.elt)
        elif isinstance(node, ast.Call):
            stack.extend(node.args)
            stack.extend(kw.value for kw in node.keywords)


@register_rule
class PickleSafetyRule(Rule):
    rule_id = "R005"
    name = "unpicklable-across-pool"
    severity = Severity.ERROR
    description = (
        "lambdas, nested functions, locks and open files cannot cross "
        "the FlowExecutor process boundary; pass module-level "
        "functions and plain data"
    )

    def check_module(self, module: ModuleInfo):
        aliases = import_aliases(module.tree)
        yield from self._scan_scope(module.tree, module, aliases,
                                    nested_defs=frozenset())

    def _scan_scope(self, scope: ast.AST, module: ModuleInfo, aliases,
                    nested_defs: Set[str]):
        """Walk one function scope; recurse with its nested def names."""
        for node in self._scope_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = {
                    child.name for child in ast.walk(node)
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))
                    and child is not node
                }
                inner |= {
                    target.id
                    for stmt in ast.walk(node)
                    if isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Lambda)
                    for target in stmt.targets
                    if isinstance(target, ast.Name)
                }
                yield from self._scan_scope(node, module, aliases, inner)
                continue
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _BOUNDARY_METHODS):
                continue
            method = node.func.attr
            for expr in _payload_exprs(node):
                problem = self._unpicklable(expr, aliases, nested_defs)
                if problem:
                    yield self.finding(
                        module, expr.lineno,
                        f"{problem} passed across the process boundary "
                        f"(.{method}); use a module-level function / "
                        f"plain data",
                        col=expr.col_offset,
                    )

    @staticmethod
    def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        """All nodes of a scope without descending into nested defs."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _unpicklable(expr: ast.AST, aliases, nested_defs: Set[str]) -> str:
        if isinstance(expr, ast.Lambda):
            return "lambda"
        if isinstance(expr, ast.Name) and expr.id in nested_defs:
            return f"locally-defined callable '{expr.id}'"
        if isinstance(expr, ast.Call):
            target = resolve_call_target(expr, aliases)
            if target in _UNPICKLABLE_CALLS:
                return _UNPICKLABLE_CALLS[target]
            if isinstance(expr.func, ast.Name) and expr.func.id == "open":
                return "an open file handle"
        return ""
