"""R007: bare and swallowed exception handlers.

In the executor/collector paths an exception is a *result* — it lands
in the job's slot (:class:`FlowExecutionError`), bumps a counter
(``MetricsCollector.dropped``), or fails the batch visibly.  A bare
``except:`` (which also eats ``KeyboardInterrupt``/``SystemExit``) or
an ``except Exception: pass`` silently converts a broken campaign into
wrong statistics.  Handlers must either re-raise, return/record an
error value, or account for the drop.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Severity
from repro.analysis.registry import ModuleInfo, Rule, register_rule

_BROAD = {"Exception", "BaseException"}


def _is_swallowing_body(body) -> bool:
    """True when the handler does nothing observable."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        if isinstance(stmt, ast.Continue):
            continue
        return False
    return True


@register_rule
class SwallowedExceptionRule(Rule):
    rule_id = "R007"
    name = "swallowed-exception"
    severity = Severity.ERROR
    description = (
        "bare except: or except Exception: pass hides failures from "
        "the campaign trace; record, count, or re-raise"
    )

    def check_module(self, module: ModuleInfo):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node.lineno,
                    "bare 'except:' also catches KeyboardInterrupt/"
                    "SystemExit; catch Exception (and handle it) instead",
                    col=node.col_offset,
                )
                continue
            broad = (isinstance(node.type, ast.Name)
                     and node.type.id in _BROAD)
            if broad and _is_swallowing_body(node.body):
                yield self.finding(
                    module, node.lineno,
                    f"'except {node.type.id}' swallows the failure; "
                    f"record it (counter, error slot, log) or re-raise",
                    col=node.col_offset,
                    severity=Severity.WARNING,
                )
