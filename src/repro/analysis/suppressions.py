"""Inline suppressions: ``# repro: allow[R001] -- justification``.

A suppression silences matching findings on its own line or on the line
directly below (so it can sit above a long statement).  When the line it
anchors to is the *first* line of a multi-line statement, the
suppression covers the statement's full line span — a finding reported
on the third physical line of one long call is still silenced by the
allow-comment trailing the call's opening line.  The justification
after ``--`` is **required**: an allow-comment without one does not
suppress anything and is itself reported (S001).  A suppression that
silences no finding is reported as unused (S002) so stale allows rot
out of the tree instead of hiding future regressions.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import (
    SUPPRESSION_NO_JUSTIFICATION,
    UNUSED_SUPPRESSION,
    Finding,
    Severity,
)

_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<why>.*\S))?\s*$"
)


@dataclass
class Suppression:
    """One parsed allow-comment."""

    line: int                    # 1-based line the comment sits on
    rule_ids: Tuple[str, ...]
    justification: str           # "" when missing
    #: last line covered (== anchor line for single-line statements;
    #: the statement's end line when the anchor opens a multi-line one)
    end_line: int = 0
    used: bool = field(default=False)

    def __post_init__(self):
        if not self.end_line:
            self.end_line = self.line + 1

    def covers(self, rule_id: str, line: int) -> bool:
        return (rule_id in self.rule_ids
                and self.line <= line <= max(self.end_line, self.line + 1))


def _statement_spans(source: str, tree: Optional[ast.AST]) -> Dict[int, int]:
    """First physical line of each statement -> last physical line.

    When several statements open on one line (``if x: y = 1``) the
    widest span wins.  An unparsable source yields no spans — the
    suppression then falls back to its two-line window.
    """
    if tree is None:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return {}
    spans: Dict[int, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt) and node.end_lineno is not None:
            spans[node.lineno] = max(spans.get(node.lineno, 0),
                                     node.end_lineno)
    return spans


def find_suppressions(source: str,
                      tree: Optional[ast.AST] = None) -> List[Suppression]:
    """Scan a module's *comment tokens* for allow-comments, in line order.

    Tokenizing (rather than grepping lines) keeps allow-examples inside
    docstrings and string literals from being treated as suppressions.
    Pass the module's parsed ``tree`` to avoid a redundant parse; it is
    used to widen each suppression to the full span of the multi-line
    statement it anchors to (its own line, or the line below).
    """
    out = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # unparsable tail
        tokens = []
    spans = _statement_spans(source, tree) if tokens else {}
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        rule_ids = tuple(
            part.strip() for part in match.group("rules").split(",")
            if part.strip()
        )
        line = token.start[0]
        # the statement the comment anchors to: the one opening on the
        # comment's own line (trailing comment) or on the line below
        # (comment sitting above the statement)
        end_line = max(spans.get(line, line), spans.get(line + 1, line + 1))
        out.append(Suppression(
            line=line,
            rule_ids=rule_ids,
            justification=(match.group("why") or "").strip(),
            end_line=end_line,
        ))
    return out


def apply_suppressions(
    findings: List[Finding], suppressions: List[Suppression], path: str
) -> Tuple[List[Finding], List[Finding]]:
    """Split ``findings`` into (active, suppressed) for one file.

    Also appends framework findings for malformed (S001) and unused
    (S002) suppressions to the active list.
    """
    active: List[Finding] = []
    silenced: List[Finding] = []
    for finding in findings:
        matched = None
        for sup in suppressions:
            if sup.covers(finding.rule_id, finding.line):
                matched = sup
                break
        if matched is None:
            active.append(finding)
        elif not matched.justification:
            matched.used = True  # it matched; it is malformed, not stale
            active.append(finding)
        else:
            matched.used = True
            silenced.append(finding.suppress(matched.justification))

    for sup in suppressions:
        if not sup.justification:
            active.append(Finding(
                rule_id=SUPPRESSION_NO_JUSTIFICATION,
                severity=Severity.ERROR,
                path=path,
                line=sup.line,
                message=("suppression requires a justification: "
                         "# repro: allow[...] -- <why this is safe>"),
            ))
        elif not sup.used:
            active.append(Finding(
                rule_id=UNUSED_SUPPRESSION,
                severity=Severity.WARNING,
                path=path,
                line=sup.line,
                message=(f"unused suppression for "
                         f"{', '.join(sup.rule_ids) or '<no rules>'}: "
                         "no matching finding on this or the next line"),
            ))
    return active, silenced
