"""Render a :class:`~repro.analysis.findings.LintReport` for humans or CI."""

from __future__ import annotations

import json
from typing import Dict

from repro.analysis.findings import LintReport, Severity


def format_human(report: LintReport, verbose: bool = False) -> str:
    """One finding per line plus a summary tail (empty tree included)."""
    lines = [finding.format() for finding in report.findings]
    if verbose:
        lines.extend(finding.format() for finding in report.suppressed)
    n_err = report.count_at_least(Severity.ERROR)
    n_warn = sum(1 for f in report.findings
                 if f.severity == Severity.WARNING)
    n_info = sum(1 for f in report.findings if f.severity == Severity.INFO)
    summary = (f"{len(report.findings)} finding(s) "
               f"({n_err} error, {n_warn} warning, {n_info} info), "
               f"{len(report.suppressed)} suppressed, "
               f"{report.n_files} file(s) checked")
    if lines:
        lines.append("")
    lines.append(summary)
    stats = report.project_stats
    if stats is not None:
        tail = (f"project graph: {stats['functions']} functions, "
                f"{stats['import_edges']} import edges, "
                f"{stats['call_edges']} call edges, "
                f"{stats['lock_tokens']} locks")
        cache = stats.get("cache")
        if cache is not None:
            tail += (f"; cache {cache['hits']} hit(s) / "
                     f"{cache['misses']} miss(es)")
        lines.append(tail)
    return "\n".join(lines)


def to_dict(report: LintReport) -> Dict[str, object]:
    out: Dict[str, object] = {
        "version": 1,
        "files_checked": report.n_files,
        "rules": list(report.rule_ids),
        "findings": [f.to_dict() for f in report.findings],
        "suppressed": [f.to_dict() for f in report.suppressed],
        "counts": {
            "error": report.count_at_least(Severity.ERROR),
            "warning": sum(1 for f in report.findings
                           if f.severity == Severity.WARNING),
            "info": sum(1 for f in report.findings
                        if f.severity == Severity.INFO),
        },
    }
    if report.project_stats is not None:
        out["project"] = report.project_stats
    return out


def format_json(report: LintReport) -> str:
    return json.dumps(to_dict(report), indent=2, sort_keys=True)
