"""Finding and severity types for the determinism lint framework.

A :class:`Finding` is one (file, line, rule, message) observation.  The
whole framework traffics in these — rules produce them, the suppression
layer marks them, the reporters render them — so they sort and encode
deterministically (our own linter must be bit-reproducible, like
everything else in the repo).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional


class Severity(enum.IntEnum):
    """Ordered severity levels; comparisons use the numeric value."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.strip().upper()]
        except KeyError:
            valid = ", ".join(level.name.lower() for level in cls)
            raise ValueError(f"unknown severity {name!r} (expected {valid})")

    def __str__(self) -> str:
        return self.name.lower()

    def __format__(self, spec: str) -> str:  # f-strings use the name too
        return format(self.name.lower(), spec)


@dataclass(frozen=True)
class Finding:
    """One lint observation, anchored to a file position."""

    rule_id: str
    severity: Severity
    path: str  # repo-relative, '/'-separated
    line: int
    message: str
    col: int = 0
    suppressed: bool = False
    suppression_note: Optional[str] = None

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def suppress(self, note: str) -> "Finding":
        return replace(self, suppressed=True, suppression_note=note)

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.severity}: {self.message}{tag}")

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.suppressed:
            out["suppressed"] = True
            out["suppression_note"] = self.suppression_note
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_dict` (the incremental cache round-trip)."""
        return cls(
            rule_id=str(data["rule"]),
            severity=Severity.parse(str(data["severity"])),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data.get("col", 0)),
            message=str(data["message"]),
            suppressed=bool(data.get("suppressed", False)),
            suppression_note=data.get("suppression_note"),
        )


#: pseudo rule ids emitted by the framework itself (not registry rules)
PARSE_ERROR_RULE = "E000"          # file failed to parse
SUPPRESSION_NO_JUSTIFICATION = "S001"  # allow[...] without `-- reason`
UNUSED_SUPPRESSION = "S002"        # allow[...] that matched nothing


@dataclass
class LintReport:
    """Everything one analyzer run produced."""

    findings: list = field(default_factory=list)       # active findings
    suppressed: list = field(default_factory=list)     # silenced findings
    n_files: int = 0
    rule_ids: tuple = ()
    #: graph/cache statistics from ``--project`` mode (None otherwise)
    project_stats: Optional[dict] = None

    def count_at_least(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity >= severity)

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max(f.severity for f in self.findings)
