"""Small AST helpers shared by the builtin rule pack."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; None for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully-qualified import path, for the whole module.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy import random as nr`` -> ``{"nr": "numpy.random"}``;
    ``from random import shuffle`` -> ``{"shuffle": "random.shuffle"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def resolve_call_target(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """The fully-qualified name a call resolves to, via the import map.

    ``np.random.seed(0)`` with ``{"np": "numpy"}`` -> ``numpy.random.seed``.
    Calls rooted at non-imported names (``self.rng.random()``) resolve to
    None — the linter never guesses about injected objects.
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    if root not in aliases:
        return None
    resolved = aliases[root]
    return f"{resolved}.{rest}" if rest else resolved


def walk_with_parents(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """Yield ``(node, ancestors)`` pairs, outermost ancestor first."""
    stack: list = [(tree, ())]
    while stack:
        node, parents = stack.pop()
        yield node, parents
        child_parents = parents + (node,)
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_parents))


def string_literals(tree: ast.AST) -> Iterator[Tuple[str, int]]:
    """Every string constant in the tree, with its line number."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            yield node.value, node.lineno
