"""Rule API and registry for the determinism lint framework.

A rule is a class with a unique ``R\\d{3}`` id, a default severity and
two hooks: :meth:`Rule.check_module` (called once per parsed file) and
:meth:`Rule.check_project` (called once with every file in view — for
cross-file invariants like vocabulary drift or undocumented CLI flags).
Registering is one decorator::

    @register_rule
    class MyRule(Rule):
        rule_id = "R042"
        name = "my-invariant"
        severity = Severity.WARNING
        description = "what the rule enforces and why"

        def check_module(self, module):
            yield self.finding(module, node.lineno, "message")

See ``docs/static-analysis.md`` for the full recipe.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Type

from repro.analysis.findings import Finding, Severity

_RULE_ID_RE = re.compile(r"^R\d{3}$")


@dataclass
class ModuleInfo:
    """One parsed source file, as handed to rules."""

    path: str          # repo-relative, '/'-separated
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self):
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]


@dataclass
class ProjectInfo:
    """The whole linted file set plus repo context for cross-file rules."""

    root: str                      # absolute repo root (docs/ + README live here)
    modules: List[ModuleInfo] = field(default_factory=list)

    def module_named(self, filename: str) -> Optional[ModuleInfo]:
        for module in self.modules:
            if module.name == filename:
                return module
        return None


class Rule:
    """Base class: one enforced invariant, one id, one severity."""

    rule_id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()

    def check_project(self, project: ProjectInfo) -> Iterable[Finding]:
        return ()

    def check_context(self, context) -> Iterable[Finding]:
        """Whole-program hook, ``--project`` mode only.

        ``context`` is a :class:`repro.analysis.project.ProjectContext`
        built from per-file summaries (import graph, symbol table, call
        graph, lock-context fixpoints).  Rules implementing this hook
        see the whole program even on warm incremental runs, where
        unchanged files are never re-parsed.  In project mode this hook
        *replaces* :meth:`check_project` (which needs full ASTs).
        """
        return ()

    def finding(self, module: ModuleInfo, line: int, message: str,
                col: int = 0, severity: Optional[Severity] = None) -> Finding:
        return self.finding_at(module.path, line, message, col, severity)

    def finding_at(self, path: str, line: int, message: str, col: int = 0,
                   severity: Optional[Severity] = None) -> Finding:
        """Like :meth:`finding`, for hooks that see summaries, not ASTs."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity if severity is None else severity,
            path=path,
            line=line,
            col=col,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a :class:`Rule` subclass to the registry."""
    if not _RULE_ID_RE.match(cls.rule_id or ""):
        raise ValueError(f"rule id {cls.rule_id!r} does not match R###")
    if not cls.name or not cls.description:
        raise ValueError(f"rule {cls.rule_id} needs a name and description")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"rule id {cls.rule_id} already registered by {existing.__name__}"
        )
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, instantiated, in id order."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _load_builtin_rules()
    if rule_id not in _REGISTRY:
        raise KeyError(f"no rule registered under {rule_id!r}")
    return _REGISTRY[rule_id]()


def _load_builtin_rules() -> None:
    """Import the builtin rule pack (idempotent; registers on import)."""
    import repro.analysis.rules  # noqa: F401  (import side effect)
