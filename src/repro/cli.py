"""Command-line interface: ``repro <subcommand>``.

Subcommands wrap the library's main entry points so a downstream user
can drive the substrate and the paper's experiments without writing
Python:

- ``repro flow`` — run the SP&R flow on a named design profile;
- ``repro noise`` — the Fig 3 noise sweep;
- ``repro doomed`` — train and evaluate the doomed-run strategy card;
- ``repro mab`` — the Fig 7 bandit tuning loop;
- ``repro explore`` — GWTW trajectory exploration (Fig 5/6);
- ``repro dse`` — the declarative DSE engine: any registered strategy
  under a budget, with optional online doomed-run killing and a
  surrogate proposer (see ``docs/dse.md``);
- ``repro cost`` — ITRS design-cost projections;
- ``repro metrics summary|query`` — inspect a collected METRICS store
  (JSONL file or sqlite warehouse, format sniffed);
- ``repro metrics ingest|migrate|compact`` — maintain a sqlite metrics
  warehouse: append JSONL campaigns under a campaign id, convert
  existing JSONL files with zero-loss verification, and apply a
  keep-last-N-campaigns retention policy;
- ``repro lint`` — determinism & parallel-safety static analysis
  (``--strict`` in CI; see ``docs/static-analysis.md``).

``mab`` and ``explore`` accept ``--workers N`` (parallel flow
execution), ``--cache-dir`` (persistent result cache), and
``--metrics-out FILE`` (cross-process METRICS collection: every flow
run's step metrics plus per-job executor events land in a JSONL file
that ``repro metrics summary`` and the data miner consume); all print
the executor's stats line (jobs, cache hits, retries, wall time).
``--metrics-db DB`` collects into a sqlite warehouse instead, and
``--campaign ID`` tags every record so multiple sessions accumulate
distinguishable history in one store (see ``docs/metrics.md``).
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional


def _cmd_flow(args) -> int:
    from repro.bench.generators import design_profile
    from repro.eda.flow import FlowOptions, SPRFlow
    from repro.eda.io import write_def, write_verilog

    spec = design_profile(args.design)
    options = FlowOptions(
        target_clock_ghz=args.target,
        utilization=args.utilization,
        synth_effort=args.effort,
    )
    result = SPRFlow().run(spec, options, seed=args.seed)
    print(f"design={spec.name} target={args.target}GHz seed={args.seed}")
    print(f"area={result.area:.1f}um2 power={result.power:.1f}uW "
          f"wns={result.wns:.1f}ps drvs={result.final_drvs} "
          f"achieved={result.achieved_ghz:.3f}GHz "
          f"{'SUCCESS' if result.success else 'FAILED'}")
    if args.verbose:
        print(result.log_text())
    if args.write_verilog or args.write_def:
        # re-materialize the implementation for dumping
        from repro.eda.floorplan import make_floorplan
        from repro.eda.library import make_default_library
        from repro.eda.placement import QuadraticPlacer
        from repro.eda.synthesis import synthesize

        netlist = synthesize(spec, make_default_library(), options.synth_effort, args.seed)
        if args.write_verilog:
            with open(args.write_verilog, "w") as fh:
                fh.write(write_verilog(netlist))
            print(f"wrote {args.write_verilog}")
        if args.write_def:
            floorplan = make_floorplan(netlist, options.utilization)
            placement = QuadraticPlacer().place(netlist, floorplan, args.seed)
            with open(args.write_def, "w") as fh:
                fh.write(write_def(placement))
            print(f"wrote {args.write_def}")
    return 0 if result.success else 1


def _cmd_noise(args) -> int:
    from repro.bench.generators import design_profile
    from repro.core.noise import NoiseCharacterization, noise_sweep

    spec = design_profile(args.design)
    targets = [float(t) for t in args.targets.split(",")]
    sweep = noise_sweep(spec, targets, n_seeds=args.seeds)
    noise = NoiseCharacterization(sweep)
    print(f"{'target':>8} {'area_mean':>10} {'area_std':>9} {'success':>8}")
    for target in sweep.targets:
        print(f"{target:>8.2f} {sweep.areas(target).mean():>10.1f} "
              f"{sweep.areas(target).std(ddof=1):>9.2f} "
              f"{sweep.success_rate(target):>8.2f}")
    print(f"noise growth ratio: {noise.noise_growth_ratio():.2f}", end="")
    if args.seeds >= 8:  # the normality test needs a real sample
        print(f"; gaussian fraction: {noise.gaussian_fraction():.2f}")
    else:
        print(" (>=8 seeds needed for the Gaussianity test)")
    return 0


def _cmd_doomed(args) -> int:
    from repro.bench.corpus import RouterLogCorpus
    from repro.core.doomed import MDPCardLearner, evaluate_policy

    train = RouterLogCorpus.artificial(n=args.train, seed=args.seed)
    test = RouterLogCorpus.cpu_floorplans(n=args.test, seed=args.seed + 1)
    card = MDPCardLearner().fit(train)
    print(f"train: {len(train)} logs (success rate {train.success_rate:.2f}); "
          f"test: {len(test)} logs (success rate {test.success_rate:.2f})")
    for k in (1, 2, 3):
        print("  " + evaluate_policy(card, test, k).summary_row())
    return 0


def _make_executor(args):
    from repro.core.parallel import FlowExecutor

    collector = None
    metrics_out = getattr(args, "metrics_out", None)
    metrics_db = getattr(args, "metrics_db", None)
    if metrics_out and metrics_db:
        print("pass --metrics-out (JSONL) or --metrics-db (warehouse), "
              "not both", file=sys.stderr)
        raise SystemExit(2)
    if metrics_out or metrics_db:
        from repro.metrics import MetricsCollector, MetricsServer

        campaign = getattr(args, "campaign", None)
        if metrics_db:
            from repro.metrics import SqliteStore

            server = MetricsServer(store=SqliteStore(metrics_db),
                                   campaign=campaign)
        else:
            server = MetricsServer(persist_path=metrics_out,
                                   campaign=campaign)
        collector = MetricsCollector(server, cross_process=args.workers > 1)
    return FlowExecutor(n_workers=args.workers, cache=True,
                        cache_dir=args.cache_dir, collector=collector,
                        stage_cache=getattr(args, "stage_cache", False))


def _finish_metrics(executor, args) -> None:
    """Drain the executor's collector and report what was persisted."""
    if executor.collector is None:
        return
    executor.collector.stop()
    server = executor.collector.server
    dest = getattr(args, "metrics_db", None) or args.metrics_out
    print(f"metrics: {len(server)} records over {len(server.runs())} runs "
          f"-> {dest}")


def _close_metrics(executor) -> None:
    """Release collection resources — runs on error paths too, so the
    drain thread always stops and persistence handles never leak."""
    if executor.collector is None:
        return
    executor.collector.stop()  # idempotent
    executor.collector.server.close()


def _cmd_mab(args) -> int:
    from repro.bench.generators import design_profile
    from repro.core.bandit import (
        BatchBanditScheduler,
        FlowArmEnvironment,
        ThompsonSampling,
    )

    spec = design_profile(args.design)
    frequencies = [float(f) for f in args.arms.split(",")]
    env = FlowArmEnvironment(spec, frequencies, seed=args.seed,
                             max_area=args.max_area, max_power=args.max_power)
    policy = ThompsonSampling(env.n_arms, seed=args.seed + 1)
    with _make_executor(args) as executor:
        try:
            result = BatchBanditScheduler(args.iterations, args.concurrent,
                                          executor=executor).run(policy, env)
            print(f"{result.n_successes}/{len(result.records)} successful runs")
            best = int(policy.posterior_mean().argmax())
            print(f"recommended target: {frequencies[best]:.2f} GHz")
            print(f"executor: {executor.stats.summary()}")
            _finish_metrics(executor, args)
        finally:
            _close_metrics(executor)
    return 0


def _cmd_explore(args) -> int:
    from repro.bench.generators import design_profile
    from repro.core.orchestration import TrajectoryExplorer

    spec = design_profile(args.design)
    with _make_executor(args) as executor:
        try:
            explorer = TrajectoryExplorer(
                n_concurrent=args.concurrent, n_rounds=args.rounds,
                executor=executor,
            )
            result = explorer.explore(spec, seed=args.seed)
            print(f"{result.n_runs} runs over {args.rounds} rounds "
                  f"({result.n_pruned} pruned, {result.n_failed} failed), "
                  f"best score {result.best_score:.4f}")
            if result.best_result is not None:
                best = result.best_result
                print(f"best: target={best.options.target_clock_ghz:.2f}GHz "
                      f"util={best.options.utilization:.2f} seed={best.seed} "
                      f"area={best.area:.1f}um2 wns={best.wns:.1f}ps "
                      f"{'SUCCESS' if best.success else 'FAILED'}")
            print(f"executor: {executor.stats.summary()}")
            _finish_metrics(executor, args)
        finally:
            _close_metrics(executor)
    return 0 if result.best_result is not None else 1


def _cmd_dse(args) -> int:
    from repro.bench.generators import design_profile
    from repro.dse import Budget, DSEEngine, SurrogateProposer, train_kill_policy

    budget = Budget(max_runs=args.budget_runs,
                    max_runtime_proxy=args.budget_proxy)
    if args.strategy in ("gwtw", "independent", "multistart", "random"):
        # landscape strategies search netlist bisection, not flow options
        from repro.core.search.landscape import BisectionProblem
        from repro.eda.library import make_default_library
        from repro.eda.synthesis import synthesize

        spec = design_profile(args.design)
        netlist = synthesize(spec, make_default_library(), 0.5, args.seed)
        problem = BisectionProblem.from_netlist(netlist)
        engine = DSEEngine(strategy=args.strategy, budget=budget)
        result = engine.run(problem, seed=args.seed)
        print(f"strategy={args.strategy} design={spec.name} "
              f"({problem.n_nodes} nodes): best cut cost "
              f"{result.best_score:.1f} after {result.n_runs} searches")
        return 0

    kill_policy = None
    if args.kill != "none":
        kill_policy = train_kill_policy(args.kill, seed=args.seed,
                                        consecutive=args.kill_consecutive)
    surrogate = None
    if args.surrogate != "none":
        surrogate = SurrogateProposer(model=args.surrogate,
                                      random_state=args.seed)
    params = {"n_concurrent": args.concurrent}
    if args.strategy == "explorer":
        params["n_rounds"] = args.rounds
    elif args.strategy == "bandit":
        params["n_iterations"] = args.rounds
    elif args.strategy == "sweep":
        params["limit"] = args.limit
    spec = design_profile(args.design)
    with _make_executor(args) as executor:
        try:
            engine = DSEEngine(
                strategy=args.strategy, objective=args.objective, budget=budget,
                executor=executor, kill_policy=kill_policy, surrogate=surrogate,
                params=params,
            )
            result = engine.run(spec, seed=args.seed)
            best = ("n/a" if not math.isfinite(result.best_score)
                    else f"{result.best_score:.4f}")
            print(f"strategy={args.strategy} objective={args.objective}: "
                  f"{result.n_runs} runs ({result.n_failed} failed, "
                  f"{result.n_killed} killed), best {best}")
            if result.n_killed:
                print(f"kill policy ({args.kill}) saved "
                      f"{result.kill_proxy_saved:.0f} proxy units")
            if result.surrogate_fit is not None:
                print(f"surrogate ({args.surrogate}) training fit: "
                      f"{result.surrogate_fit:.3f}")
            if result.pareto:
                print(f"pareto front: {len(result.pareto)} non-dominated runs")
            if result.best_result is not None:
                top = result.best_result
                print(f"best: target={top.options.target_clock_ghz:.2f}GHz "
                      f"util={top.options.utilization:.2f} seed={top.seed} "
                      f"area={top.area:.1f}um2 wns={top.wns:.1f}ps "
                      f"{'SUCCESS' if top.success else 'FAILED'}")
            print(f"executor: {executor.stats.summary()}")
            _finish_metrics(executor, args)
        finally:
            _close_metrics(executor)
    return 0 if result.n_runs > 0 and result.n_failed < result.n_runs else 1


def _cmd_metrics_summary(args) -> int:
    from repro.metrics import DataMiner, MetricsServer, open_store

    campaign = getattr(args, "campaign", None)
    with MetricsServer(store=open_store(args.path)) as server:
        if len(server) == 0:
            print(f"no records in {args.path}")
            return 1
        records = server.query(design=args.design, campaign=campaign)
        run_ids = server.runs(args.design, campaign=campaign)
        designs = sorted({r.design for r in records})
        print(f"{len(records)} records over {len(run_ids)} runs, "
              f"designs: {', '.join(designs)}")
        campaigns = server.campaigns()
        if campaigns:
            print(f"campaigns: {', '.join(campaigns)}")
        if server.skipped_lines:
            print(f"({server.skipped_lines} corrupt line(s) skipped at load)")
        if server.null_values:
            print(f"({server.null_values} null value(s) ignored at load)")
        by_metric = {}
        dropped = 0
        for record in records:
            if not math.isfinite(record.value):
                dropped += 1  # sentinel, not a measurement: keep stats finite
                continue
            by_metric.setdefault(record.metric, []).append(record.value)
        if dropped:
            print(f"({dropped} non-finite value(s) excluded from statistics)")
        print(f"{'metric':<24} {'count':>6} {'mean':>12} {'min':>12} {'max':>12}")
        for metric in sorted(by_metric):
            values = by_metric[metric]
            print(f"{metric:<24} {len(values):>6} {sum(values)/len(values):>12.4f} "
                  f"{min(values):>12.4f} {max(values):>12.4f}")
        sta_full = sum(by_metric.get("sta.full", []))
        sta_incr = sum(by_metric.get("sta.incremental.updates", []))
        if sta_full or sta_incr:
            saved = sum(by_metric.get("sta.incremental.proxy_saved", []))
            nodes = sum(by_metric.get("sta.incremental.nodes", []))
            print(f"timing: {sta_incr:.0f} incremental updates vs {sta_full:.0f} "
                  f"full propagations ({nodes:.0f} nodes re-propagated, "
                  f"{saved:.0f} work units saved)")
        kills = sum(by_metric.get("exec.killed.run", []))
        if kills:
            kill_saved = sum(by_metric.get("exec.killed.proxy_saved", []))
            print(f"kills: {kills:.0f} runs terminated early by the kill policy "
                  f"({kill_saved:.0f} work units saved)")
        if args.recommend:
            try:
                rec = DataMiner(server, seed=0).recommend_options(
                    objective=args.recommend, design=args.design,
                    campaign=campaign,
                )
            except (ValueError, KeyError) as exc:
                print(f"cannot mine a recommendation: {exc}")
                return 1
            settings = " ".join(f"{k}={v:.3f}" for k, v in rec.options.items())
            print(f"recommendation ({args.recommend}, r2={rec.model_r2:.2f}, "
                  f"predicted {rec.predicted_objective:.2f}): {settings}")
    return 0


def _emit_warehouse_op(store, values) -> None:
    """Record a maintenance operation's bookkeeping in the warehouse
    itself, so ingest/migration/retention history stays queryable."""
    from repro.metrics import Transmitter

    run_id = f"warehouse-op-{store.ingest_count}"
    with Transmitter(store, "warehouse", run_id, tool="warehouse",
                     use_xml=False) as tx:
        for name, value in values:
            tx.send(name, float(value))


def _cmd_metrics_ingest(args) -> int:
    from repro.metrics import SqliteStore

    with SqliteStore(args.db) as store:
        report = store.receive_jsonl(args.path, campaign=args.campaign)
        _emit_warehouse_op(store, [
            ("warehouse.ingest.records", report.records),
            ("warehouse.ingest.skipped", report.skipped_lines),
        ])
        tag = f" under campaign {args.campaign!r}" if args.campaign else ""
        print(f"ingested {report.records} records from {args.path} "
              f"into {args.db}{tag} ({report.batches} transactions, "
              f"{report.null_values} null values, "
              f"{report.skipped_lines} corrupt lines skipped)")
    return 0


def _cmd_metrics_migrate(args) -> int:
    from repro.metrics import JsonlStore, SqliteStore, migrate_jsonl

    with SqliteStore(args.db) as store:
        report = migrate_jsonl(args.path, store)
        # zero-loss verification: reload the source the hardened JSONL
        # way and compare record count plus every per-run vector
        with JsonlStore(args.path) as source:
            failures = []
            if len(source) != report.records:
                failures.append(
                    f"record count mismatch: source has {len(source)}, "
                    f"migrated {report.records}")
            for run_id in source.runs():
                if source.run_vector(run_id) != store.run_vector(run_id):
                    failures.append(f"run vector mismatch for {run_id}")
        _emit_warehouse_op(store, [
            ("warehouse.migrate.records", report.records),
            ("warehouse.migrate.skipped", report.skipped_lines),
        ])
        print(f"migrated {report.records} records from {args.path} "
              f"into {args.db} ({report.null_values} null values, "
              f"{report.skipped_lines} corrupt lines skipped)")
        if failures:
            for failure in failures:
                print(f"VERIFY FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"verified: {len(source.runs())} run vectors identical "
              f"between source and warehouse")
    return 0


def _cmd_metrics_query(args) -> int:
    from repro.metrics import MetricsServer, open_store

    with MetricsServer(store=open_store(args.path)) as server:
        if args.metric or args.run:
            records = server.query(design=args.design, metric=args.metric,
                                   run_id=args.run, campaign=args.campaign,
                                   since=args.since)
            for record in records[:args.limit]:
                campaign = (record.attributes or {}).get("campaign", "-")
                print(f"{record.design} {record.run_id} {record.tool} "
                      f"{record.metric}={record.value:g} "
                      f"seq={record.sequence} campaign={campaign}")
            if len(records) > args.limit:
                print(f"... {len(records) - args.limit} more "
                      f"(raise --limit to see them)")
            return 0 if records else 1
        run_ids = server.runs(args.design, campaign=args.campaign,
                              since=args.since)
        for run_id in run_ids[:args.limit]:
            vector = server.run_vector(run_id)
            design = next(iter(
                r.design for r in server.query(run_id=run_id)), "?")
            print(f"{run_id} design={design} metrics={len(vector)}")
        if len(run_ids) > args.limit:
            print(f"... {len(run_ids) - args.limit} more "
                  f"(raise --limit to see them)")
        return 0 if run_ids else 1


def _cmd_metrics_compact(args) -> int:
    from repro.metrics import SqliteStore

    with SqliteStore(args.db) as store:
        before = store.campaigns()
        removed = store.compact(args.keep_last, vacuum=not args.no_vacuum)
        kept = store.campaigns()
        _emit_warehouse_op(store, [
            ("warehouse.compact.removed", removed),
            ("warehouse.compact.campaigns_kept", len(kept)),
        ])
        print(f"compacted {args.db}: removed {removed} records from "
              f"{len(before) - len(kept)} campaign(s), kept "
              f"{', '.join(kept) if kept else 'none'}")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import (
        LintConfig,
        Severity,
        all_rules,
        format_human,
        format_json,
        lint_paths,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name:<28} {str(rule.severity):<8} "
                  f"{rule.description}")
        return 0
    config = LintConfig(
        select=args.select.split(",") if args.select else None,
        ignore=args.ignore.split(",") if args.ignore else (),
        fail_on=Severity.parse(args.fail_on),
        strict=args.strict,
        project=args.project,
        use_cache=not args.no_cache,
    )
    try:
        report = lint_paths(args.paths, config)
    except (FileNotFoundError, ValueError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_json(report))
    else:
        print(format_human(report, verbose=args.verbose))
    return 1 if config.fails(report) else 0


def _cmd_cache_stats(args) -> int:
    import json
    import os

    from repro.core.parallel import CACHE_SCHEMA

    if not os.path.isdir(args.dir):
        print(f"cache stats: no such directory: {args.dir}", file=sys.stderr)
        return 1
    entries = 0
    corrupt = 0
    by_schema = {}
    for name in sorted(os.listdir(args.dir)):
        if not name.endswith(".json") or name == "cache-stats.json":
            continue
        try:
            with open(os.path.join(args.dir, name)) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            corrupt += 1
            continue
        entries += 1
        version = data.get("schema", 1)  # pre-versioning entries are v1
        by_schema[version] = by_schema.get(version, 0) + 1
    print(f"{args.dir}: {entries} disk entries (current schema {CACHE_SCHEMA})")
    for version in sorted(by_schema):
        usable = "usable" if version == CACHE_SCHEMA else "stale -> treated as misses"
        print(f"  schema {version}: {by_schema[version]} entries ({usable})")
    if corrupt:
        print(f"  {corrupt} unreadable entries (treated as misses)")

    stats_path = os.path.join(args.dir, "cache-stats.json")
    try:
        with open(stats_path) as fh:
            stats = json.load(fh)
    except (OSError, ValueError):
        print("no cache-stats.json (no campaign has closed an executor "
              "over this directory yet)")
        return 0
    print(f"accumulated campaign stats ({stats_path}):")
    print(f"  jobs: {stats.get('jobs_submitted', 0)} submitted, "
          f"{stats.get('jobs_run', 0)} run, {stats.get('deduped', 0)} deduped")
    print(f"  whole-run hits: memory={stats.get('cache_hits_memory', 0)} "
          f"disk={stats.get('cache_hits_disk', 0)}")
    print(f"  stage prefix:   hits={stats.get('stage_hits', 0)} "
          f"misses={stats.get('stage_misses', 0)}")
    hits_by_stage = stats.get("stage_hits_by_stage", {}) or {}
    misses_by_stage = stats.get("stage_misses_by_stage", {}) or {}
    for stage in sorted(set(hits_by_stage) | set(misses_by_stage)):
        print(f"    {stage:<16} hits={hits_by_stage.get(stage, 0):<6} "
              f"misses={misses_by_stage.get(stage, 0)}")
    total = stats.get("runtime_proxy_total", 0.0)
    executed = stats.get("runtime_proxy_executed", 0.0)
    print(f"  work: delivered={total:.0f} executed={executed:.0f} "
          f"saved={total - executed:.0f} units")
    return 0


def _cmd_cost(args) -> int:
    from repro.core.costmodel import DesignCostModel

    model = DesignCostModel()
    cost = model.design_cost(args.year, dt_freeze_year=args.freeze)
    label = f" (DT frozen at {args.freeze})" if args.freeze else ""
    print(f"SOC-CP design cost in {args.year}{label}: ${cost / 1e6:,.1f}M")
    print(f"engineer-months: {model.engineer_months(args.year, args.freeze):,.0f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kahng DAC-2018 reproduction: simulated SP&R flow + ML-for-EDA",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    flow = sub.add_parser("flow", help="run the SP&R flow on a design profile")
    flow.add_argument("--design", default="pulpino")
    flow.add_argument("--target", type=float, default=0.7, help="GHz")
    flow.add_argument("--utilization", type=float, default=0.7)
    flow.add_argument("--effort", type=float, default=0.5)
    flow.add_argument("--seed", type=int, default=0)
    flow.add_argument("--verbose", action="store_true")
    flow.add_argument("--write-verilog", metavar="FILE")
    flow.add_argument("--write-def", metavar="FILE")
    flow.set_defaults(func=_cmd_flow)

    noise = sub.add_parser("noise", help="Fig 3 noise sweep")
    noise.add_argument("--design", default="pulpino")
    noise.add_argument("--targets", default="0.5,0.65,0.78,0.9")
    noise.add_argument("--seeds", type=int, default=10)
    noise.set_defaults(func=_cmd_noise)

    doomed = sub.add_parser("doomed", help="train/evaluate the strategy card")
    doomed.add_argument("--train", type=int, default=600)
    doomed.add_argument("--test", type=int, default=400)
    doomed.add_argument("--seed", type=int, default=0)
    doomed.set_defaults(func=_cmd_doomed)

    mab = sub.add_parser("mab", help="Fig 7 bandit flow tuning")
    mab.add_argument("--design", default="pulpino")
    mab.add_argument("--arms", default="0.5,0.6,0.7,0.8,0.9")
    mab.add_argument("--iterations", type=int, default=15)
    mab.add_argument("--concurrent", type=int, default=5)
    mab.add_argument("--max-area", type=float, default=None)
    mab.add_argument("--max-power", type=float, default=None)
    mab.add_argument("--seed", type=int, default=0)
    mab.add_argument("--workers", type=int, default=1,
                     help="parallel flow workers (1 = serial)")
    mab.add_argument("--cache-dir", default=None,
                     help="directory for the on-disk result-cache tier")
    mab.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="collect METRICS records from every run into this JSONL file")
    mab.add_argument("--metrics-db", default=None, metavar="DB",
                     help="collect METRICS records into this sqlite warehouse "
                          "(cross-campaign history; mutually exclusive with "
                          "--metrics-out)")
    mab.add_argument("--campaign", default=None,
                     help="campaign id stamped onto every collected record")
    mab.add_argument("--stage-cache", action="store_true",
                     help="enable the stage-prefix cache (resume flow jobs "
                          "from the deepest cached pipeline prefix)")
    mab.set_defaults(func=_cmd_mab)

    explore = sub.add_parser(
        "explore", help="GWTW trajectory exploration over the flow-option tree"
    )
    explore.add_argument("--design", default="pulpino")
    explore.add_argument("--rounds", type=int, default=4)
    explore.add_argument("--concurrent", type=int, default=5)
    explore.add_argument("--seed", type=int, default=0)
    explore.add_argument("--workers", type=int, default=1,
                         help="parallel flow workers (1 = serial)")
    explore.add_argument("--cache-dir", default=None,
                         help="directory for the on-disk result-cache tier")
    explore.add_argument("--metrics-out", default=None, metavar="FILE",
                         help="collect METRICS records from every run into this JSONL file")
    explore.add_argument("--metrics-db", default=None, metavar="DB",
                         help="collect METRICS records into this sqlite "
                              "warehouse (cross-campaign history; mutually "
                              "exclusive with --metrics-out)")
    explore.add_argument("--campaign", default=None,
                         help="campaign id stamped onto every collected record")
    explore.add_argument("--stage-cache", action="store_true",
                         help="enable the stage-prefix cache (resume flow jobs "
                              "from the deepest cached pipeline prefix)")
    explore.set_defaults(func=_cmd_explore)

    dse = sub.add_parser(
        "dse", help="declarative design-space exploration (any strategy, "
                    "budgets, kill policies, surrogate proposals)"
    )
    dse.add_argument("--design", default="pulpino")
    dse.add_argument("--strategy", default="explorer",
                     choices=["explorer", "bandit", "sweep", "gwtw",
                              "independent", "multistart", "random"],
                     help="registered search strategy to run")
    dse.add_argument("--objective", default="score",
                     choices=["score", "area", "power", "wns",
                              "frequency", "pareto"],
                     help="objective the campaign optimizes")
    dse.add_argument("--rounds", type=int, default=4,
                     help="search rounds (explorer) / iterations (bandit)")
    dse.add_argument("--concurrent", type=int, default=5,
                     help="runs launched per round")
    dse.add_argument("--limit", type=int, default=64,
                     help="enumeration cap for the sweep strategy")
    dse.add_argument("--budget-runs", type=int, default=None,
                     help="stop after this many launched runs")
    dse.add_argument("--budget-proxy", type=float, default=None,
                     help="stop after this much executed runtime proxy")
    dse.add_argument("--kill", default="none",
                     choices=["none", "mdp", "hmm"],
                     help="online doomed-run kill policy")
    dse.add_argument("--kill-consecutive", type=int, default=3,
                     help="consecutive STOP votes before a run is killed")
    dse.add_argument("--surrogate", default="none",
                     choices=["none", "forest", "gbm"],
                     help="surrogate model proposing one candidate per round")
    dse.add_argument("--seed", type=int, default=0)
    dse.add_argument("--workers", type=int, default=1,
                     help="parallel flow workers (1 = serial)")
    dse.add_argument("--cache-dir", default=None,
                     help="directory for the on-disk result-cache tier")
    dse.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="collect METRICS records from every run into this JSONL file")
    dse.add_argument("--metrics-db", default=None, metavar="DB",
                     help="collect METRICS records into this sqlite warehouse "
                          "(cross-campaign history; mutually exclusive with "
                          "--metrics-out)")
    dse.add_argument("--campaign", default=None,
                     help="campaign id stamped onto every collected record")
    dse.add_argument("--stage-cache", action="store_true",
                     help="enable the stage-prefix cache (resume flow jobs "
                          "from the deepest cached pipeline prefix)")
    dse.set_defaults(func=_cmd_dse)

    metrics = sub.add_parser("metrics", help="inspect collected METRICS data")
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)
    summary = metrics_sub.add_parser(
        "summary", help="summarize a METRICS store (runs, metrics, miner); "
                        "accepts JSONL files and sqlite warehouses"
    )
    summary.add_argument("--in", dest="path", required=True, metavar="FILE",
                         help="JSONL file or sqlite warehouse (format sniffed)")
    summary.add_argument("--design", default=None,
                         help="restrict to one design")
    summary.add_argument("--campaign", default=None,
                         help="restrict to one campaign id")
    summary.add_argument("--recommend", default=None, metavar="OBJECTIVE",
                         help="also mine an option recommendation for this objective")
    summary.set_defaults(func=_cmd_metrics_summary)

    ingest = metrics_sub.add_parser(
        "ingest", help="append a JSONL metrics file into a sqlite warehouse, "
                       "optionally stamping a campaign id"
    )
    ingest.add_argument("--db", required=True, metavar="DB",
                        help="sqlite warehouse (created if missing)")
    ingest.add_argument("--in", dest="path", required=True, metavar="FILE",
                        help="JSONL source written by --metrics-out")
    ingest.add_argument("--campaign", default=None,
                        help="campaign id stamped onto untagged records")
    ingest.set_defaults(func=_cmd_metrics_ingest)

    migrate = metrics_sub.add_parser(
        "migrate", help="convert a JSONL metrics file into a sqlite "
                        "warehouse, verifying zero record loss"
    )
    migrate.add_argument("--in", dest="path", required=True, metavar="FILE",
                         help="JSONL source written by --metrics-out")
    migrate.add_argument("--db", required=True, metavar="DB",
                         help="sqlite warehouse (created if missing)")
    migrate.set_defaults(func=_cmd_metrics_migrate)

    query = metrics_sub.add_parser(
        "query", help="list runs or records from a metrics store"
    )
    query.add_argument("--in", dest="path", required=True, metavar="FILE",
                       help="JSONL file or sqlite warehouse (format sniffed)")
    query.add_argument("--design", default=None,
                       help="restrict to one design")
    query.add_argument("--campaign", default=None,
                       help="restrict to one campaign id")
    query.add_argument("--metric", default=None,
                       help="print matching records of this metric")
    query.add_argument("--run", default=None, metavar="RUN_ID",
                       help="print records of one run")
    query.add_argument("--since", type=int, default=None, metavar="N",
                       help="only runs first seen at/after this ingest index")
    query.add_argument("--limit", type=int, default=50,
                       help="maximum rows printed (default 50)")
    query.set_defaults(func=_cmd_metrics_query)

    compact = metrics_sub.add_parser(
        "compact", help="retention: drop all but the most recent campaigns "
                        "from a sqlite warehouse"
    )
    compact.add_argument("--db", required=True, metavar="DB",
                         help="sqlite warehouse to compact")
    compact.add_argument("--keep-last", type=int, required=True, metavar="N",
                         help="number of most-recent campaigns to keep")
    compact.add_argument("--no-vacuum", action="store_true",
                         help="skip the VACUUM after deletion")
    compact.set_defaults(func=_cmd_metrics_compact)

    cache = sub.add_parser("cache", help="inspect flow-result cache directories")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry counts, schema versions, and per-stage hit counters"
    )
    cache_stats.add_argument("--dir", required=True, metavar="DIR",
                             help="cache directory (the executor's cache_dir)")
    cache_stats.set_defaults(func=_cmd_cache_stats)

    lint = sub.add_parser(
        "lint", help="determinism & parallel-safety static analysis"
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files/directories to analyze (default: src/repro)")
    lint.add_argument("--format", choices=["human", "json"], default="human",
                      help="output format")
    lint.add_argument("--strict", action="store_true",
                      help="exit nonzero on any finding, regardless of severity")
    lint.add_argument("--fail-on", default="error",
                      choices=["info", "warning", "error"],
                      help="lowest severity that fails the run (default: error)")
    lint.add_argument("--select", default=None, metavar="IDS",
                      help="comma-separated rule ids to run (default: all)")
    lint.add_argument("--ignore", default=None, metavar="IDS",
                      help="comma-separated rule ids to skip")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.add_argument("--verbose", action="store_true",
                      help="also print suppressed findings")
    lint.add_argument("--project", action="store_true",
                      help="whole-program mode: build the import/call graph "
                           "once and enable the cross-file rules (R009-R012)")
    lint.add_argument("--no-cache", action="store_true",
                      help="with --project: ignore and do not write the "
                           "incremental cache (.repro-lint-cache.json)")
    lint.set_defaults(func=_cmd_lint)

    cost = sub.add_parser("cost", help="ITRS design-cost projection")
    cost.add_argument("--year", type=int, default=2028)
    cost.add_argument("--freeze", type=int, default=None,
                      help="drop DT innovations after this year")
    cost.set_defaults(func=_cmd_cost)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
