"""Cross-process METRICS collection for parallel campaigns.

The paper's Fig 11 architecture assumes *every* tool run reports into
the central server — including runs fanned across a process pool by
:class:`~repro.core.parallel.FlowExecutor`.  An in-memory
:class:`~repro.metrics.server.MetricsServer` lives in the coordinator
process, so pool workers cannot call it directly; instead:

- workers transmit through a :class:`QueueTransmitter` — the standard
  :class:`~repro.metrics.transmitter.Transmitter` validation and
  buffering, but delivering XML wire-format records onto a
  cross-process queue instead of a server;
- the coordinator runs a :class:`MetricsCollector`: a drain thread
  that pops records off the queue and feeds them into the server.

The queue carries the same XML strings the original METRICS moved over
the network, so the wire format is unchanged — only the transport is.
See ``docs/metrics.md``.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
from typing import Optional

from repro.metrics.schema import MetricRecord
from repro.metrics.server import MetricsServer
from repro.metrics.transmitter import Transmitter
from repro.metrics.wrappers import report_flow_metrics


class _QueueSink:
    """Duck-typed stand-in for a :class:`MetricsServer`: records are
    put on a queue (as XML text) instead of being ingested directly."""

    def __init__(self, queue):
        self.queue = queue

    def receive_xml(self, xml_text: str) -> None:
        self.queue.put(xml_text)

    def receive(self, record) -> None:
        self.queue.put(record.to_xml())


class QueueTransmitter(Transmitter):
    """A :class:`Transmitter` whose delivery target is a queue.

    Validation (vocabulary check at ``send``) and buffering are
    inherited unchanged; ``flush`` puts XML-encoded records on the
    queue, where the coordinator's :class:`MetricsCollector` drains
    them into the real server.  Works with both in-process queues and
    ``multiprocessing.Manager`` queue proxies, so the same class serves
    serial executors and pool workers.
    """

    def __init__(self, queue, design: str, run_id: str, tool: str,
                 buffer_size: int = 32):
        super().__init__(_QueueSink(queue), design, run_id, tool,
                         use_xml=True, buffer_size=buffer_size)


class MetricsCollector:
    """Coordinator-side fan-in: queue -> drain thread -> server.

    Parameters
    ----------
    server:
        the :class:`MetricsServer` to feed; a fresh in-memory server is
        created when omitted (``persist_path`` then configures it).
    cross_process:
        True (default) backs the queue with a ``multiprocessing.Manager``
        so pool workers can transmit into it; False uses a plain
        ``queue.Queue`` — cheaper, but only valid for in-process
        (``n_workers=1``) execution.
    campaign:
        campaign id for a server created by this collector; every
        untagged record ingested during the session is stamped with it
        (ignored when an explicit ``server`` is passed — configure the
        campaign on that server instead).
    batch_size:
        how many queued records the drain thread hands the server per
        ingest call.  Batches become single transactions on a
        warehouse-backed server, which is what makes sqlite ingest keep
        up with a process pool; correctness does not depend on the
        value.

    Use as a context manager, or call :meth:`start`/:meth:`stop`
    explicitly.  :meth:`flush` blocks until every record put so far has
    been drained into the server — call it before mining mid-campaign.
    """

    def __init__(
        self,
        server: Optional[MetricsServer] = None,
        cross_process: bool = True,
        persist_path: Optional[str] = None,
        campaign: Optional[str] = None,
        batch_size: int = 64,
    ):
        if server is not None and persist_path is not None:
            raise ValueError("pass persist_path only without an explicit server")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.server = (server if server is not None
                       else MetricsServer(persist_path, campaign=campaign))
        self.cross_process = cross_process
        self.batch_size = batch_size
        self._manager = None
        self._queue = None
        self._thread: Optional[threading.Thread] = None
        self.received = 0  # records drained into the server
        self.dropped = 0   # malformed queue items ignored

    # ------------------------------------------------------------ lifecycle
    @property
    def queue(self):
        """The transmission queue (collector must be started)."""
        if self._queue is None:
            raise RuntimeError("collector is not started")
        return self._queue

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "MetricsCollector":
        """Idempotent: create the queue and launch the drain thread."""
        if self._thread is not None:
            return self
        if self.cross_process:
            self._manager = multiprocessing.Manager()
            self._queue = self._manager.Queue()
        else:
            self._queue = queue_module.Queue()
        self._thread = threading.Thread(
            target=self._drain, name="metrics-drain", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain everything queued, then shut the collector down."""
        if self._thread is None:
            return
        self._queue.put(None)  # drain sentinel
        self._thread.join()
        self._thread = None
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
        self._queue = None

    def flush(self) -> None:
        """Block until every record queued so far reached the server."""
        if self._queue is not None:
            self._queue.join()

    def transmitter(self, design: str, run_id: str, tool: str) -> QueueTransmitter:
        """A coordinator-side transmitter into this collector's queue."""
        return QueueTransmitter(self.queue, design, run_id, tool)

    def __enter__(self) -> "MetricsCollector":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------ internals
    def _drain(self) -> None:
        """Drain loop: block for one item, opportunistically gather the
        rest of a batch, decode, and hand the server the whole batch in
        one ``receive_many`` call (one warehouse transaction)."""
        while True:
            batch = [self._queue.get()]
            while len(batch) < self.batch_size:
                try:
                    batch.append(self._queue.get_nowait())
                except queue_module.Empty:
                    break
                except Exception:  # noqa: BLE001 - manager proxy hiccup
                    break
            stop = False
            records = []
            for item in batch:
                if item is None:
                    stop = True  # drain sentinel (finish this batch first)
                    continue
                try:
                    records.append(MetricRecord.from_xml(item))
                except Exception:  # noqa: BLE001 - a bad record must not kill the drain
                    self.dropped += 1
            try:
                if records:
                    self.server.receive_many(records)
                    self.received += len(records)
            except Exception:  # noqa: BLE001
                self.dropped += len(records)
            finally:
                for _ in batch:
                    self._queue.task_done()
            if stop:
                return


def run_instrumented_flow_job(queue, run_id, flow_fn, design, options, seed,
                              stop_callback=None):
    """Worker-side wrapper: run one flow job and transmit its metrics.

    Module-level (hence picklable) so :class:`FlowExecutor` can submit
    it to a process pool.  The flow's step metrics go onto ``queue``
    under ``run_id`` via a :class:`QueueTransmitter`; the result is
    returned unchanged, so executor semantics (ordering, caching,
    failure slots) are identical with and without instrumentation.  A
    crash in ``flow_fn`` propagates before anything is transmitted.
    """
    from repro.eda.stages.runner import StagedJobOutcome

    outcome = flow_fn(design, options, seed, stop_callback)
    # a stage-cached job returns (result, stage report); report the
    # result's metrics but hand the full outcome back to the executor,
    # which needs the report for its saved-work accounting
    result = outcome.result if isinstance(outcome, StagedJobOutcome) else outcome
    with QueueTransmitter(queue, result.design, run_id, tool="spr_flow") as tx:
        report_flow_metrics(tx, result)
    return outcome
