"""The METRICS data miner.

The original system's validation: "mining and sensitivity analyses with
respect to final design QOR enabled prediction of best design-specific
tool option settings" and "METRICS was also used to prescribe
achievable clock frequency for given designs".  Both are reproduced
here on top of the server's run table, using the in-house ML kit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.metrics.server import MetricsServer
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import RidgeRegression
from repro.ml.metrics import r2_score
from repro.ml.scaling import StandardScaler

#: metrics that are *settings* (inputs), not outcomes
OPTION_METRICS = (
    "option.synth_effort",
    "option.utilization",
    "option.cts_effort",
    "option.router_effort",
    "option.opt_guardband",
    "flow.target_ghz",
)

#: metrics describing the design itself (usable as predictor features)
DESIGN_METRICS = ("synth.instances", "synth.depth", "synth.area")


@dataclass
class OptionRecommendation:
    """The miner's advice: option settings and their predicted QoR."""

    options: Dict[str, float]
    predicted_objective: float
    model_r2: float


class DataMiner:
    """Learns QoR models from collected runs and answers flow questions.

    ``server`` is anything that answers the store query API — a live
    :class:`MetricsServer` or a warehouse backend
    (:class:`~repro.metrics.store.SqliteStore`) opened directly, so the
    miner can work over *all* prior campaigns, not just this session's.
    ``campaign=`` on the analysis methods narrows any query to one
    campaign; the default mines full history."""

    def __init__(self, server: MetricsServer, seed: Optional[int] = None):
        self.server = server
        self.seed = seed

    # ------------------------------------------------------------------
    def _table(self, design: Optional[str], campaign: Optional[str] = None):
        run_ids, names, matrix = self.server.table(design, campaign=campaign)
        index = {name: i for i, name in enumerate(names)}
        return run_ids, names, matrix, index

    def sensitivity(
        self, objective: str = "flow.area", design: Optional[str] = None,
        campaign: Optional[str] = None,
    ) -> Dict[str, float]:
        """|correlation| of each option metric with the objective.

        The simple screen the original METRICS ran: which knobs move
        this design's QoR at all?"""
        _, names, matrix, index = self._table(design, campaign)
        if objective not in index:
            raise KeyError(f"objective {objective!r} not collected")
        y = matrix[:, index[objective]]
        out = {}
        for option in OPTION_METRICS:
            if option not in index:
                continue
            x = matrix[:, index[option]]
            if np.std(x) == 0 or np.std(y) == 0:
                out[option] = 0.0
            else:
                out[option] = float(abs(np.corrcoef(x, y)[0, 1]))
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    # ------------------------------------------------------------------
    def recommend_options(
        self,
        objective: str = "flow.area",
        minimize: bool = True,
        design: Optional[str] = None,
        require_success: bool = True,
        n_candidates: int = 400,
        campaign: Optional[str] = None,
    ) -> OptionRecommendation:
        """Best option settings for an objective, from a learned model.

        Fits a random forest (options -> objective) on collected runs,
        then searches candidate settings drawn from the observed option
        ranges.  ``require_success`` also fits a success model and
        rejects candidates predicted to fail."""
        run_ids, names, matrix, index = self._table(design, campaign)
        present = [o for o in OPTION_METRICS if o in index]
        if not present:
            raise ValueError("no option metrics collected")
        if objective not in index:
            raise KeyError(f"objective {objective!r} not collected")
        if len(run_ids) < 8:
            raise ValueError("need at least 8 runs to mine recommendations")
        X = matrix[:, [index[o] for o in present]]
        y = matrix[:, index[objective]]
        model = RandomForestRegressor(n_estimators=40, max_depth=6, random_state=self.seed)
        model.fit(X, y)
        r2 = r2_score(y, model.predict(X))

        success_model = None
        if require_success and "flow.success" in index:
            s = matrix[:, index["flow.success"]]
            if 0.0 < s.mean() < 1.0:
                success_model = RandomForestRegressor(
                    n_estimators=40, max_depth=6, random_state=self.seed
                )
                success_model.fit(X, s)

        rng = np.random.default_rng(self.seed)
        lo, hi = X.min(axis=0), X.max(axis=0)
        candidates = rng.uniform(lo, hi, size=(n_candidates, X.shape[1]))
        # include the observed settings themselves
        candidates = np.vstack([candidates, X])
        pred = model.predict(candidates)
        if success_model is not None:
            ok = success_model.predict(candidates) >= 0.5
            if ok.any():
                pred = np.where(ok, pred, np.inf if minimize else -np.inf)
        best = int(np.argmin(pred) if minimize else np.argmax(pred))
        return OptionRecommendation(
            options=dict(zip(present, candidates[best].tolist())),
            predicted_objective=float(pred[best]),
            model_r2=r2,
        )

    # ------------------------------------------------------------------
    def flag_anomalies(
        self,
        objective: str = "flow.area",
        design: Optional[str] = None,
        z_threshold: float = 3.0,
        campaign: Optional[str] = None,
    ) -> Dict[str, float]:
        """Runs whose objective deviates wildly from the learned model.

        The METRICS retrospective's "measure, to improve": a run whose
        QoR the option->QoR model cannot explain is either tool noise
        worth investigating or a setup mistake.  Returns
        {run_id: z-score} for flagged runs.
        """
        if z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        run_ids, names, matrix, index = self._table(design, campaign)
        present = [o for o in OPTION_METRICS if o in index]
        if objective not in index or len(present) < 1:
            raise ValueError("server lacks the metrics needed for anomaly analysis")
        if len(run_ids) < 8:
            raise ValueError("need at least 8 runs")
        X = matrix[:, [index[o] for o in present]]
        y = matrix[:, index[objective]]
        model = RandomForestRegressor(n_estimators=40, max_depth=6, random_state=self.seed)
        model.fit(X, y)
        residuals = y - model.predict(X)
        scale = float(np.std(residuals))
        if scale == 0.0:
            return {}
        z = residuals / scale
        return {
            run_ids[i]: float(z[i])
            for i in range(len(run_ids))
            if abs(z[i]) > z_threshold
        }

    # ------------------------------------------------------------------
    def prescribe_frequency(
        self, design_features: Dict[str, float], quantile: float = 0.5
    ) -> float:
        """Achievable clock frequency for a new design (METRICS
        validation use-case: clock planning guidance from the database).

        Fits achieved frequency against design-descriptor metrics over
        *successful* runs of all designs, then predicts for the given
        feature vector.  ``quantile`` shifts the prescription
        conservative (<0.5) or aggressive (>0.5) using the residual
        distribution."""
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        _, names, matrix, index = self._table(None)
        needed = [m for m in DESIGN_METRICS if m in index]
        if len(needed) < 2 or "flow.achieved_ghz" not in index:
            raise ValueError("server lacks the metrics needed for prescription")
        success = matrix[:, index["flow.success"]] > 0.5 if "flow.success" in index else np.ones(matrix.shape[0], bool)
        X = matrix[np.ix_(success, [index[m] for m in needed])]
        y = matrix[success, index["flow.achieved_ghz"]]
        if X.shape[0] < 5:
            raise ValueError("need at least 5 successful runs")
        scaler = StandardScaler()
        model = RidgeRegression(alpha=1.0)
        model.fit(scaler.fit_transform(X), y)
        residuals = y - model.predict(scaler.transform(X))
        query = np.array([[design_features[m] for m in needed]])
        base = float(model.predict(scaler.transform(query))[0])
        return base + float(np.quantile(residuals, quantile))
