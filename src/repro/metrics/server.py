"""The METRICS server: central collection and query.

In-memory store with optional JSON-lines persistence — "reimplementing
METRICS with today's commodity networking, database and cloud
technologies will be much simpler compared to the initial
implementation" (the original used Enterprise Java Beans and servlets;
a dictionary and a flat file suffice here).

Persistence is hardened for parallel campaigns: each record is one
line appended with a single unbuffered ``O_APPEND`` write (atomic at
line granularity, so concurrent writer processes interleave whole
lines), ``receive`` is thread-safe (the collector's drain thread and
direct transmitters may share one server), and reloading skips torn or
corrupt lines left by a killed writer instead of refusing the file.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import Dict, List, Optional

from repro.metrics.schema import MetricRecord


class MetricsServer:
    """Collects :class:`MetricRecord` streams and answers queries."""

    def __init__(self, persist_path: Optional[str] = None):
        self._records: List[MetricRecord] = []
        self._by_run: Dict[str, List[MetricRecord]] = {}
        self._lock = threading.Lock()
        self._persist_fh = None
        self.persist_path = Path(persist_path) if persist_path else None
        self.skipped_lines = 0  # corrupt/torn lines ignored at load
        self.null_values = 0  # non-finite values persisted as null
        if self.persist_path and self.persist_path.exists():
            self._load()

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    def receive(self, record: MetricRecord) -> None:
        """Ingest one record (transmitters call this).  Thread-safe."""
        with self._lock:
            self._records.append(record)
            self._by_run.setdefault(record.run_id, []).append(record)
            if self.persist_path:
                self._append(record)

    def receive_xml(self, xml_text: str) -> None:
        self.receive(MetricRecord.from_xml(xml_text))

    def close(self) -> None:
        """Release the persistence file handle (safe to call twice)."""
        with self._lock:
            if self._persist_fh is not None:
                self._persist_fh.close()
                self._persist_fh = None

    # ------------------------------------------------------------------
    def runs(self, design: Optional[str] = None) -> List[str]:
        """Run ids in sorted order, optionally restricted to one design.

        Both paths sort, so the ordering (and hence :meth:`table` row
        order) is deterministic regardless of the arrival order of
        records from parallel workers."""
        if design is None:
            return sorted(self._by_run)
        return sorted(
            {r.run_id for r in self._records if r.design == design}
        )

    def query(
        self,
        design: Optional[str] = None,
        tool: Optional[str] = None,
        metric: Optional[str] = None,
        run_id: Optional[str] = None,
    ) -> List[MetricRecord]:
        if run_id is not None:
            out = self._by_run.get(run_id, [])  # unknown run -> no records
        else:
            out = self._records
        return [
            r
            for r in out
            if (design is None or r.design == design)
            and (tool is None or r.tool == tool)
            and (metric is None or r.metric == metric)
        ]

    def run_vector(self, run_id: str) -> Dict[str, float]:
        """All metrics of one run as a flat {metric: value} mapping.

        When a metric is reported more than once in a run, the last
        report wins (tools overwrite as they refine)."""
        records = self._by_run.get(run_id)
        if not records:
            raise KeyError(f"unknown run {run_id!r}")
        out: Dict[str, float] = {}
        for record in sorted(records, key=lambda r: r.sequence):
            out[record.metric] = record.value
        return out

    def table(self, design: Optional[str] = None):
        """(run_ids, metric_names, matrix) over complete runs.

        Only metrics present in every selected run are kept, so the
        matrix is dense — what the data miner consumes."""
        import numpy as np

        run_ids = self.runs(design)
        if not run_ids:
            raise ValueError("no runs collected")
        vectors = [self.run_vector(r) for r in run_ids]
        common = set(vectors[0])
        for vec in vectors[1:]:
            common &= set(vec)
        names = sorted(common)
        matrix = np.array([[vec[m] for m in names] for vec in vectors])
        return run_ids, names, matrix

    # ------------------------------------------------------------------
    @staticmethod
    def _encode(record: MetricRecord) -> dict:
        return {
            "design": record.design,
            "run_id": record.run_id,
            "tool": record.tool,
            "metric": record.metric,
            "value": record.value,
            "sequence": record.sequence,
            "attributes": record.attributes,
        }

    def _append(self, record: MetricRecord) -> None:
        # unbuffered binary append: one write() call per line on an
        # O_APPEND descriptor, so concurrent writers never tear a line
        if self._persist_fh is None:
            self._persist_fh = open(self.persist_path, "ab", buffering=0)
        payload = self._encode(record)
        # strict JSON has no Infinity/NaN literal — a plain dumps would
        # emit python-only tokens that any conforming reader rejects.
        # Persist non-finite measurements as null ("no value") and keep
        # allow_nan=False so no such token can ever slip into the file.
        if not math.isfinite(payload["value"]):
            payload["value"] = None
        line = json.dumps(payload, allow_nan=False) + "\n"
        self._persist_fh.write(line.encode())

    def _load(self) -> None:
        with self.persist_path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    if data["value"] is None:
                        # a non-finite measurement persisted as null:
                        # "no value", so there is no record to rebuild
                        self.null_values += 1
                        continue
                    record = MetricRecord(
                        design=data["design"],
                        run_id=data["run_id"],
                        tool=data["tool"],
                        metric=data["metric"],
                        value=data["value"],
                        sequence=data.get("sequence", 0),
                        attributes=data.get("attributes"),
                    )
                except (ValueError, KeyError, TypeError):
                    self.skipped_lines += 1  # torn line from a killed writer
                    continue
                self._records.append(record)
                self._by_run.setdefault(record.run_id, []).append(record)
