"""The METRICS server: central collection and query.

In-memory store with optional JSON-lines persistence — "reimplementing
METRICS with today's commodity networking, database and cloud
technologies will be much simpler compared to the initial
implementation" (the original used Enterprise Java Beans and servlets;
a dictionary and a flat file suffice here).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.metrics.schema import MetricRecord


class MetricsServer:
    """Collects :class:`MetricRecord` streams and answers queries."""

    def __init__(self, persist_path: Optional[str] = None):
        self._records: List[MetricRecord] = []
        self._by_run: Dict[str, List[MetricRecord]] = {}
        self.persist_path = Path(persist_path) if persist_path else None
        if self.persist_path and self.persist_path.exists():
            self._load()

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    def receive(self, record: MetricRecord) -> None:
        """Ingest one record (transmitters call this)."""
        self._records.append(record)
        self._by_run.setdefault(record.run_id, []).append(record)
        if self.persist_path:
            with self.persist_path.open("a") as fh:
                fh.write(json.dumps(self._encode(record)) + "\n")

    def receive_xml(self, xml_text: str) -> None:
        self.receive(MetricRecord.from_xml(xml_text))

    # ------------------------------------------------------------------
    def runs(self, design: Optional[str] = None) -> List[str]:
        """Run ids, optionally restricted to one design."""
        if design is None:
            return list(self._by_run)
        return sorted(
            {r.run_id for r in self._records if r.design == design}
        )

    def query(
        self,
        design: Optional[str] = None,
        tool: Optional[str] = None,
        metric: Optional[str] = None,
        run_id: Optional[str] = None,
    ) -> List[MetricRecord]:
        out = self._by_run.get(run_id, self._records) if run_id else self._records
        return [
            r
            for r in out
            if (design is None or r.design == design)
            and (tool is None or r.tool == tool)
            and (metric is None or r.metric == metric)
        ]

    def run_vector(self, run_id: str) -> Dict[str, float]:
        """All metrics of one run as a flat {metric: value} mapping.

        When a metric is reported more than once in a run, the last
        report wins (tools overwrite as they refine)."""
        records = self._by_run.get(run_id)
        if not records:
            raise KeyError(f"unknown run {run_id!r}")
        out: Dict[str, float] = {}
        for record in sorted(records, key=lambda r: r.sequence):
            out[record.metric] = record.value
        return out

    def table(self, design: Optional[str] = None):
        """(run_ids, metric_names, matrix) over complete runs.

        Only metrics present in every selected run are kept, so the
        matrix is dense — what the data miner consumes."""
        import numpy as np

        run_ids = self.runs(design)
        if not run_ids:
            raise ValueError("no runs collected")
        vectors = [self.run_vector(r) for r in run_ids]
        common = set(vectors[0])
        for vec in vectors[1:]:
            common &= set(vec)
        names = sorted(common)
        matrix = np.array([[vec[m] for m in names] for vec in vectors])
        return run_ids, names, matrix

    # ------------------------------------------------------------------
    @staticmethod
    def _encode(record: MetricRecord) -> dict:
        return {
            "design": record.design,
            "run_id": record.run_id,
            "tool": record.tool,
            "metric": record.metric,
            "value": record.value,
            "sequence": record.sequence,
            "attributes": record.attributes,
        }

    def _load(self) -> None:
        with self.persist_path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                record = MetricRecord(
                    design=data["design"],
                    run_id=data["run_id"],
                    tool=data["tool"],
                    metric=data["metric"],
                    value=data["value"],
                    sequence=data.get("sequence", 0),
                    attributes=data.get("attributes"),
                )
                self._records.append(record)
                self._by_run.setdefault(record.run_id, []).append(record)
