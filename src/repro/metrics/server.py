"""The METRICS server: central collection and query.

"Reimplementing METRICS with today's commodity networking, database and
cloud technologies will be much simpler compared to the initial
implementation" (the original used Enterprise Java Beans and servlets).
Here the server is a thin thread-safe façade over a pluggable
:class:`~repro.metrics.store.MetricsStore` backend:

- :class:`~repro.metrics.store.JsonlStore` (the default) — in-memory
  indexes plus optional hardened JSONL persistence, exactly the
  behavior this class used to implement inline;
- :class:`~repro.metrics.store.SqliteStore` — the multi-campaign
  warehouse (WAL concurrent writers, batched ingest, retention,
  cross-campaign queries).

The server's own responsibilities are collection-side: thread-safe
``receive`` (the collector's drain thread and direct transmitters may
share one server), XML decode, and stamping every untagged record with
the session's campaign id so history stays sliceable after the fact.
All queries delegate to the store.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from repro.metrics.schema import MetricRecord
from repro.metrics.store import JsonlStore, MetricsStore, stamp_campaign


class MetricsServer:
    """Collects :class:`MetricRecord` streams and answers queries.

    ``persist_path`` keeps the historical convenience constructor (a
    JSONL-backed store); pass ``store=`` to mount any backend instead.
    With ``campaign=``, every record that is not already tagged gets
    ``attributes["campaign"] = campaign`` on ingest — the wire format
    and the JSONL line format are unchanged, so files written by older
    sessions load as before (their records simply have no campaign).
    """

    def __init__(self, persist_path: Optional[str] = None,
                 store: Optional[MetricsStore] = None,
                 campaign: Optional[str] = None):
        if store is not None and persist_path is not None:
            raise ValueError("pass persist_path or store, not both")
        self._store = store if store is not None else JsonlStore(persist_path)
        self._lock = threading.Lock()
        self.campaign = campaign

    def __len__(self) -> int:
        return len(self._store)

    @property
    def store(self) -> MetricsStore:
        """The mounted backend (for store-specific operations)."""
        return self._store

    @property
    def persist_path(self):
        return getattr(self._store, "persist_path", None)

    @property
    def skipped_lines(self) -> int:
        return self._store.skipped_lines

    @property
    def null_values(self) -> int:
        return self._store.null_values

    # ------------------------------------------------------------------
    def _stamp(self, record: MetricRecord) -> MetricRecord:
        if self.campaign is None:
            return record
        return stamp_campaign(record, self.campaign)

    def receive(self, record: MetricRecord) -> None:
        """Ingest one record (transmitters call this).  Thread-safe."""
        with self._lock:
            self._store.receive(self._stamp(record))

    def receive_many(self, records: Sequence[MetricRecord]) -> int:
        """Batched ingest — one store transaction for the whole batch
        (the collector's drain thread hands over everything queued)."""
        with self._lock:
            return self._store.ingest([self._stamp(r) for r in records])

    def receive_xml(self, xml_text: str) -> None:
        self.receive(MetricRecord.from_xml(xml_text))

    def close(self) -> None:
        """Release the backend (safe to call twice)."""
        with self._lock:
            self._store.close()

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def runs(self, design: Optional[str] = None,
             campaign: Optional[str] = None,
             since: Optional[int] = None) -> List[str]:
        """Run ids in sorted order, optionally restricted to one design,
        one campaign and/or runs first seen at/after ``since``."""
        return self._store.runs(design, campaign=campaign, since=since)

    def query(
        self,
        design: Optional[str] = None,
        tool: Optional[str] = None,
        metric: Optional[str] = None,
        run_id: Optional[str] = None,
        campaign: Optional[str] = None,
        since: Optional[int] = None,
    ) -> List[MetricRecord]:
        return self._store.query(design, tool, metric, run_id,
                                 campaign=campaign, since=since)

    def run_vector(self, run_id: str) -> Dict[str, float]:
        """All metrics of one run as a flat {metric: value} mapping.

        When a metric is reported more than once in a run, the last
        report wins (tools overwrite as they refine)."""
        return self._store.run_vector(run_id)

    def series(self, run_id: str, metric: str) -> List[float]:
        return self._store.series(run_id, metric)

    def campaigns(self) -> List[str]:
        return self._store.campaigns()

    def table(self, design: Optional[str] = None,
              campaign: Optional[str] = None,
              since: Optional[int] = None):
        """(run_ids, metric_names, matrix) over complete runs.

        Only metrics present in every selected run are kept, so the
        matrix is dense — what the data miner consumes."""
        return self._store.table(design, campaign=campaign, since=since)

    def run_vectors_matrix(self, metrics: Sequence[str],
                           design: Optional[str] = None,
                           campaign: Optional[str] = None,
                           since: Optional[int] = None):
        return self._store.run_vectors_matrix(
            metrics, design=design, campaign=campaign, since=since)
