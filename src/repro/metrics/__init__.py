"""METRICS 2.0 (paper Sec 4, Fig 11).

The original METRICS system (refs [9][28][43]) instrumented design
tools for continuous collection of design-process data, stored it in a
central server, and mined it for predictions and flow guidance.  This
package reimplements that architecture on the substrate, including the
paper's "looking back" upgrades: a common vocabulary, direct tool API
instrumentation (not just wrapper scripts), and a feedback path that
adapts flow parameters mid-stream without human intervention.

Components (Fig 11): tool wrappers / API transmitters -> XML-encoded
records -> the METRICS server -> the data miner -> predictions fed back
to the flow.
"""

from repro.metrics.schema import (
    EXECUTOR_EVENT_METRICS,
    MetricRecord,
    VOCABULARY,
    WAREHOUSE_METRICS,
    validate_metric_name,
)
from repro.metrics.store import (
    JsonlStore,
    MetricsStore,
    MigrationReport,
    SqliteStore,
    migrate_jsonl,
    open_store,
)
from repro.metrics.transmitter import Transmitter
from repro.metrics.server import MetricsServer
from repro.metrics.wrappers import InstrumentedFlow, make_run_id, report_flow_metrics
from repro.metrics.collector import MetricsCollector, QueueTransmitter
from repro.metrics.miner import DataMiner, OptionRecommendation
from repro.metrics.feedback import AdaptiveFlowSession

__all__ = [
    "EXECUTOR_EVENT_METRICS",
    "MetricRecord",
    "VOCABULARY",
    "WAREHOUSE_METRICS",
    "validate_metric_name",
    "MetricsStore",
    "JsonlStore",
    "SqliteStore",
    "MigrationReport",
    "migrate_jsonl",
    "open_store",
    "Transmitter",
    "MetricsServer",
    "MetricsCollector",
    "QueueTransmitter",
    "InstrumentedFlow",
    "make_run_id",
    "report_flow_metrics",
    "DataMiner",
    "OptionRecommendation",
    "AdaptiveFlowSession",
]
