"""Wrapper-script-style logfile parsing.

The original METRICS collected data "by either a wrapper script or an
API call from within the tools".  :class:`~repro.metrics.wrappers.InstrumentedFlow`
is the API path; this module is the wrapper-script path — it parses the
flow's *text* logfile (:meth:`FlowResult.log_text`) with regular
expressions, exactly the way METRICS wrapped Cadence Silicon Ensemble,
and transmits what it finds.  Useful when only logs survive (archived
runs, third-party tools).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.metrics.schema import VOCABULARY
from repro.metrics.server import MetricsServer
from repro.metrics.transmitter import Transmitter

_HEADER_RE = re.compile(
    r"# SP&R flow log: design=(\S+) seed=(\d+) target=([\d.]+)GHz"
)
_METRIC_RE = re.compile(r"^(\w+)\.(\w+) = (-?[\d.]+(?:e[+-]?\d+)?)$")
_SERIES_RE = re.compile(r"^(\w+)\.(\w+)\[(\d+)\] = (-?[\d.]+(?:e[+-]?\d+)?)$")


class FlowLogParseError(ValueError):
    """Raised when a text log is not a recognizable flow log."""


def parse_flow_log(text: str) -> Tuple[Dict[str, str], Dict[str, float], Dict[str, List[float]]]:
    """Parse a flow text log.

    Returns ``(header, metrics, series)`` where header holds design /
    seed / target, metrics maps ``step.key`` to the last reported value,
    and series maps ``step.key`` to per-iteration lists (e.g. the
    detailed router's DRV trajectory).
    """
    header_match = _HEADER_RE.search(text)
    if header_match is None:
        raise FlowLogParseError("missing flow-log header line")
    header = {
        "design": header_match.group(1),
        "seed": header_match.group(2),
        "target_ghz": header_match.group(3),
    }
    metrics: Dict[str, float] = {}
    series: Dict[str, List[float]] = {}
    for line in text.splitlines():
        line = line.strip()
        series_match = _SERIES_RE.match(line)
        if series_match:
            key = f"{series_match.group(1)}.{series_match.group(2)}"
            idx = int(series_match.group(3))
            values = series.setdefault(key, [])
            while len(values) <= idx:
                values.append(0.0)
            values[idx] = float(series_match.group(4))
            continue
        metric_match = _METRIC_RE.match(line)
        if metric_match:
            key = f"{metric_match.group(1)}.{metric_match.group(2)}"
            metrics[key] = float(metric_match.group(3))
    if not metrics:
        raise FlowLogParseError("no metrics found in the log")
    return header, metrics, series


def transmit_flow_log(
    text: str,
    server: MetricsServer,
    run_id: str,
    tool: str = "spr_flow",
) -> int:
    """Parse a text log and transmit every vocabulary metric found.

    Non-vocabulary lines are skipped (the wrapper tolerates log-format
    drift, per METRICS lesson (1): tool outputs change constantly).
    Returns the number of records transmitted.
    """
    header, metrics, series = parse_flow_log(text)
    sent = 0
    with Transmitter(server, header["design"], run_id, tool) as tx:
        tx.send("flow.target_ghz", float(header["target_ghz"]))
        sent += 1
        for key, value in metrics.items():
            if key in VOCABULARY:
                tx.send(key, value)
                sent += 1
        drvs = series.get("droute.drvs")
        if drvs and "droute.final_drvs" in VOCABULARY:
            tx.send("droute.final_drvs", drvs[-1])
            sent += 1
    return sent


def drv_trajectory_from_log(text: str) -> Optional[List[int]]:
    """Extract the detailed router's DRV series from a text log.

    This is the exact signal the doomed-run predictors consume — the
    wrapper path lets them train from archived logfiles alone.
    """
    _, _, series = parse_flow_log(text)
    drvs = series.get("droute.drvs")
    if drvs is None:
        return None
    return [int(v) for v in drvs]
