"""Transmitters move records from tools to the server.

The original METRICS collected data "by either a wrapper script or an
API call from within the tools", buffered and XML-encoded in transit.
The transmitter validates names against the vocabulary before sending —
garbage never reaches the server.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.metrics.schema import MetricRecord
from repro.metrics.server import MetricsServer


class Transmitter:
    """Buffered, validated channel from one tool run to the server."""

    def __init__(
        self,
        server: MetricsServer,
        design: str,
        run_id: str,
        tool: str,
        use_xml: bool = True,
        buffer_size: int = 32,
    ):
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self.server = server
        self.design = design
        self.run_id = run_id
        self.tool = tool
        self.use_xml = use_xml
        self.buffer_size = buffer_size
        self._buffer: list = []
        self._sequence = 0

    def send(self, metric: str, value: float, attributes: Optional[Dict[str, str]] = None) -> None:
        """Queue one metric (validated immediately, flushed in batches)."""
        record = MetricRecord(
            design=self.design,
            run_id=self.run_id,
            tool=self.tool,
            metric=metric,
            value=float(value),
            sequence=self._sequence,
            attributes=attributes,
        )
        self._sequence += 1
        self._buffer.append(record)
        if len(self._buffer) >= self.buffer_size:
            self.flush()

    def send_many(self, metrics: Dict[str, float]) -> None:
        for name, value in metrics.items():
            self.send(name, value)

    def flush(self) -> None:
        """Deliver everything queued (XML round-trip when enabled).

        Records leave the buffer *before* each delivery attempt, so a
        server failure partway through a flush never re-sends the
        records that already arrived: delivery is at-most-once.
        """
        while self._buffer:
            record = self._buffer.pop(0)
            if self.use_xml:
                self.server.receive_xml(record.to_xml())
            else:
                self.server.receive(record)

    def __enter__(self) -> "Transmitter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.flush()
