"""The feedback path: predictions drive the flow without a human.

The paper's retrospective item (iii): "a reimplementation of METRICS
should feed predictions and guidance back into the design flow, which
would then adapt tool/flow parameters midstream without human
intervention."  :class:`AdaptiveFlowSession` is that loop: seed runs
populate the server, the miner recommends settings, the flow runs them,
and each result immediately improves the next recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.eda.flow import FlowOptions, FlowResult
from repro.eda.synthesis import DesignSpec
from repro.metrics.miner import DataMiner
from repro.metrics.server import MetricsServer
from repro.metrics.wrappers import InstrumentedFlow

#: miner option names -> FlowOptions attributes
_OPTION_ATTR = {
    "option.synth_effort": "synth_effort",
    "option.utilization": "utilization",
    "option.cts_effort": "cts_effort",
    "option.router_effort": "router_effort",
    "option.opt_guardband": "opt_guardband",
    "flow.target_ghz": "target_clock_ghz",
}


@dataclass
class AdaptiveFlowSession:
    """A self-improving flow campaign on one design.

    ``run_campaign`` executes ``n_seed`` exploratory runs (random
    settings in sensible ranges) followed by ``n_adaptive`` runs at the
    miner's recommendation, refreshed after every result.
    """

    spec: DesignSpec
    objective: str = "flow.area"
    minimize: bool = True
    server: MetricsServer = field(default_factory=MetricsServer)
    seed: int = 0
    history: List[FlowResult] = field(default_factory=list)
    n_seed_runs: int = 0  # set by run_campaign; history[:n_seed_runs] are seeds

    def run_campaign(
        self,
        n_seed: int = 10,
        n_adaptive: int = 6,
        base_options: Optional[FlowOptions] = None,
    ) -> FlowResult:
        """Returns the best successful result (or the best overall)."""
        if n_seed < 8:
            raise ValueError("need at least 8 seed runs for the miner")
        rng = np.random.default_rng(self.seed)
        flow = InstrumentedFlow(self.server)
        base = base_options or FlowOptions()

        for i in range(n_seed):
            options = base.with_(
                synth_effort=float(rng.uniform(0.2, 0.9)),
                utilization=float(rng.uniform(0.55, 0.85)),
                cts_effort=float(rng.uniform(0.3, 0.9)),
                router_effort=float(rng.uniform(0.4, 0.9)),
                opt_guardband=float(rng.uniform(0.0, 50.0)),
                target_clock_ghz=float(
                    base.target_clock_ghz * rng.uniform(0.85, 1.1)
                ),
            )
            self.history.append(
                flow.run(self.spec, options, seed=int(rng.integers(0, 2**31 - 1)))
            )
        self.n_seed_runs = len(self.history)

        miner = DataMiner(self.server, seed=self.seed)
        for i in range(n_adaptive):
            rec = miner.recommend_options(
                objective=self.objective,
                minimize=self.minimize,
                design=self.spec.name,
            )
            options = self._materialize(base, rec.options)
            self.history.append(
                flow.run(self.spec, options, seed=int(rng.integers(0, 2**31 - 1)))
            )
        return self.best_result()

    def _materialize(self, base: FlowOptions, mined: Dict[str, float]) -> FlowOptions:
        updates = {}
        for metric, attr in _OPTION_ATTR.items():
            if metric in mined:
                updates[attr] = float(np.clip(
                    mined[metric],
                    *_ATTR_BOUNDS[attr],
                ))
        return base.with_(**updates)

    def best_result(self) -> FlowResult:
        if not self.history:
            raise RuntimeError("campaign has not run")
        successes = [r for r in self.history if r.success]
        pool = successes or self.history
        key = (lambda r: r.area) if self.minimize else (lambda r: -r.area)
        if self.objective == "flow.achieved_ghz":
            key = lambda r: -r.achieved_ghz  # noqa: E731
        return min(pool, key=key)

    def improvement(self) -> float:
        """Best adaptive-phase area over best seed-phase area, over
        successful runs (< 1.0 means the feedback loop helped)."""
        if self.n_seed_runs == 0 or len(self.history) <= self.n_seed_runs:
            raise RuntimeError("campaign has not run")
        seeds = [r for r in self.history[: self.n_seed_runs] if r.success]
        adaptive = [r for r in self.history[self.n_seed_runs :] if r.success]
        if not seeds or not adaptive:
            return 1.0
        return min(a.area for a in adaptive) / min(s.area for s in seeds)


_ATTR_BOUNDS = {
    "synth_effort": (0.0, 1.0),
    "utilization": (0.4, 0.9),
    "cts_effort": (0.0, 1.0),
    "router_effort": (0.2, 1.0),
    "opt_guardband": (0.0, 120.0),
    "target_clock_ghz": (0.1, 2.0),
}
