"""The feedback path: predictions drive the flow without a human.

The paper's retrospective item (iii): "a reimplementation of METRICS
should feed predictions and guidance back into the design flow, which
would then adapt tool/flow parameters midstream without human
intervention."  :class:`AdaptiveFlowSession` is that loop: seed runs
populate the server, the miner recommends settings, the flow runs them,
and each result immediately improves the next recommendation.

With a :class:`~repro.core.parallel.FlowExecutor`, the seed phase runs
as one parallel batch (adaptive runs stay sequential — each needs the
miner refreshed with the previous result).  Option settings and run
seeds are drawn from the session rng in the same order as the serial
loop, so campaign results are bit-identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.eda.flow import FlowOptions, FlowResult
from repro.eda.synthesis import DesignSpec
from repro.metrics.miner import DataMiner
from repro.metrics.server import MetricsServer
from repro.metrics.transmitter import Transmitter
from repro.metrics.wrappers import InstrumentedFlow, make_run_id, report_flow_metrics

#: miner option names -> FlowOptions attributes
_OPTION_ATTR = {
    "option.synth_effort": "synth_effort",
    "option.utilization": "utilization",
    "option.cts_effort": "cts_effort",
    "option.router_effort": "router_effort",
    "option.opt_guardband": "opt_guardband",
    "flow.target_ghz": "target_clock_ghz",
}

#: objectives recoverable straight off a FlowResult when the server has
#: no record (e.g. histories built before metrics collection existed)
_RESULT_FALLBACK = {
    "flow.area": lambda r: r.area,
    "flow.achieved_ghz": lambda r: r.achieved_ghz,
    "flow.runtime": lambda r: r.runtime_proxy,
    "signoff.power": lambda r: r.power,
    "signoff.wns": lambda r: r.wns,
    "signoff.tns": lambda r: r.tns,
}


@dataclass
class AdaptiveFlowSession:
    """A self-improving flow campaign on one design.

    ``run_campaign`` executes ``n_seed`` exploratory runs (random
    settings in sensible ranges) followed by ``n_adaptive`` runs at the
    miner's recommendation, refreshed after every result.
    """

    spec: DesignSpec
    objective: str = "flow.area"
    minimize: bool = True
    server: MetricsServer = field(default_factory=MetricsServer)
    seed: int = 0
    history: List[FlowResult] = field(default_factory=list)
    run_ids: List[str] = field(default_factory=list)  # parallel to history
    failures: List[Exception] = field(default_factory=list)
    n_seed_runs: int = 0  # set by run_campaign; history[:n_seed_runs] are seeds

    def run_campaign(
        self,
        n_seed: int = 10,
        n_adaptive: int = 6,
        base_options: Optional[FlowOptions] = None,
        executor=None,
    ) -> FlowResult:
        """Returns the best successful result (or the best overall).

        With an ``executor`` (:class:`~repro.core.parallel.FlowExecutor`),
        seed runs execute as one batch across its workers.  If the
        executor carries a :class:`~repro.metrics.MetricsCollector`, it
        must feed this session's server (worker-side reporting); bare
        executors are reported coordinator-side instead.

        When the session's server is warehouse-backed and already holds
        prior runs of this design (earlier campaigns), those runs count
        toward the miner's minimum — a session resuming over history may
        seed with fewer (even zero) fresh exploratory runs.
        """
        prior_runs = len(self._prior_design_runs())
        if n_seed + prior_runs < 8:
            raise ValueError(
                "need at least 8 seed runs for the miner "
                f"(warehouse holds {prior_runs} prior runs of this design)"
            )
        if (executor is not None and executor.collector is not None
                and executor.collector.server is not self.server):
            raise ValueError(
                "executor's metrics collector must feed this session's server"
            )
        rng = np.random.default_rng(self.seed)
        base = base_options or FlowOptions()
        flow = InstrumentedFlow(self.server) if executor is None else None

        # all settings and run seeds are drawn before anything executes,
        # in the exact draw order of the historical serial loop
        seed_points: List[Tuple[FlowOptions, int]] = []
        for _ in range(n_seed):
            options = base.with_(
                synth_effort=float(rng.uniform(0.2, 0.9)),
                utilization=float(rng.uniform(0.55, 0.85)),
                cts_effort=float(rng.uniform(0.3, 0.9)),
                router_effort=float(rng.uniform(0.4, 0.9)),
                opt_guardband=float(rng.uniform(0.0, 50.0)),
                target_clock_ghz=float(
                    base.target_clock_ghz * rng.uniform(0.85, 1.1)
                ),
            )
            seed_points.append((options, int(rng.integers(0, 2**31 - 1))))
        self._run_points(seed_points, flow, executor)
        self.n_seed_runs = len(self.history)

        miner = DataMiner(self.server, seed=self.seed)
        minimize = self._effective_minimize()
        for _ in range(n_adaptive):
            self._sync_collector(executor)
            rec = miner.recommend_options(
                objective=self.objective,
                minimize=minimize,
                design=self.spec.name,
            )
            options = self._materialize(base, rec.options)
            self._run_points(
                [(options, int(rng.integers(0, 2**31 - 1)))], flow, executor
            )
        self._sync_collector(executor)
        return self.best_result()

    # ------------------------------------------------------------------
    def _prior_design_runs(self) -> List[str]:
        """Run ids of this design already in the server's store — history
        from earlier campaigns when the store is a warehouse."""
        try:
            return self.server.runs(self.spec.name)
        except Exception:  # noqa: BLE001 - a cold/empty store has no history
            return []

    def _run_points(self, points, flow, executor) -> None:
        """Execute (options, seed) points and record results + run ids."""
        if executor is None:
            for options, run_seed in points:
                result = flow.run(self.spec, options, seed=run_seed)
                self.history.append(result)
                self.run_ids.append(make_run_id(self.spec, options, run_seed))
            return
        from repro.core.parallel import FlowExecutionError, FlowJob

        jobs = [FlowJob(self.spec, options, s) for options, s in points]
        report_here = executor.collector is None
        for (options, run_seed), outcome in zip(points, executor.run_jobs(jobs)):
            if isinstance(outcome, FlowExecutionError):
                self.failures.append(outcome)  # recorded, campaign continues
                continue
            run_id = make_run_id(self.spec, options, run_seed)
            if report_here:
                with Transmitter(self.server, outcome.design, run_id,
                                 tool="spr_flow") as tx:
                    report_flow_metrics(tx, outcome)
            self.history.append(outcome)
            self.run_ids.append(run_id)

    @staticmethod
    def _sync_collector(executor) -> None:
        """Wait for in-flight worker records before mining the server."""
        if executor is not None and executor.collector is not None:
            executor.collector.flush()

    def _materialize(self, base: FlowOptions, mined: Dict[str, float]) -> FlowOptions:
        updates = {}
        for metric, attr in _OPTION_ATTR.items():
            if metric in mined:
                updates[attr] = float(np.clip(
                    mined[metric],
                    *_ATTR_BOUNDS[attr],
                ))
        return base.with_(**updates)

    # ------------------------------------------------------------------
    def _effective_minimize(self) -> bool:
        """Achieved frequency is always a maximize objective (kept from
        the historical special case); everything else honors the flag."""
        if self.objective == "flow.achieved_ghz":
            return False
        return self.minimize

    def _objective_of(self, index: int) -> float:
        """The configured objective's value for ``history[index]``,
        preferring the server's run vector over result attributes."""
        if index < len(self.run_ids):
            try:
                vec = self.server.run_vector(self.run_ids[index])
            except KeyError:
                vec = {}
            if self.objective in vec:
                return float(vec[self.objective])
        extract = _RESULT_FALLBACK.get(self.objective)
        if extract is None:
            raise KeyError(
                f"objective {self.objective!r} not collected for run {index}"
            )
        return float(extract(self.history[index]))

    def best_result(self) -> FlowResult:
        """The best run by the configured objective (successful runs
        preferred), ranked on the server's collected run vectors."""
        if not self.history:
            raise RuntimeError("campaign has not run")
        indices = [i for i, r in enumerate(self.history) if r.success]
        pool = indices or list(range(len(self.history)))
        sign = 1.0 if self._effective_minimize() else -1.0
        best = min(pool, key=lambda i: sign * self._objective_of(i))
        return self.history[best]

    def improvement(self) -> float:
        """Best adaptive-phase objective over best seed-phase objective,
        over successful runs (< 1.0 means the feedback loop helped,
        whatever the objective's direction)."""
        if self.n_seed_runs == 0 or len(self.history) <= self.n_seed_runs:
            raise RuntimeError("campaign has not run")
        seeds = [i for i in range(self.n_seed_runs) if self.history[i].success]
        adaptive = [i for i in range(self.n_seed_runs, len(self.history))
                    if self.history[i].success]
        if not seeds or not adaptive:
            return 1.0
        if self._effective_minimize():
            numerator = min(self._objective_of(i) for i in adaptive)
            denominator = min(self._objective_of(i) for i in seeds)
        else:  # maximize: invert the ratio so < 1.0 still means "helped"
            numerator = max(self._objective_of(i) for i in seeds)
            denominator = max(self._objective_of(i) for i in adaptive)
        if denominator == 0.0:
            return 1.0
        return numerator / denominator


_ATTR_BOUNDS = {
    "synth_effort": (0.0, 1.0),
    "utilization": (0.4, 0.9),
    "cts_effort": (0.0, 1.0),
    "router_effort": (0.2, 1.0),
    "opt_guardband": (0.0, 120.0),
    "target_clock_ghz": (0.1, 2.0),
}
