"""Tool instrumentation: the flow reporting into METRICS.

:class:`InstrumentedFlow` wraps :class:`~repro.eda.flow.SPRFlow` the
way the original METRICS wrapped Cadence Silicon Ensemble: every step's
logfile metrics are extracted and transmitted, along with the option
settings that produced them (options are first-class metrics so the
miner can learn option -> QoR maps).

Run identity is content-derived (:func:`make_run_id`): the id is a hash
of (design, options, seed), so any process — a pool worker, a fresh
interpreter, a resumed campaign — assigns the *same* id to the same
flow point and *different* ids to different points.  The old
module-level counter restarted at zero in every pool worker, which
merged unrelated runs into one bogus run vector.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Optional, Union

from repro.eda.flow import FlowOptions, FlowResult, SPRFlow
from repro.eda.netlist import Netlist
from repro.eda.synthesis import DesignSpec
from repro.metrics.schema import (
    DSE_CAMPAIGN_METRICS,
    EXECUTOR_EVENT_METRICS,
    VOCABULARY,
    WAREHOUSE_METRICS,
)
from repro.metrics.server import MetricsServer
from repro.metrics.transmitter import Transmitter

#: flow StepLog metrics -> vocabulary names
_STEP_METRICS = {
    ("synth", "instances"): "synth.instances",
    ("synth", "depth"): "synth.depth",
    ("synth", "area"): "synth.area",
    ("floorplan", "width"): "floorplan.width",
    ("floorplan", "height"): "floorplan.height",
    ("floorplan", "utilization"): "floorplan.utilization",
    ("place", "hpwl"): "place.hpwl",
    ("place", "density_max"): "place.density_max",
    ("cts", "skew"): "cts.skew",
    ("cts", "buffers"): "cts.buffers",
    ("groute", "overflow"): "groute.overflow",
    ("groute", "max_congestion"): "groute.max_congestion",
    ("groute", "wirelength"): "groute.wirelength",
    ("opt", "wns_graph"): "opt.wns_graph",
    ("droute", "final_drvs"): "droute.final_drvs",
    ("droute", "iterations"): "droute.iterations",
    ("signoff", "wns"): "signoff.wns",
    ("signoff", "tns"): "signoff.tns",
    ("signoff", "power"): "signoff.power",
    ("signoff", "ir_drop"): "signoff.ir_drop",
}

_OPTION_METRICS = {
    "synth_effort": "option.synth_effort",
    "utilization": "option.utilization",
    "cts_effort": "option.cts_effort",
    "router_effort": "option.router_effort",
    "opt_guardband": "option.opt_guardband",
}


def make_run_id(design: Union[DesignSpec, Netlist, str], options: FlowOptions,
                seed: int) -> str:
    """A collision-free, process-independent run id for one flow point.

    ``<design name>-<12 hex digits>`` where the digest covers the design
    content, every option knob, and the seed.  Identical points map to
    the same id in every process (their records merge idempotently —
    they describe the same run); distinct points never collide.
    """
    if isinstance(design, str):
        name, content = design, design
    else:
        from repro.core.parallel.cache import design_fingerprint

        name, content = design.name, design_fingerprint(design)
    payload = json.dumps(
        {"design": content, "options": options.to_dict(), "seed": int(seed)},
        sort_keys=True,
        default=float,
    )
    return f"{name}-{hashlib.sha256(payload.encode()).hexdigest()[:12]}"


def report_flow_metrics(tx: Transmitter, result: FlowResult) -> None:
    """Transmit one completed flow run's metrics through ``tx``.

    Shared by :class:`InstrumentedFlow` (in-process reporting) and the
    executor's worker-side instrumentation (queue-backed reporting).

    Non-finite values are dropped rather than transmitted: timing
    reports use ``inf`` as a "nothing to report" sentinel (``wns`` with
    no endpoints, ``hold_wns`` when hold wasn't checked), and a sentinel
    is the *absence* of a measurement — serializing it would poison
    mined tables and produce invalid strict JSON downstream.
    """
    for log in result.logs:
        for key, value in log.metrics.items():
            vocab_name = _STEP_METRICS.get((log.step, key))
            if vocab_name is not None and math.isfinite(value):
                tx.send(vocab_name, value)
        # the router's convergence trajectory: one record per reroute
        # iteration, in transmission order, so warehouse consumers (the
        # doomed-run predictors) can rebuild per-run DRV curves with
        # server.series(run_id, "droute.drv_trajectory")
        for drvs in log.series.get("drvs", ()) if log.step == "droute" else ():
            if math.isfinite(drvs):
                tx.send("droute.drv_trajectory", drvs)
    # sizing work is split across several counters in the log
    opt_logs = [log for log in result.logs if log.step == "opt"]
    if opt_logs:
        ops = sum(
            log.metrics.get("upsizes", 0)
            + log.metrics.get("downsizes", 0)
            + log.metrics.get("vt_swaps", 0)
            for log in opt_logs
        )
        tx.send("opt.sizing_ops", ops)
    for name, value in (
        ("flow.area", result.area),
        ("flow.achieved_ghz", result.achieved_ghz),
        ("flow.runtime", result.runtime_proxy),
    ):
        if math.isfinite(value):
            tx.send(name, value)
    tx.send("flow.success", float(result.success))
    tx.send("flow.target_ghz", result.options.target_clock_ghz)
    for attr, vocab_name in _OPTION_METRICS.items():
        tx.send(vocab_name, float(getattr(result.options, attr)))


class InstrumentedFlow:
    """An SP&R flow whose every run reports into a METRICS server."""

    def __init__(self, server: MetricsServer, stop_callback=None):
        self.server = server
        self.flow = SPRFlow(stop_callback=stop_callback)

    def run(
        self,
        spec: DesignSpec,
        options: FlowOptions,
        seed: int = 0,
        run_id: Optional[str] = None,
    ) -> FlowResult:
        result = self.flow.run(spec, options, seed=seed)
        run_id = run_id or make_run_id(spec, options, seed)
        self.report(result, run_id)
        return result

    def report(self, result: FlowResult, run_id: str) -> None:
        """Extract and transmit a completed run's metrics."""
        with Transmitter(self.server, result.design, run_id, tool="spr_flow") as tx:
            report_flow_metrics(tx, result)


def coverage() -> float:
    """Fraction of the vocabulary the instrumentation exercises (flow
    wrappers plus the executor's per-job event records)."""
    produced = set(_STEP_METRICS.values()) | set(_OPTION_METRICS.values())
    produced |= {
        "opt.sizing_ops", "flow.area", "flow.achieved_ghz", "flow.runtime",
        "flow.success", "flow.target_ghz", "droute.drv_trajectory",
    }
    produced |= set(EXECUTOR_EVENT_METRICS)
    produced |= set(DSE_CAMPAIGN_METRICS)
    produced |= set(WAREHOUSE_METRICS)
    return len(produced & set(VOCABULARY)) / len(VOCABULARY)
