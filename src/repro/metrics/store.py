"""Pluggable METRICS storage backends — the warehouse layer.

The paper's METRICS2.0 vision (Fig 11) is a *queryable warehouse over
all historical runs* feeding the correlation/doomed/surrogate models.
:class:`MetricsServer` used to hard-code one storage strategy (a JSONL
file plus in-memory dicts rebuilt per session); this module extracts
the storage/index/persistence concern behind the :class:`MetricsStore`
protocol with two interchangeable backends:

- :class:`JsonlStore` — the original hardened behavior, preserved
  bit-for-bit: in-memory lists/dicts, optional one-line-per-record
  ``O_APPEND`` persistence (atomic at line granularity for concurrent
  writer processes), torn-line-tolerant reload, non-finite values
  persisted as strict-JSON ``null``.
- :class:`SqliteStore` — the warehouse: schema'd tables (``records``,
  ``vectors``, ``runs``, ``campaigns``), WAL-mode concurrent writers,
  batched transactional ingest, retention compaction
  (:meth:`SqliteStore.compact`), and cross-campaign queries that do not
  require reloading history into memory.

Both backends answer the same query API (``runs``/``query``/
``run_vector``/``series``/``table``/``run_vectors_matrix``) with
deterministic, reproducible ordering, so the miner, the doomed-run
predictors, and the DSE surrogate can train on either.  Campaign
identity rides in each record's ``attributes["campaign"]`` — the wire
format and the JSONL line format are unchanged.

Timestamps are *logical*: every successfully ingested record advances a
monotone per-store counter (persisted by the sqlite backend), and
``since=`` filters select runs first seen at or after a counter value.
Wall-clock timestamps are deliberately not read here (rule R004) —
callers that want real time can stamp it into record attributes.
"""

from __future__ import annotations

import json
import math
import sqlite3
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.schema import MetricRecord

#: attribute key carrying a record's campaign id
CAMPAIGN_ATTR = "campaign"

#: current sqlite schema version (bump on incompatible table changes)
SQLITE_SCHEMA = 1


def campaign_of(record: MetricRecord) -> Optional[str]:
    """The campaign id a record is tagged with, if any."""
    if record.attributes:
        return record.attributes.get(CAMPAIGN_ATTR)
    return None


def stamp_campaign(record: MetricRecord, campaign: str) -> MetricRecord:
    """A copy of ``record`` tagged with ``campaign`` (already-tagged
    records are returned unchanged: the original tag wins)."""
    if record.attributes and CAMPAIGN_ATTR in record.attributes:
        return record
    attributes = dict(record.attributes or {})
    attributes[CAMPAIGN_ATTR] = campaign
    return replace(record, attributes=attributes)


class MetricsStore:
    """The backend protocol: ingest + indexed queries + persistence.

    Concrete stores implement :meth:`receive`, :meth:`ingest`,
    :meth:`runs`, :meth:`query`, :meth:`run_vector`, :meth:`campaigns`,
    :meth:`close` and ``__len__``; the cross-cutting helpers
    (:meth:`series`, :meth:`table`, :meth:`run_vectors_matrix`, context
    management) are shared here.  ``skipped_lines`` counts source
    rows/lines the store could not decode; ``null_values`` counts
    non-finite measurements normalized away (persisted as null by the
    JSONL backend, never stored by the sqlite backend).
    """

    skipped_lines: int = 0
    null_values: int = 0

    # ------------------------------------------------------------ ingest
    def receive(self, record: MetricRecord) -> None:
        raise NotImplementedError

    def ingest(self, records: Sequence[MetricRecord]) -> int:
        """Batched ingest; returns the number of records stored.
        Backends override this with a transactional fast path."""
        for record in records:
            self.receive(record)
        return len(records)

    @property
    def ingest_count(self) -> int:
        """Monotone logical clock: records successfully stored so far.
        Snapshot it before a campaign to use as a ``since=`` bound."""
        raise NotImplementedError

    # ------------------------------------------------------------ queries
    def runs(self, design: Optional[str] = None,
             campaign: Optional[str] = None,
             since: Optional[int] = None) -> List[str]:
        raise NotImplementedError

    def query(self, design: Optional[str] = None, tool: Optional[str] = None,
              metric: Optional[str] = None, run_id: Optional[str] = None,
              campaign: Optional[str] = None,
              since: Optional[int] = None) -> List[MetricRecord]:
        raise NotImplementedError

    def run_vector(self, run_id: str) -> Dict[str, float]:
        raise NotImplementedError

    def campaigns(self) -> List[str]:
        """Campaign ids in first-seen order (deterministic)."""
        raise NotImplementedError

    def series(self, run_id: str, metric: str) -> List[float]:
        """One run's repeated reports of ``metric`` in sequence order —
        the trajectory form the doomed-run predictors train on."""
        records = self.query(run_id=run_id, metric=metric)
        return [r.value for r in sorted(records, key=lambda r: r.sequence)]

    def table(self, design: Optional[str] = None,
              campaign: Optional[str] = None,
              since: Optional[int] = None):
        """(run_ids, metric_names, matrix) over complete runs.

        Only metrics present in every selected run are kept, so the
        matrix is dense — what the data miner consumes."""
        import numpy as np

        run_ids = self.runs(design, campaign=campaign, since=since)
        if not run_ids:
            raise ValueError("no runs collected")
        vectors = [self.run_vector(r) for r in run_ids]
        common = set(vectors[0])
        for vec in vectors[1:]:
            common &= set(vec)
        names = sorted(common)
        matrix = np.array([[vec[m] for m in names] for vec in vectors])
        return run_ids, names, matrix

    def run_vectors_matrix(self, metrics: Sequence[str],
                           design: Optional[str] = None,
                           campaign: Optional[str] = None,
                           since: Optional[int] = None):
        """(run_ids, matrix) aligned to an explicit feature basis.

        Rows are the (sorted) runs whose vectors contain *every*
        requested metric; columns follow ``metrics`` exactly — the
        feature-matrix form model training consumes."""
        import numpy as np

        names = list(metrics)
        if not names:
            raise ValueError("metrics basis must be non-empty")
        run_ids, rows = [], []
        for run_id in self.runs(design, campaign=campaign, since=since):
            vec = self.run_vector(run_id)
            if all(name in vec for name in names):
                run_ids.append(run_id)
                rows.append([vec[name] for name in names])
        matrix = (np.array(rows) if rows
                  else np.empty((0, len(names)), dtype=float))
        return run_ids, matrix

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "MetricsStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class JsonlStore(MetricsStore):
    """The original in-memory + JSONL backend, extracted verbatim.

    Persistence is hardened for parallel campaigns: each record is one
    line appended with a single unbuffered ``O_APPEND`` write (atomic
    at line granularity, so concurrent writer processes interleave
    whole lines), and reloading skips torn or corrupt lines left by a
    killed writer instead of refusing the file.  Non-finite values are
    persisted as strict-JSON ``null`` ("no value") and dropped
    (counted) on reload.
    """

    def __init__(self, persist_path: Optional[str] = None):
        self._records: List[MetricRecord] = []
        self._by_run: Dict[str, List[MetricRecord]] = {}
        self._first_seen: Dict[str, int] = {}  # run id -> ingest index
        self._run_campaign: Dict[str, Optional[str]] = {}
        self._campaigns: List[str] = []        # first-seen order
        self._ingested = 0
        self._persist_fh = None
        self.persist_path = Path(persist_path) if persist_path else None
        self.skipped_lines = 0  # corrupt/torn lines ignored at load
        self.null_values = 0  # non-finite values persisted as null
        if self.persist_path and self.persist_path.exists():
            self._load()

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------ ingest
    def receive(self, record: MetricRecord) -> None:
        self._index(record)
        if self.persist_path:
            self._append(record)

    def ingest(self, records: Sequence[MetricRecord]) -> int:
        for record in records:
            self.receive(record)
        return len(records)

    @property
    def ingest_count(self) -> int:
        return self._ingested

    def _index(self, record: MetricRecord) -> None:
        self._records.append(record)
        if record.run_id not in self._by_run:
            self._first_seen[record.run_id] = self._ingested
        self._by_run.setdefault(record.run_id, []).append(record)
        campaign = campaign_of(record)
        if campaign is not None and campaign not in self._campaigns:
            self._campaigns.append(campaign)
        # a run belongs to the first non-null campaign seen among its
        # records (later records backfill an untagged run, never retag)
        if self._run_campaign.get(record.run_id) is None:
            self._run_campaign[record.run_id] = campaign
        self._ingested += 1

    # ------------------------------------------------------------ queries
    def runs(self, design: Optional[str] = None,
             campaign: Optional[str] = None,
             since: Optional[int] = None) -> List[str]:
        """Run ids in sorted order, optionally restricted to one design,
        one campaign, and/or runs first seen at/after ``since``.

        A run's design and campaign are those of its *first* record
        (a later tagged record backfills an untagged run), matching the
        sqlite ``runs`` table.  All paths sort, so the ordering (and
        hence :meth:`table` row order) is deterministic regardless of
        the arrival order of records from parallel workers."""
        out: Iterable[str] = self._by_run.keys()
        if design is not None:
            out = (rid for rid in out
                   if self._by_run[rid][0].design == design)
        if campaign is not None:
            out = (rid for rid in out
                   if self._run_campaign.get(rid) == campaign)
        if since is not None:
            out = (rid for rid in out if self._first_seen[rid] >= since)
        return sorted(out)

    def query(self, design: Optional[str] = None, tool: Optional[str] = None,
              metric: Optional[str] = None, run_id: Optional[str] = None,
              campaign: Optional[str] = None,
              since: Optional[int] = None) -> List[MetricRecord]:
        if run_id is not None:
            out = self._by_run.get(run_id, [])  # unknown run -> no records
        else:
            out = self._records
        selected = set()
        if since is not None:
            selected = {rid for rid, seen in self._first_seen.items()
                        if seen >= since}
        return [
            r
            for r in out
            if (design is None or r.design == design)
            and (tool is None or r.tool == tool)
            and (metric is None or r.metric == metric)
            and (campaign is None or campaign_of(r) == campaign)
            and (since is None or r.run_id in selected)
        ]

    def run_vector(self, run_id: str) -> Dict[str, float]:
        """All metrics of one run as a flat {metric: value} mapping.

        When a metric is reported more than once in a run, the last
        report wins (tools overwrite as they refine)."""
        records = self._by_run.get(run_id)
        if not records:
            raise KeyError(f"unknown run {run_id!r}")
        out: Dict[str, float] = {}
        for record in sorted(records, key=lambda r: r.sequence):
            out[record.metric] = record.value
        return out

    def campaigns(self) -> List[str]:
        return list(self._campaigns)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release the persistence file handle (safe to call twice)."""
        if self._persist_fh is not None:
            self._persist_fh.close()
            self._persist_fh = None

    # ------------------------------------------------------------ internals
    @staticmethod
    def _encode(record: MetricRecord) -> dict:
        return {
            "design": record.design,
            "run_id": record.run_id,
            "tool": record.tool,
            "metric": record.metric,
            "value": record.value,
            "sequence": record.sequence,
            "attributes": record.attributes,
        }

    def _append(self, record: MetricRecord) -> None:
        # unbuffered binary append: one write() call per line on an
        # O_APPEND descriptor, so concurrent writers never tear a line
        if self._persist_fh is None:
            self._persist_fh = open(self.persist_path, "ab", buffering=0)
        payload = self._encode(record)
        # strict JSON has no Infinity/NaN literal — a plain dumps would
        # emit python-only tokens that any conforming reader rejects.
        # Persist non-finite measurements as null ("no value") and keep
        # allow_nan=False so no such token can ever slip into the file.
        if not math.isfinite(payload["value"]):
            payload["value"] = None
        line = json.dumps(payload, allow_nan=False) + "\n"
        self._persist_fh.write(line.encode())

    def _load(self) -> None:
        with self.persist_path.open() as fh:
            for line in fh:
                record = _decode_jsonl_line(line)
                if record is None:
                    continue
                if record is _NULL_VALUE:
                    # a non-finite measurement persisted as null:
                    # "no value", so there is no record to rebuild
                    self.null_values += 1
                    continue
                if record is _CORRUPT:
                    self.skipped_lines += 1  # torn line from a killed writer
                    continue
                self._index(record)


#: sentinels for :func:`_decode_jsonl_line`
_NULL_VALUE = object()
_CORRUPT = object()


def _decode_jsonl_line(line: str):
    """One JSONL line -> MetricRecord | _NULL_VALUE | _CORRUPT | None.

    ``None`` means a blank line (nothing to count); ``_NULL_VALUE`` a
    non-finite measurement persisted as null; ``_CORRUPT`` a torn or
    foreign line."""
    line = line.strip()
    if not line:
        return None
    try:
        data = json.loads(line)
        if data["value"] is None:
            return _NULL_VALUE
        return MetricRecord(
            design=data["design"],
            run_id=data["run_id"],
            tool=data["tool"],
            metric=data["metric"],
            value=data["value"],
            sequence=data.get("sequence", 0),
            attributes=data.get("attributes"),
        )
    except (ValueError, KeyError, TypeError):
        return _CORRUPT


class SqliteStore(MetricsStore):
    """The warehouse backend: schema'd, WAL-mode, multi-campaign sqlite.

    Tables::

        records(seq_no, design, run_id, tool, metric, value, sequence,
                campaign, attributes)   -- the full record stream
        vectors(run_id, metric, value, sequence)  -- last-wins run vectors
        runs(run_id, design, campaign, first_seen)
        campaigns(campaign, first_seen)
        meta(key, value)                -- schema version

    Every writer process opens its own :class:`SqliteStore` on the same
    path; WAL mode plus a busy timeout makes concurrent multi-process
    ingest safe (whole transactions interleave, never partial rows).
    ``seq_no`` is the logical ingest clock — it orders ``query`` output
    and anchors ``since=`` filters and each run/campaign's
    ``first_seen``.  Non-finite values are normalized away at ingest
    (counted in ``null_values``), matching what a reloaded
    :class:`JsonlStore` exposes, so the two backends answer queries
    identically on the same record stream.
    """

    def __init__(self, path: str, timeout_s: float = 30.0):
        self.path = str(path)
        self.skipped_lines = 0
        self.null_values = 0
        self._lock = threading.Lock()
        # the collector's drain thread may not be the creating thread;
        # our own lock serializes every use of the connection
        self._conn = sqlite3.connect(self.path, timeout=timeout_s,
                                     check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._create_schema()

    def _create_schema(self) -> None:
        with self._lock, self._conn:
            self._conn.executescript(
                """
                CREATE TABLE IF NOT EXISTS meta(
                    key TEXT PRIMARY KEY, value TEXT NOT NULL);
                CREATE TABLE IF NOT EXISTS records(
                    seq_no INTEGER PRIMARY KEY AUTOINCREMENT,
                    design TEXT NOT NULL,
                    run_id TEXT NOT NULL,
                    tool TEXT NOT NULL,
                    metric TEXT NOT NULL,
                    value REAL NOT NULL,
                    sequence INTEGER NOT NULL,
                    campaign TEXT,
                    attributes TEXT);
                CREATE INDEX IF NOT EXISTS idx_records_run
                    ON records(run_id);
                CREATE INDEX IF NOT EXISTS idx_records_design
                    ON records(design);
                CREATE INDEX IF NOT EXISTS idx_records_metric
                    ON records(metric);
                CREATE INDEX IF NOT EXISTS idx_records_campaign
                    ON records(campaign);
                CREATE TABLE IF NOT EXISTS vectors(
                    run_id TEXT NOT NULL,
                    metric TEXT NOT NULL,
                    value REAL NOT NULL,
                    sequence INTEGER NOT NULL,
                    PRIMARY KEY(run_id, metric)) WITHOUT ROWID;
                CREATE TABLE IF NOT EXISTS runs(
                    run_id TEXT PRIMARY KEY,
                    design TEXT NOT NULL,
                    campaign TEXT,
                    first_seen INTEGER NOT NULL);
                CREATE TABLE IF NOT EXISTS campaigns(
                    campaign TEXT PRIMARY KEY,
                    first_seen INTEGER NOT NULL);
                """
            )
            self._conn.execute(
                "INSERT OR IGNORE INTO meta(key, value) VALUES(?, ?)",
                ("schema", str(SQLITE_SCHEMA)),
            )

    def __len__(self) -> int:
        with self._lock:
            row = self._conn.execute("SELECT COUNT(*) FROM records").fetchone()
        return int(row[0])

    # ------------------------------------------------------------ ingest
    def receive(self, record: MetricRecord) -> None:
        self.ingest([record])

    def ingest(self, records: Sequence[MetricRecord]) -> int:
        """One transaction for the whole batch (the collector's drain
        thread hands over everything queued at once).  Returns the
        number of records stored; non-finite values are normalized away
        and counted in ``null_values``."""
        stored = 0
        with self._lock, self._conn:
            for record in records:
                if not math.isfinite(record.value):
                    self.null_values += 1  # "no value": nothing to store
                    continue
                campaign = campaign_of(record)
                attributes = (
                    json.dumps(record.attributes, sort_keys=True)
                    if record.attributes else None
                )
                cur = self._conn.execute(
                    "INSERT INTO records(design, run_id, tool, metric, "
                    "value, sequence, campaign, attributes) "
                    "VALUES(?, ?, ?, ?, ?, ?, ?, ?)",
                    (record.design, record.run_id, record.tool,
                     record.metric, float(record.value),
                     int(record.sequence), campaign, attributes),
                )
                seq_no = cur.lastrowid
                self._conn.execute(
                    "INSERT INTO vectors(run_id, metric, value, sequence) "
                    "VALUES(?, ?, ?, ?) "
                    "ON CONFLICT(run_id, metric) DO UPDATE SET "
                    "value=excluded.value, sequence=excluded.sequence "
                    "WHERE excluded.sequence >= vectors.sequence",
                    (record.run_id, record.metric, float(record.value),
                     int(record.sequence)),
                )
                self._conn.execute(
                    "INSERT OR IGNORE INTO runs(run_id, design, campaign, "
                    "first_seen) VALUES(?, ?, ?, ?)",
                    (record.run_id, record.design, campaign, seq_no),
                )
                if campaign is not None:
                    self._conn.execute(
                        "UPDATE runs SET campaign=? "
                        "WHERE run_id=? AND campaign IS NULL",
                        (campaign, record.run_id),
                    )
                    self._conn.execute(
                        "INSERT OR IGNORE INTO campaigns(campaign, "
                        "first_seen) VALUES(?, ?)",
                        (campaign, seq_no),
                    )
                stored += 1
        return stored

    @property
    def ingest_count(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(MAX(seq_no), 0) FROM records").fetchone()
        return int(row[0])

    # ------------------------------------------------------------ queries
    @staticmethod
    def _run_filters(design, campaign, since) -> Tuple[str, list]:
        clauses, params = [], []
        if design is not None:
            clauses.append("design = ?")
            params.append(design)
        if campaign is not None:
            clauses.append("campaign = ?")
            params.append(campaign)
        if since is not None:
            clauses.append("first_seen >= ?")
            params.append(int(since))
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        return where, params

    def runs(self, design: Optional[str] = None,
             campaign: Optional[str] = None,
             since: Optional[int] = None) -> List[str]:
        """Run ids in sorted order (deterministic at any writer count)."""
        where, params = self._run_filters(design, campaign, since)
        sql = f"SELECT run_id FROM runs{where} ORDER BY run_id"
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [row[0] for row in rows]

    def query(self, design: Optional[str] = None, tool: Optional[str] = None,
              metric: Optional[str] = None, run_id: Optional[str] = None,
              campaign: Optional[str] = None,
              since: Optional[int] = None) -> List[MetricRecord]:
        """Matching records in ingest (``seq_no``) order — identical to
        the JSONL backend's insertion order for the same stream.  Rows
        that fail to decode (foreign writers, unknown metric names) are
        skipped and counted in ``skipped_lines``."""
        clauses, params = [], []
        for column, value in (("design", design), ("tool", tool),
                              ("metric", metric), ("run_id", run_id)):
            if value is not None:
                clauses.append(f"records.{column} = ?")
                params.append(value)
        if campaign is not None:
            clauses.append("records.campaign = ?")
            params.append(campaign)
        join = ""
        if since is not None:
            join = " JOIN runs ON runs.run_id = records.run_id"
            clauses.append("runs.first_seen >= ?")
            params.append(int(since))
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        sql = (
            "SELECT records.design, records.run_id, records.tool, "
            "records.metric, records.value, records.sequence, "
            f"records.attributes FROM records{join}{where} "
            "ORDER BY records.seq_no"
        )
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        out: List[MetricRecord] = []
        for row in rows:
            record = self._decode_row(row)
            if record is not None:
                out.append(record)
        return out

    def _decode_row(self, row) -> Optional[MetricRecord]:
        try:
            attributes = json.loads(row[6]) if row[6] else None
            if attributes is not None and not isinstance(attributes, dict):
                raise TypeError("attributes must decode to a dict")
            return MetricRecord(
                design=row[0], run_id=row[1], tool=row[2], metric=row[3],
                value=float(row[4]), sequence=int(row[5]),
                attributes=attributes,
            )
        except (ValueError, KeyError, TypeError):
            self.skipped_lines += 1  # corrupt row from a foreign writer
            return None

    def run_vector(self, run_id: str) -> Dict[str, float]:
        """Last-wins {metric: value} straight off the ``vectors`` table."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT metric, value FROM vectors WHERE run_id = ? "
                "ORDER BY metric",
                (run_id,),
            ).fetchall()
        if not rows:
            raise KeyError(f"unknown run {run_id!r}")
        return {metric: value for metric, value in rows}

    def campaigns(self) -> List[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT campaign FROM campaigns ORDER BY first_seen, campaign"
            ).fetchall()
        return [row[0] for row in rows]

    def series(self, run_id: str, metric: str) -> List[float]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT value FROM records WHERE run_id = ? AND metric = ? "
                "ORDER BY sequence, seq_no",
                (run_id, metric),
            ).fetchall()
        return [row[0] for row in rows]

    def run_vectors_matrix(self, metrics: Sequence[str],
                           design: Optional[str] = None,
                           campaign: Optional[str] = None,
                           since: Optional[int] = None):
        """SQL fast path: one join over ``vectors``, pivoted in numpy."""
        import numpy as np

        names = list(metrics)
        if not names:
            raise ValueError("metrics basis must be non-empty")
        where, params = self._run_filters(design, campaign, since)
        placeholders = ",".join("?" for _ in names)
        sql = (
            "SELECT vectors.run_id, vectors.metric, vectors.value "
            "FROM vectors JOIN "
            f"(SELECT run_id FROM runs{where}) AS selected "
            "ON selected.run_id = vectors.run_id "
            f"WHERE vectors.metric IN ({placeholders}) "
            "ORDER BY vectors.run_id, vectors.metric"
        )
        with self._lock:
            rows = self._conn.execute(sql, params + names).fetchall()
        col = {name: j for j, name in enumerate(names)}
        by_run: Dict[str, list] = {}
        for run_id, metric, value in rows:
            by_run.setdefault(run_id, [None] * len(names))[col[metric]] = value
        run_ids = [rid for rid in sorted(by_run)
                   if all(v is not None for v in by_run[rid])]
        matrix = (np.array([by_run[rid] for rid in run_ids], dtype=float)
                  if run_ids else np.empty((0, len(names)), dtype=float))
        return run_ids, matrix

    # ------------------------------------------------------------ retention
    def compact(self, keep_last_n_campaigns: int,
                vacuum: bool = True) -> int:
        """Retention: drop every campaign but the ``n`` most recent.

        Campaign recency is first-seen ingest order.  Records that were
        never tagged with a campaign are kept (they belong to no
        droppable campaign).  Returns the number of records removed;
        ``vacuum=True`` also reclaims the file space.
        """
        if keep_last_n_campaigns < 1:
            raise ValueError("keep_last_n_campaigns must be >= 1")
        keep = self.campaigns()[-keep_last_n_campaigns:]
        with self._lock, self._conn:
            all_campaigns = [row[0] for row in self._conn.execute(
                "SELECT campaign FROM campaigns").fetchall()]
            drop = sorted(set(all_campaigns) - set(keep))
            if not drop:
                return 0
            placeholders = ",".join("?" for _ in drop)
            removed = self._conn.execute(
                f"SELECT COUNT(*) FROM records "
                f"WHERE campaign IN ({placeholders})", drop).fetchone()[0]
            self._conn.execute(
                "DELETE FROM vectors WHERE run_id IN "
                f"(SELECT run_id FROM runs WHERE campaign IN ({placeholders}))",
                drop)
            self._conn.execute(
                f"DELETE FROM records WHERE campaign IN ({placeholders})",
                drop)
            self._conn.execute(
                f"DELETE FROM runs WHERE campaign IN ({placeholders})", drop)
            self._conn.execute(
                f"DELETE FROM campaigns WHERE campaign IN ({placeholders})",
                drop)
        if vacuum:
            with self._lock:
                self._conn.execute("VACUUM")
        return int(removed)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None  # type: ignore[assignment]

    def receive_jsonl(self, jsonl_path: str,
                      campaign: Optional[str] = None,
                      batch_size: int = 1000) -> "MigrationReport":
        """Stream a JSONL metrics file into the warehouse.

        Decodes with the same tolerance as a :class:`JsonlStore` reload
        (torn lines skipped, nulls counted) and ingests in transactions
        of ``batch_size``.  With ``campaign``, untagged records are
        stamped on the way in.  This is both ``repro metrics ingest``
        and (unstamped) ``repro metrics migrate``.
        """
        report = MigrationReport()
        batch: List[MetricRecord] = []
        with open(jsonl_path, encoding="utf-8") as fh:
            for line in fh:
                record = _decode_jsonl_line(line)
                if record is None:
                    continue
                if record is _NULL_VALUE:
                    report.null_values += 1
                    continue
                if record is _CORRUPT:
                    report.skipped_lines += 1
                    continue
                if campaign is not None:
                    record = stamp_campaign(record, campaign)
                batch.append(record)
                if len(batch) >= batch_size:
                    report.records += self.ingest(batch)
                    report.batches += 1
                    batch = []
        if batch:
            report.records += self.ingest(batch)
            report.batches += 1
        return report


@dataclass
class MigrationReport:
    """What a JSONL -> warehouse conversion did."""

    records: int = 0       # records stored in the warehouse
    batches: int = 0       # ingest transactions used
    null_values: int = 0   # non-finite (null) source values dropped
    skipped_lines: int = 0  # torn/corrupt source lines skipped


def migrate_jsonl(jsonl_path: str, store: SqliteStore,
                  campaign: Optional[str] = None,
                  batch_size: int = 1000) -> MigrationReport:
    """Convert an existing JSONL metrics file into a warehouse.

    Zero record loss by construction: every line a reloaded
    :class:`JsonlStore` would index is stored (and every line it would
    drop is counted the same way) — the acceptance tests assert count
    and per-run-vector equality between the two."""
    return store.receive_jsonl(jsonl_path, campaign=campaign,
                               batch_size=batch_size)


def open_store(path: str) -> MetricsStore:
    """Open ``path`` with the right backend, sniffing the file format.

    An existing file beginning with the sqlite magic (or an ``.sqlite``/
    ``.db`` suffix for new files) gets a :class:`SqliteStore`; anything
    else a :class:`JsonlStore`."""
    p = Path(path)
    if p.exists() and p.stat().st_size >= 16:
        with open(p, "rb") as fh:
            if fh.read(16).startswith(b"SQLite format 3"):
                return SqliteStore(path)
        return JsonlStore(path)
    if p.suffix.lower() in (".sqlite", ".sqlite3", ".db"):
        return SqliteStore(path)
    return JsonlStore(path)
