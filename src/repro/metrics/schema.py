"""Metric records and the common METRICS vocabulary.

Lesson (2) of the paper's METRICS retrospective: "a common METRICS
vocabulary across different vendors is also important.  Design metrics
... reported from one tool should have the same semantics when reported
by another tool."  The vocabulary below is the single source of metric
names; records with unknown names are rejected at transmission time.

Records encode to the XML wire format of the original system.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional
from xml.etree import ElementTree

#: metric name -> (unit, description)
VOCABULARY: Dict[str, tuple] = {
    "synth.instances": ("count", "mapped instances after synthesis"),
    "synth.depth": ("stages", "longest combinational path in gates"),
    "synth.area": ("um2", "total standard-cell area"),
    "floorplan.width": ("um", "core width"),
    "floorplan.height": ("um", "core height"),
    "floorplan.utilization": ("ratio", "cell area over core area"),
    "place.hpwl": ("um", "half-perimeter wirelength"),
    "place.density_max": ("ratio", "worst bin utilization"),
    "cts.skew": ("ps", "global clock skew"),
    "cts.buffers": ("count", "clock buffers inserted"),
    "groute.overflow": ("tracks", "total routing demand above capacity"),
    "groute.max_congestion": ("ratio", "worst edge demand/capacity"),
    "groute.wirelength": ("um", "global-route wirelength"),
    "opt.sizing_ops": ("count", "sizing/VT operations performed"),
    "opt.wns_graph": ("ps", "worst negative slack, embedded timer"),
    "droute.final_drvs": ("count", "design-rule violations at completion"),
    "droute.iterations": ("count", "rip-up-and-reroute iterations run"),
    "signoff.wns": ("ps", "worst negative slack, signoff timer"),
    "signoff.tns": ("ps", "total negative slack, signoff timer"),
    "signoff.power": ("uW", "total power at target frequency"),
    "signoff.ir_drop": ("ratio", "worst supply droop fraction"),
    "flow.area": ("um2", "final block area"),
    "flow.achieved_ghz": ("GHz", "achieved clock frequency"),
    "flow.runtime": ("work", "total tool work proxy"),
    "flow.success": ("bool", "timing met and routed clean"),
    "flow.target_ghz": ("GHz", "target clock frequency"),
    # option settings are first-class metrics so the miner can learn them
    "option.synth_effort": ("ratio", "synthesis restructuring effort"),
    "option.utilization": ("ratio", "placement utilization target"),
    "option.cts_effort": ("ratio", "CTS effort"),
    "option.router_effort": ("ratio", "detailed-router effort"),
    "option.opt_guardband": ("ps", "optimizer pessimism margin"),
    # executor events: the parallel campaign layer reports its own
    # per-job bookkeeping (cache tier hits, dedup, retries, timeouts,
    # wall vs. proxy runtime) as first-class records
    "exec.cache_hit_memory": ("bool", "job served from the in-memory result cache"),
    "exec.cache_hit_disk": ("bool", "job served from the on-disk result cache"),
    "exec.dedup": ("bool", "job merged with an identical job in its batch"),
    "exec.attempts": ("count", "execution attempts (0 = served without running)"),
    "exec.retries": ("count", "crash retries consumed by the job"),
    "exec.timeout": ("bool", "job hit the per-job wall-clock timeout"),
    "exec.failure": ("bool", "job produced no FlowResult"),
    "exec.runtime_proxy": ("work", "simulated tool cost of the delivered result"),
    "exec.wall_time": ("s", "wall-clock of the executor batch the job ran in"),
    # stage-pipeline events: with the stage-prefix cache on, each job
    # reports how many pipeline stages were served from cached prefix
    # snapshots vs. actually executed, and the tool cost it really paid
    "exec.stage.hit": ("count", "pipeline stages served from the stage-prefix cache"),
    "exec.stage.miss": ("count", "pipeline stages actually executed by the job"),
    "stage.runtime_proxy": ("work", "tool cost actually executed (suffix only on a prefix resume)"),
    # incremental-STA kernel events: the stage layer threads a shared
    # TimingGraph through the pipeline; each job reports how timing was
    # queried (full propagations vs. dirty-cone updates) and the proxy
    # the incremental path avoided paying
    "sta.full": ("count", "full timing-graph propagations run by the job"),
    "sta.incremental.updates": ("count", "incremental dirty-cone timing updates"),
    "sta.incremental.nodes": ("count", "graph nodes re-propagated by incremental updates"),
    "sta.incremental.proxy_saved": ("work", "timing proxy avoided vs. full re-analysis per query"),
    # online-kill events: with a kill policy wired into the executor's
    # stop-callback path, each job reports whether it was terminated
    # mid-route and the router proxy that termination avoided
    "exec.killed.run": ("bool", "job terminated early by the online kill policy"),
    "exec.killed.proxy_saved": ("work", "router proxy avoided by killing the job"),
    # campaign summaries: the DSE engine reports each campaign's
    # headline numbers under one dse-<strategy>-<seed> run id
    "dse.runs": ("count", "runs launched by the campaign"),
    "dse.failed": ("count", "campaign runs that produced no result"),
    "dse.pruned": ("count", "campaign runs detected as pruned mid-route"),
    "dse.killed": ("count", "campaign runs terminated by the kill policy"),
    "dse.kill_proxy_saved": ("work", "router proxy the kill policy avoided"),
    "dse.runtime_proxy": ("work", "summed tool cost of the campaign's delivered results"),
    "dse.best_score": ("objective", "best objective value the campaign found"),
    "dse.surrogate_fit": ("ratio", "training fit of the campaign's last surrogate refit"),
    # router convergence trajectory: one record per rip-up-and-reroute
    # iteration (sequence = iteration index), so the doomed-run
    # predictors can rebuild their training corpora from the warehouse
    "droute.drv_trajectory": ("count", "DRVs remaining after each reroute iteration"),
    # warehouse events: the CLI's ingest/migrate/compact operations
    # report their own bookkeeping as first-class records so warehouse
    # maintenance history is itself queryable
    "warehouse.ingest.records": ("count", "records stored by an ingest operation"),
    "warehouse.ingest.skipped": ("count", "corrupt source lines skipped by an ingest"),
    "warehouse.migrate.records": ("count", "records converted by a JSONL migration"),
    "warehouse.migrate.skipped": ("count", "corrupt source lines skipped by a migration"),
    "warehouse.compact.removed": ("count", "records deleted by retention compaction"),
    "warehouse.compact.campaigns_kept": ("count", "campaigns surviving retention compaction"),
}

#: the executor-event subset of the vocabulary, emitted per job by an
#: instrumented :class:`~repro.core.parallel.FlowExecutor`
EXECUTOR_EVENT_METRICS = (
    "exec.cache_hit_memory",
    "exec.cache_hit_disk",
    "exec.dedup",
    "exec.attempts",
    "exec.retries",
    "exec.timeout",
    "exec.failure",
    "exec.runtime_proxy",
    "exec.wall_time",
    "exec.stage.hit",
    "exec.stage.miss",
    "stage.runtime_proxy",
    "sta.full",
    "sta.incremental.updates",
    "sta.incremental.nodes",
    "sta.incremental.proxy_saved",
    "exec.killed.run",
    "exec.killed.proxy_saved",
)

#: the campaign-summary subset of the vocabulary, emitted once per
#: campaign by the DSE engine (:mod:`repro.dse.engine`)
DSE_CAMPAIGN_METRICS = (
    "dse.runs",
    "dse.failed",
    "dse.pruned",
    "dse.killed",
    "dse.kill_proxy_saved",
    "dse.runtime_proxy",
    "dse.best_score",
    "dse.surrogate_fit",
)

#: the warehouse-maintenance subset of the vocabulary, emitted by the
#: CLI's ``repro metrics ingest|migrate|compact`` operations
WAREHOUSE_METRICS = (
    "warehouse.ingest.records",
    "warehouse.ingest.skipped",
    "warehouse.migrate.records",
    "warehouse.migrate.skipped",
    "warehouse.compact.removed",
    "warehouse.compact.campaigns_kept",
)

# one or more dot-separated lowercase segments after the first —
# executor stage events ("exec.stage.hit") have three
_NAME_RE = re.compile(r"^[a-z_]+(\.[a-z_]+)+$")


def validate_metric_name(name: str) -> str:
    """Return ``name`` if it is in the vocabulary; raise otherwise."""
    if not _NAME_RE.match(name or ""):
        raise ValueError(f"malformed metric name {name!r}")
    if name not in VOCABULARY:
        raise ValueError(f"metric {name!r} is not in the METRICS vocabulary")
    return name


@dataclass(frozen=True)
class MetricRecord:
    """One (design, run, tool, metric, value) observation."""

    design: str
    run_id: str
    tool: str
    metric: str
    value: float
    sequence: int = 0  # transmission order within the run
    attributes: Optional[Dict[str, str]] = field(default=None)

    def __post_init__(self):
        validate_metric_name(self.metric)

    def to_xml(self) -> str:
        """Encode as the METRICS XML wire format."""
        elem = ElementTree.Element(
            "metric",
            design=self.design,
            run=self.run_id,
            tool=self.tool,
            name=self.metric,
            value=repr(float(self.value)),
            seq=str(self.sequence),
        )
        if self.attributes:
            for key, val in sorted(self.attributes.items()):
                ElementTree.SubElement(elem, "attr", name=key, value=val)
        return ElementTree.tostring(elem, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "MetricRecord":
        elem = ElementTree.fromstring(text)
        if elem.tag != "metric":
            raise ValueError(f"unexpected element {elem.tag!r}")
        attributes = {
            child.get("name"): child.get("value") for child in elem.findall("attr")
        } or None
        return cls(
            design=elem.get("design"),
            run_id=elem.get("run"),
            tool=elem.get("tool"),
            metric=elem.get("name"),
            value=float(elem.get("value")),
            sequence=int(elem.get("seq", "0")),
            attributes=attributes,
        )
