"""Routing: global routing with congestion negotiation, and a
detailed-routing iteration engine with per-iteration DRV accounting.

The global router works on a gcell grid with per-edge capacities,
decomposes each net into two-pin segments, routes each as the cheaper
L-shape, and runs a few negotiation rounds that penalize overflowed
edges (PathFinder-style).  Its product is a *congestion map* — routing
demand over capacity per gcell.

The detailed router is the substrate for the paper's doomed-run
experiments (Sec 3.3, Figs 9-10).  Modern detailed routers iterate
rip-up-and-reroute, and tool logfiles expose one DRV count per
iteration.  Ours maintains per-gcell violation counts seeded by the
actual congestion map and evolves them by local fix/spill dynamics:
violations in gcells with routing slack get fixed; fixing in overloaded
neighborhoods spills new violations into adjacent gcells.  When total
demand genuinely exceeds supply the run plateaus (doomed); when supply
is ample DRVs decay geometrically (successful) — the trajectory classes
of Fig 9 emerge from the grid state rather than from curve templates.

Both routers ship two interchangeable kernels.  ``vectorize=True`` (the
default) runs the struct-of-arrays fast path: segments come from one
global lexsort + batched gcell binning, L-shape costs are evaluated
with prefix-sum (``np.add.accumulate``) overflow sums over demand-row
slices — skipped entirely via per-row/column hot-edge counts when a
row has no overflowed edge — and commits are slice adds; the detailed
router's rip-up scatter draws one batched multinomial.
``vectorize=False`` runs the historical per-edge Python loops.  The two
are bitwise-identical — same RNG draw order (tie-breaks and scatter
draws), same float operations in the same order — and the scalar path
is frozen as ``tests/eda/routing_reference.py`` with an equivalence
suite over demand grids, congestion maps, and DRV trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.eda.grid import bin_index, gcell_indices
from repro.eda.placement import Placement

#: A run "succeeds" if it ends with fewer DRVs than this (paper Sec 3.3).
SUCCESS_DRV_THRESHOLD = 200


@dataclass
class GlobalRouteResult:
    """Global routing outcome on an ``ny x nx`` gcell grid."""

    nx: int
    ny: int
    demand_h: np.ndarray  # (ny, nx-1) horizontal edge usage
    demand_v: np.ndarray  # (ny-1, nx) vertical edge usage
    capacity_h: float
    capacity_v: float
    wirelength: float

    @property
    def overflow(self) -> float:
        """Total routed demand above capacity, over all edges."""
        over_h = np.maximum(0.0, self.demand_h - self.capacity_h).sum()
        over_v = np.maximum(0.0, self.demand_v - self.capacity_v).sum()
        return float(over_h + over_v)

    @property
    def max_congestion(self) -> float:
        """Worst edge demand / capacity ratio."""
        h = (self.demand_h / self.capacity_h).max() if self.demand_h.size else 0.0
        v = (self.demand_v / self.capacity_v).max() if self.demand_v.size else 0.0
        return float(max(h, v))

    def congestion_map(self) -> np.ndarray:
        """Per-gcell demand/capacity ratio (average of incident edges)."""
        grid = np.zeros((self.ny, self.nx))
        counts = np.zeros((self.ny, self.nx))
        if self.demand_h.size:
            ratio_h = self.demand_h / self.capacity_h
            grid[:, :-1] += ratio_h
            grid[:, 1:] += ratio_h
            counts[:, :-1] += 1
            counts[:, 1:] += 1
        if self.demand_v.size:
            ratio_v = self.demand_v / self.capacity_v
            grid[:-1, :] += ratio_v
            grid[1:, :] += ratio_v
            counts[:-1, :] += 1
            counts[1:, :] += 1
        counts[counts == 0] = 1
        return grid / counts


class GlobalRouter:
    """Grid-based global router with negotiated congestion."""

    def __init__(
        self,
        nx: int = 16,
        ny: int = 16,
        tracks_per_um: float = 16.0,
        negotiation_rounds: int = 3,
        overflow_penalty: float = 2.0,
        vectorize: bool = True,
    ):
        """``tracks_per_um`` is the routing supply density: edge capacity
        is the gcell boundary length times this (summing the usable
        metal layers), so supply scales with die size the way real
        enablement does."""
        if nx < 2 or ny < 2:
            raise ValueError("grid must be at least 2x2")
        if tracks_per_um <= 0:
            raise ValueError("tracks_per_um must be positive")
        self.nx = nx
        self.ny = ny
        self.tracks_per_um = tracks_per_um
        self.negotiation_rounds = negotiation_rounds
        self.overflow_penalty = overflow_penalty
        self.vectorize = vectorize

    def route(self, placement: Placement, seed: Optional[int] = None) -> GlobalRouteResult:
        rng = np.random.default_rng(seed)
        fp = placement.floorplan
        nx, ny = self.nx, self.ny
        cap_h = self.tracks_per_um * fp.height / ny  # tracks crossing a vertical boundary
        cap_v = self.tracks_per_um * fp.width / nx

        if self.vectorize:
            segments = self._segments_fast(placement)
            demand_h, demand_v = self._negotiate_fast(segments, cap_h, cap_v, rng)
        else:
            segments = self._segments_scalar(placement)
            demand_h, demand_v = self._negotiate_scalar(segments, cap_h, cap_v, rng)

        gx = fp.width / nx
        gy = fp.height / ny
        wirelength = float(demand_h.sum() * gx + demand_v.sum() * gy)
        return GlobalRouteResult(
            nx=nx,
            ny=ny,
            demand_h=demand_h,
            demand_v=demand_v,
            capacity_h=cap_h,
            capacity_v=cap_v,
            wirelength=wirelength,
        )

    # ------------------------------------------------------ segment build
    def _segments_scalar(self, placement: Placement) -> List[Tuple[int, int, int, int]]:
        """Two-pin segments per net: chain pins in (x, y) order.

        Gcell binning goes through the shared :func:`bin_index` (floor +
        clamp) — historically this was a private truncate-and-clamp
        ``gcell()`` closure, which agrees with ``bin_index`` for every
        real input only because the clamp hides the floor/truncate
        difference below zero; routing through the shared helper keeps
        the agreement by construction.
        """
        fp = placement.floorplan
        netlist = placement.netlist
        nx, ny = self.nx, self.ny
        segments: List[Tuple[int, int, int, int]] = []
        for net_name, net in netlist.nets.items():
            if net_name == netlist.clock_net:
                continue
            pts = []
            if net.driver is not None:
                pts.append(placement.positions[net.driver])
            pts += [placement.positions[s] for s, _ in net.sinks]
            pad = fp.pad_positions.get(net_name)
            if pad is not None:
                pts.append(pad)
            if len(pts) < 2:
                continue
            pts.sort()
            for a, b in zip(pts[:-1], pts[1:]):
                ia = bin_index(a[0], fp.width, nx)
                ja = bin_index(a[1], fp.height, ny)
                ib = bin_index(b[0], fp.width, nx)
                jb = bin_index(b[1], fp.height, ny)
                if (ia, ja) != (ib, jb):
                    segments.append((ia, ja, ib, jb))
        return segments

    def _segments_fast(self, placement: Placement) -> List[Tuple[int, int, int, int]]:
        """Batched segment build: one global lexsort + array binning.

        Points are keyed (net ordinal, x, y) so one lexsort reproduces
        every per-net ``pts.sort()``; binning is the vectorized
        :func:`gcell_indices` over all pins at once.  Produces the same
        segments in the same order as :meth:`_segments_scalar`.
        """
        fp = placement.floorplan
        netlist = placement.netlist
        positions = placement.positions
        xs: List[float] = []
        ys: List[float] = []
        nids: List[int] = []
        k = 0
        for net_name, net in netlist.nets.items():
            if net_name == netlist.clock_net:
                continue
            start = len(xs)
            if net.driver is not None:
                x, y = positions[net.driver]
                xs.append(x)
                ys.append(y)
            for s, _ in net.sinks:
                x, y = positions[s]
                xs.append(x)
                ys.append(y)
            pad = fp.pad_positions.get(net_name)
            if pad is not None:
                xs.append(pad[0])
                ys.append(pad[1])
            n_pts = len(xs) - start
            if n_pts < 2:
                del xs[start:], ys[start:]
                continue
            nids.extend([k] * n_pts)
            k += 1
        if not xs:
            return []
        xa = np.asarray(xs)
        ya = np.asarray(ys)
        na = np.asarray(nids)
        order = np.lexsort((ya, xa, na))
        xa, ya, na = xa[order], ya[order], na[order]
        gi, gj = gcell_indices(xa, ya, fp.width, fp.height, self.nx, self.ny)
        same_net = na[1:] == na[:-1]
        ia, ib = gi[:-1][same_net], gi[1:][same_net]
        ja, jb = gj[:-1][same_net], gj[1:][same_net]
        keep = (ia != ib) | (ja != jb)
        cols = np.stack((ia[keep], ja[keep], ib[keep], jb[keep]), axis=1)
        return [tuple(row) for row in cols.tolist()]

    # ------------------------------------------------------- scalar kernel
    def _negotiate_scalar(self, segments, cap_h: float, cap_v: float,
                          rng: np.random.Generator):
        """Per-edge Python loops (the frozen reference kernel)."""
        nx, ny = self.nx, self.ny
        penalty = self.overflow_penalty
        demand_h = np.zeros((ny, max(1, nx - 1)))
        demand_v = np.zeros((max(1, ny - 1), nx))

        def run_cost_h(j: int, lo: int, hi: int) -> float:
            over = 0.0
            for i in range(lo, hi):
                over += max(0.0, demand_h[j, i] + 1.0 - cap_h)
            return (hi - lo) + penalty * over

        def run_cost_v(i: int, lo: int, hi: int) -> float:
            over = 0.0
            for j in range(lo, hi):
                over += max(0.0, demand_v[j, i] + 1.0 - cap_v)
            return (hi - lo) + penalty * over

        def l_cost(seg, horizontal_first: bool) -> float:
            ia, ja, ib, jb = seg
            ilo, ihi = min(ia, ib), max(ia, ib)
            jlo, jhi = min(ja, jb), max(ja, jb)
            if horizontal_first:
                return run_cost_h(ja, ilo, ihi) + run_cost_v(ib, jlo, jhi)
            return run_cost_v(ia, jlo, jhi) + run_cost_h(jb, ilo, ihi)

        def commit(seg, horizontal_first: bool, sign: float) -> None:
            ia, ja, ib, jb = seg
            if horizontal_first:
                for i in range(min(ia, ib), max(ia, ib)):
                    demand_h[ja, i] += sign
                for j2 in range(min(ja, jb), max(ja, jb)):
                    demand_v[j2, ib] += sign
            else:
                for j2 in range(min(ja, jb), max(ja, jb)):
                    demand_v[j2, ia] += sign
                for i2 in range(min(ia, ib), max(ia, ib)):
                    demand_h[jb, i2] += sign

        routes: List[Tuple[bool, Tuple[int, int, int, int]]] = []
        # initial routing pass (random tie-break between the two L shapes)
        for seg in segments:
            c_hf = l_cost(seg, True)
            c_vf = l_cost(seg, False)
            if abs(c_hf - c_vf) < 1e-9:
                hf = bool(rng.integers(0, 2))
            else:
                hf = c_hf < c_vf
            commit(seg, hf, +1.0)
            routes.append((hf, seg))

        # negotiation: rip up and reroute every segment with updated costs
        for _ in range(self.negotiation_rounds):
            new_routes = []
            for hf, seg in routes:
                commit(seg, hf, -1.0)
                c_hf = l_cost(seg, True)
                c_vf = l_cost(seg, False)
                if abs(c_hf - c_vf) < 1e-9:
                    new_hf = bool(rng.integers(0, 2))
                else:
                    new_hf = c_hf < c_vf
                commit(seg, new_hf, +1.0)
                new_routes.append((new_hf, seg))
            routes = new_routes
        return demand_h, demand_v

    # --------------------------------------------------------- fast kernel
    def _negotiate_fast(self, segments, cap_h: float, cap_v: float,
                        rng: np.random.Generator):
        """Struct-of-rows kernel: flat row/column lists plus hot counts.

        Demand lives in plain per-row (and per-column, for the vertical
        layer) float lists instead of a numpy grid, so the negotiation
        loop pays list-index costs rather than numpy scalar-indexing
        dispatch on every edge.  Demand stays integer-valued, so an edge
        is "hot" (contributes a nonzero overflow term) iff
        ``demand + 1 > cap``; per-row and per-column hot-edge counts —
        maintained incrementally as commits cross the capacity
        threshold — let runs through clean rows cost exactly ``hi - lo``
        without touching a single edge.  Skipping the ``over += 0.0``
        terms of cold edges is bitwise-safe (the accumulator never goes
        negative), so every cost, tie-break, and RNG draw matches the
        scalar kernel exactly.
        """
        nx, ny = self.nx, self.ny
        penalty = self.overflow_penalty
        dh = [[0.0] * max(1, nx - 1) for _ in range(ny)]
        dvc = [[0.0] * max(1, ny - 1) for _ in range(nx)]  # column-major
        hot_h = [0] * ny
        hot_v = [0] * nx

        def run_cost_h(j: int, lo: int, hi: int) -> float:
            if lo == hi or not hot_h[j]:
                return float(hi - lo)
            row = dh[j]
            over = 0.0
            for i in range(lo, hi):
                d = row[i] + 1.0 - cap_h
                if d > 0.0:
                    over += d
            return (hi - lo) + penalty * over

        def run_cost_v(i: int, lo: int, hi: int) -> float:
            if lo == hi or not hot_v[i]:
                return float(hi - lo)
            col = dvc[i]
            over = 0.0
            for j in range(lo, hi):
                d = col[j] + 1.0 - cap_v
                if d > 0.0:
                    over += d
            return (hi - lo) + penalty * over

        def commit(row_idx: int, col_idx: int, ilo: int, ihi: int,
                   jlo: int, jhi: int, sign: float) -> None:
            if ihi > ilo:
                row = dh[row_idx]
                hot = hot_h[row_idx]
                for i in range(ilo, ihi):
                    d = row[i]
                    nd = d + sign
                    row[i] = nd
                    if (nd + 1.0 > cap_h) != (d + 1.0 > cap_h):
                        hot += 1 if nd > d else -1
                hot_h[row_idx] = hot
            if jhi > jlo:
                col = dvc[col_idx]
                hot = hot_v[col_idx]
                for j in range(jlo, jhi):
                    d = col[j]
                    nd = d + sign
                    col[j] = nd
                    if (nd + 1.0 > cap_v) != (d + 1.0 > cap_v):
                        hot += 1 if nd > d else -1
                hot_v[col_idx] = hot

        n_segs = len(segments)
        hfs = [False] * n_segs
        integers = rng.integers
        for pass_no in range(1 + self.negotiation_rounds):
            rip_up = pass_no > 0
            for s in range(n_segs):
                ia, ja, ib, jb = segments[s]
                ilo, ihi = (ia, ib) if ia <= ib else (ib, ia)
                jlo, jhi = (ja, jb) if ja <= jb else (jb, ja)
                if rip_up:
                    if hfs[s]:
                        commit(ja, ib, ilo, ihi, jlo, jhi, -1.0)
                    else:
                        commit(jb, ia, ilo, ihi, jlo, jhi, -1.0)
                c_hf = run_cost_h(ja, ilo, ihi) + run_cost_v(ib, jlo, jhi)
                c_vf = run_cost_v(ia, jlo, jhi) + run_cost_h(jb, ilo, ihi)
                if abs(c_hf - c_vf) < 1e-9:
                    hf = bool(integers(0, 2))
                else:
                    hf = c_hf < c_vf
                if hf:
                    commit(ja, ib, ilo, ihi, jlo, jhi, +1.0)
                else:
                    commit(jb, ia, ilo, ihi, jlo, jhi, +1.0)
                hfs[s] = hf
        demand_h = np.array(dh, dtype=float)
        demand_v = np.ascontiguousarray(np.array(dvc, dtype=float).T)
        return demand_h, demand_v


@dataclass
class DetailedRouteResult:
    """Per-iteration DRV trajectory of one detailed-routing run."""

    drvs_per_iteration: List[int]
    success: bool
    iterations_run: int
    stopped_early: bool = False
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def final_drvs(self) -> int:
        return self.drvs_per_iteration[-1] if self.drvs_per_iteration else 0

    @property
    def initial_drvs(self) -> int:
        return self.drvs_per_iteration[0] if self.drvs_per_iteration else 0


class DetailedRouter:
    """Rip-up-and-reroute iteration engine over a congestion grid.

    ``effort`` in (0, 1] scales the per-iteration fix rate (a router
    effort knob); ``max_iterations`` defaults to 20 as in the paper's
    Fig 9 ("modern detailed routers default to 20-40 iterations").
    """

    def __init__(
        self,
        max_iterations: int = 20,
        effort: float = 0.6,
        drv_seed_rate: float = 30.0,
        spill_rate: float = 0.55,
        shock_prob: float = 0.3,
        shock_frac: float = 0.6,
        vectorize: bool = True,
    ):
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 < effort <= 1.0:
            raise ValueError("effort must be in (0, 1]")
        if not 0.0 <= shock_prob <= 1.0:
            raise ValueError("shock_prob must be in [0, 1]")
        self.max_iterations = max_iterations
        self.effort = effort
        self.drv_seed_rate = drv_seed_rate
        self.spill_rate = spill_rate
        self.shock_prob = shock_prob
        self.shock_frac = shock_frac
        self.vectorize = vectorize

    def route(
        self,
        congestion: np.ndarray,
        seed: Optional[int] = None,
        stop_callback=None,
    ) -> DetailedRouteResult:
        """Run detailed routing against a gcell congestion map.

        ``congestion`` is demand/capacity per gcell (from
        :meth:`GlobalRouteResult.congestion_map`).  ``stop_callback``,
        if given, is called after each iteration with the DRV history;
        returning True terminates the run early (the hook the doomed-run
        predictor uses).
        """
        cong = np.asarray(congestion, dtype=float)
        if cong.ndim != 2:
            raise ValueError("congestion map must be 2-D")
        rng = np.random.default_rng(seed)

        # Seed violations: grows sharply where demand exceeds ~90% of capacity.
        excess = np.maximum(0.0, cong - 0.9)
        lam = self.drv_seed_rate * (excess * 10.0) ** 1.5 + 0.3 * cong
        violations = rng.poisson(lam).astype(float)

        history: List[int] = [int(violations.sum())]
        stopped = False
        iterations = 0
        for _ in range(self.max_iterations):
            iterations += 1
            violations = self._iterate(violations, cong, rng)
            history.append(int(violations.sum()))
            if stop_callback is not None and stop_callback(list(history)):
                stopped = True
                break
            if history[-1] == 0:
                break

        return DetailedRouteResult(
            drvs_per_iteration=history,
            success=history[-1] < SUCCESS_DRV_THRESHOLD and not stopped,
            iterations_run=iterations,
            stopped_early=stopped,
            metadata={
                "mean_congestion": float(cong.mean()),
                "max_congestion": float(cong.max()),
                "overflow_fraction": float((cong > 1.0).mean()),
            },
        )

    def _iterate(
        self, violations: np.ndarray, cong: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        # fix probability: high where the gcell has routing slack
        slack = 1.0 - cong
        p_fix = self.effort * _sigmoid(6.0 * slack + 0.5)
        fixed = rng.binomial(violations.astype(int), np.clip(p_fix, 0.0, 1.0))
        # rip-up spillover: fixes in congested neighborhoods push DRVs
        # into adjacent gcells instead of removing them
        neighborhood = _box_mean(cong)
        p_spill = self.spill_rate * _sigmoid(8.0 * (neighborhood - 1.0))
        spilled = rng.binomial(fixed, np.clip(p_spill, 0.0, 1.0))
        remaining = violations - fixed
        incoming = _scatter_to_neighbors(spilled, rng, vectorize=self.vectorize)
        out = np.maximum(0.0, remaining + incoming)
        # reroute shock: opening a region for rip-up occasionally exposes
        # new violations (pin access, via shorts) in proportion to local
        # demand — this makes even healthy runs non-monotone
        if self.shock_prob > 0 and rng.random() < self.shock_prob:
            total = out.sum()
            if total > 0:
                lam = self.shock_frac * total * cong / max(1e-9, cong.sum())
                out = out + rng.poisson(lam)
        return out


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -50, 50)))


def _box_mean(grid: np.ndarray) -> np.ndarray:
    """3x3 neighborhood mean with edge replication."""
    padded = np.pad(grid, 1, mode="edge")
    out = np.zeros_like(grid)
    for dj in range(3):
        for di in range(3):
            out += padded[dj : dj + grid.shape[0], di : di + grid.shape[1]]
    return out / 9.0


def _scatter_to_neighbors(
    counts: np.ndarray, rng: np.random.Generator, vectorize: bool = True
) -> np.ndarray:
    """Move each count into a random 4-neighbor gcell (multinomial split).

    The batched draw (``rng.multinomial`` over the whole count vector)
    consumes the generator stream exactly like the historical per-cell
    loop, so both forms produce identical scatters from the same seed.
    """
    out = np.zeros_like(counts, dtype=float)
    ny, nx = counts.shape
    js, is_ = np.nonzero(counts)
    if js.size == 0:
        return out
    n_per_cell = counts[js, is_].astype(int)
    if vectorize:
        draws = rng.multinomial(n_per_cell, [0.25] * 4)
    else:
        draws = np.stack([rng.multinomial(n, [0.25] * 4) for n in n_per_cell])
    for d, (dj, di) in enumerate(((0, 1), (0, -1), (1, 0), (-1, 0))):
        tj = np.clip(js + dj, 0, ny - 1)
        ti = np.clip(is_ + di, 0, nx - 1)
        np.add.at(out, (tj, ti), draws[:, d])
    return out
