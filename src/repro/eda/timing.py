"""Static timing analysis — compatibility façade over :mod:`repro.eda.sta`.

The engines historically defined here were refactored into the
``repro.eda.sta`` package, built around the incremental
:class:`~repro.eda.sta.graph.TimingGraph` kernel with pluggable
delay-model policies.  This module re-exports the public names so
historical imports (``from repro.eda.timing import GraphSTA``) keep
working; new code should import from :mod:`repro.eda.sta` directly.
"""

from repro.eda.sta import (
    FAST,
    PI_SLEW,
    PO_LOAD,
    SLOW,
    TYPICAL,
    Corner,
    EndpointTiming,
    GraphSTA,
    SignoffSTA,
    TimingReport,
    _BaseSTA,
)

__all__ = [
    "Corner",
    "EndpointTiming",
    "FAST",
    "GraphSTA",
    "PI_SLEW",
    "PO_LOAD",
    "SLOW",
    "SignoffSTA",
    "TYPICAL",
    "TimingReport",
    "_BaseSTA",
]
