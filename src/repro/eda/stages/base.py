"""Stage protocol and the artifact state flowing between stages.

A :class:`FlowStage` is one tool invocation of the SP&R pipeline.  It
declares, as class attributes, everything the caching layer needs to
reason about it without running it:

- ``knobs``: exactly which :class:`~repro.eda.flow.FlowOptions` fields
  the stage reads.  Two option points whose knob values agree on every
  stage of a prefix produce bit-identical artifacts for that prefix —
  the invariant behind prefix cache keys.
- ``n_seeds``: how many step seeds the stage consumes from the flow's
  seed stream (the runner pre-draws them in the monolith's historical
  order, so staging never perturbs the rng stream).
- ``cacheable``: whether the state *after* this stage is worth
  snapshotting (the terminal stage produces only the final result, so
  caching it would duplicate the whole-run :class:`ResultCache`).

Stages communicate only through :class:`PipelineState` fields — the
explicit intermediate artifacts (netlist, floorplan, placement, clock
tree, congestion map, ...) that per-stage tools like iEDA exchange as
files.  ``state.result`` accumulates the step logs and QoR fields
exactly as the monolithic flow did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.eda.cts import ClockTreeResult
from repro.eda.flow import FlowOptions, FlowResult
from repro.eda.floorplan import Floorplan
from repro.eda.netlist import Netlist
from repro.eda.opt import OptResult
from repro.eda.placement import Placement
from repro.eda.routing import DetailedRouteResult, GlobalRouteResult
from repro.eda.sta import StaStats, TimingGraph, TimingTopology
from repro.eda.synthesis import DesignSpec


@dataclass
class PipelineState:
    """Every artifact a stage may consume or produce.

    Fields are filled in pipeline order; a stage may rely on the
    artifacts of every stage before it.  Note the aliasing contract:
    ``placement.netlist`` *is* ``netlist`` (the optimizer resizes cells
    in place and signoff sees the resized design through either
    reference), so snapshots must be deep-copied with a shared memo —
    ``copy.deepcopy`` of the whole state preserves this.
    """

    result: FlowResult
    spec: Optional[DesignSpec] = None  # set for full-flow (synthesis) entries
    netlist: Optional[Netlist] = None
    floorplan: Optional[Floorplan] = None
    placement: Optional[Placement] = None
    clock_tree: Optional[ClockTreeResult] = None
    groute: Optional[GlobalRouteResult] = None
    congestion: Optional[np.ndarray] = None
    opt: Optional[OptResult] = None
    droute: Optional[DetailedRouteResult] = None
    #: corner-independent STA structure (levels, net lengths), built at
    #: CTS and shared by every downstream timing query.  Deep-copying
    #: the state preserves its aliasing onto ``netlist``/``placement``.
    timing_topology: Optional[TimingTopology] = None
    #: the optimizer's live incremental kernel (graph engine view)
    timing_graph: Optional[TimingGraph] = None
    #: timing-work accounting for *this* run's stage suffix; the runner
    #: copies it into the StageReport and resets it on cache resume
    sta_stats: Optional[StaStats] = None


class FlowStage:
    """One stage of the SP&R pipeline (see module docstring)."""

    name: str = ""
    #: the FlowOptions fields this stage reads, in canonical key order
    knobs: Tuple[str, ...] = ()
    #: step seeds consumed from the flow's seed stream
    n_seeds: int = 0
    #: snapshot the post-stage state into the stage cache?
    cacheable: bool = True

    def knob_values(self, options: FlowOptions) -> Dict[str, object]:
        """The stage's slice of the option point (for prefix keys)."""
        return {knob: getattr(options, knob) for knob in self.knobs}

    def run(
        self,
        state: PipelineState,
        options: FlowOptions,
        seeds: Sequence[int],
        stop_callback=None,
    ) -> None:
        """Execute the stage, mutating ``state`` (artifacts + logs)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} knobs={self.knobs}>"
