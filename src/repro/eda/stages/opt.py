"""Timing-optimization stage: sizing/VT loop under the embedded timer.

Note the knob subset includes ``target_clock_ghz``: this is the first
stage where the clock target enters the pipeline, so a target-frequency
sweep at a fixed seed shares its whole synth..groute prefix.

The optimizer queries one incremental
:class:`~repro.eda.sta.graph.TimingGraph` (built over the topology the
CTS stage levelized) instead of re-running full STA per pass; the
kernel's work accounting flows into ``state.sta_stats`` for the
executor's ``sta.*`` metrics.  The StepLog stays byte-identical to the
historical full-reanalysis loop — incremental reports are bit-identical,
so every decision, count and WNS matches.
"""

from __future__ import annotations

from typing import Sequence

from repro.eda.flow import FlowOptions, StepLog
from repro.eda.opt import TimingOptimizer
from repro.eda.sta import GraphSTA, StaStats
from repro.eda.stages.base import FlowStage, PipelineState


class OptStage(FlowStage):
    name = "opt"
    knobs = ("target_clock_ghz", "opt_passes", "opt_cells_per_pass",
             "opt_guardband", "power_recovery")
    n_seeds = 1

    def run(
        self,
        state: PipelineState,
        options: FlowOptions,
        seeds: Sequence[int],
        stop_callback=None,
    ) -> None:
        optimizer = TimingOptimizer(
            max_passes=options.opt_passes,
            cells_per_pass=options.opt_cells_per_pass,
            guardband=options.opt_guardband,
            recover_power=options.power_recovery,
        )
        engine = GraphSTA()
        graph = engine.build_graph(
            state.netlist, state.placement,
            skews=state.clock_tree.skews, congestion=state.congestion,
            topology=state.timing_topology,
        )
        opt = optimizer.optimize(
            state.netlist, state.placement, options.clock_period_ps, engine,
            state.clock_tree.skews, state.congestion, seeds[0], graph=graph,
        )
        state.opt = opt
        state.timing_graph = graph
        if state.sta_stats is None:
            state.sta_stats = StaStats()
        state.sta_stats.add(graph.stats)
        state.result.logs.append(
            StepLog("opt", {"passes": opt.passes, "upsizes": opt.upsizes,
                            "downsizes": opt.downsizes, "vt_swaps": opt.vt_swaps,
                            "wns_graph": opt.final_report.wns},
                    series={"wns": opt.history},
                    runtime_proxy=opt.total_ops * 8.0 + opt.passes * 50.0)
        )
