"""Timing-optimization stage: sizing/VT loop under the embedded timer.

Note the knob subset includes ``target_clock_ghz``: this is the first
stage where the clock target enters the pipeline, so a target-frequency
sweep at a fixed seed shares its whole synth..groute prefix.
"""

from __future__ import annotations

from typing import Sequence

from repro.eda.flow import FlowOptions, StepLog
from repro.eda.opt import TimingOptimizer
from repro.eda.stages.base import FlowStage, PipelineState
from repro.eda.timing import GraphSTA


class OptStage(FlowStage):
    name = "opt"
    knobs = ("target_clock_ghz", "opt_passes", "opt_cells_per_pass",
             "opt_guardband", "power_recovery")
    n_seeds = 1

    def run(
        self,
        state: PipelineState,
        options: FlowOptions,
        seeds: Sequence[int],
        stop_callback=None,
    ) -> None:
        optimizer = TimingOptimizer(
            max_passes=options.opt_passes,
            cells_per_pass=options.opt_cells_per_pass,
            guardband=options.opt_guardband,
            recover_power=options.power_recovery,
        )
        opt = optimizer.optimize(
            state.netlist, state.placement, options.clock_period_ps, GraphSTA(),
            state.clock_tree.skews, state.congestion, seeds[0]
        )
        state.opt = opt
        state.result.logs.append(
            StepLog("opt", {"passes": opt.passes, "upsizes": opt.upsizes,
                            "downsizes": opt.downsizes, "vt_swaps": opt.vt_swaps,
                            "wns_graph": opt.final_report.wns},
                    series={"wns": opt.history},
                    runtime_proxy=opt.total_ops * 8.0 + opt.passes * 50.0)
        )
