"""Placement stage: quadratic seed placement plus annealing refinement."""

from __future__ import annotations

from typing import Sequence

from repro.eda.flow import FlowOptions, StepLog
from repro.eda.placement import AnnealingRefiner, QuadraticPlacer
from repro.eda.stages.base import FlowStage, PipelineState


class PlaceStage(FlowStage):
    name = "place"
    knobs = ("spread_strength", "placer_moves_per_cell")
    n_seeds = 2  # one for the placer, one for the refiner

    def run(
        self,
        state: PipelineState,
        options: FlowOptions,
        seeds: Sequence[int],
        stop_callback=None,
    ) -> None:
        placement = QuadraticPlacer(options.spread_strength).place(
            state.netlist, state.floorplan, seeds[0]
        )
        refiner = AnnealingRefiner(moves_per_cell=options.placer_moves_per_cell)
        hpwl = refiner.refine(placement, seeds[1])
        state.placement = placement
        state.result.hpwl = hpwl
        state.result.logs.append(
            StepLog("place", {"hpwl": hpwl,
                              "density_max": float(placement.density_map().max())},
                    runtime_proxy=state.netlist.n_instances * options.placer_moves_per_cell)
        )
