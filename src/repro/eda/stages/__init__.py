"""The staged SP&R pipeline: one composable tool per flow stage.

Open-source flows (iEDA, OpenROAD) are built as per-stage tools with
explicit intermediate artifacts so stages can be re-entered
independently; this package gives the simulated substrate the same
shape.  Each :class:`~repro.eda.stages.base.FlowStage` consumes and
produces fields of a :class:`~repro.eda.stages.base.PipelineState`
(netlist, floorplan, placement, clock tree, congestion, ...) and
declares exactly which :class:`~repro.eda.flow.FlowOptions` knobs it
reads — which is what makes per-stage prefix cache keys possible
(:mod:`repro.eda.stages.cache`).

:func:`~repro.eda.stages.runner.execute_pipeline` drives the stages in
order and is bit-identical to the historical monolithic
``SPRFlow.implement``: same step-seed draw order, same step logs, same
``FlowResult``.
"""

from repro.eda.stages.base import FlowStage, PipelineState
from repro.eda.stages.cache import (
    StageCache,
    configure_stage_cache,
    get_stage_cache,
    stage_prefix_keys,
)
from repro.eda.stages.runner import (
    FULL_FLOW_STAGES,
    IMPLEMENT_STAGES,
    StagedJobOutcome,
    StageReport,
    execute_pipeline,
    plan_stages,
    run_flow_job_staged,
)

__all__ = [
    "FULL_FLOW_STAGES",
    "IMPLEMENT_STAGES",
    "FlowStage",
    "PipelineState",
    "StageCache",
    "StageReport",
    "StagedJobOutcome",
    "configure_stage_cache",
    "execute_pipeline",
    "get_stage_cache",
    "plan_stages",
    "run_flow_job_staged",
    "stage_prefix_keys",
]
