"""Synthesis stage: design spec -> mapped netlist."""

from __future__ import annotations

from typing import Sequence

from repro.eda.flow import FlowOptions, StepLog, _default_library
from repro.eda.stages.base import FlowStage, PipelineState
from repro.eda.synthesis import synthesize


class SynthStage(FlowStage):
    name = "synth"
    knobs = ("synth_effort",)
    n_seeds = 1

    def run(
        self,
        state: PipelineState,
        options: FlowOptions,
        seeds: Sequence[int],
        stop_callback=None,
    ) -> None:
        netlist = synthesize(state.spec, _default_library(), options.synth_effort, seeds[0])
        state.netlist = netlist
        state.result.logs.append(
            StepLog(
                "synth", dict(netlist.stats(), effort=options.synth_effort),
                runtime_proxy=netlist.n_instances * (1 + 2 * options.synth_effort),
            )
        )
