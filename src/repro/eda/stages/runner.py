"""The pipeline driver: plan seeds, resume from the deepest prefix, run.

:func:`execute_pipeline` is the staged replacement for the monolithic
``SPRFlow.run``/``implement`` bodies and is bit-identical to them: the
step-seed stream is drawn in the exact historical order (synthesis and
implementation seeds first, then placer, refiner, CTS, global route,
opt, detailed route), every stage appends the same
:class:`~repro.eda.flow.StepLog`, and the returned
:class:`~repro.eda.flow.FlowResult` matches field for field.

Because :func:`plan_stages` derives *all* step seeds up front, prefix
cache keys can be computed without running anything — so a job can
probe the stage cache deepest-first and re-run only the suffix after
its deepest cached prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro.eda.flow import FlowOptions, FlowResult, StepLog
from repro.eda.netlist import Netlist
from repro.eda.stages.base import FlowStage, PipelineState
from repro.eda.stages.cache import StageCache, get_stage_cache, stage_prefix_keys
from repro.eda.stages.cts import CtsStage
from repro.eda.stages.droute import DrouteSignoffStage
from repro.eda.stages.floorplan import FloorplanStage
from repro.eda.stages.groute import GrouteStage
from repro.eda.stages.opt import OptStage
from repro.eda.stages.place import PlaceStage
from repro.eda.stages.synth import SynthStage
from repro.eda.synthesis import DesignSpec

Design = Union[DesignSpec, Netlist]

#: physical implementation of an existing netlist (the ``implement`` entry)
IMPLEMENT_STAGES: Tuple[FlowStage, ...] = (
    FloorplanStage(),
    PlaceStage(),
    CtsStage(),
    GrouteStage(),
    OptStage(),
    DrouteSignoffStage(),
)

#: the full flow from a design spec (the ``run`` entry)
FULL_FLOW_STAGES: Tuple[FlowStage, ...] = (SynthStage(),) + IMPLEMENT_STAGES


def _implement_seed_plan(draw: Callable[[], int]) -> Tuple[Tuple[int, ...], ...]:
    """Per-stage seed tuples for IMPLEMENT_STAGES, drawn in the
    monolith's order (left-to-right evaluation): placer, refiner, CTS,
    global route, opt, detailed route."""
    return (
        (),                 # floorplan draws nothing
        (draw(), draw()),   # place: placer + refiner
        (draw(),),          # cts
        (draw(),),          # groute
        (draw(),),          # opt
        (draw(),),          # droute_signoff
    )


def plan_stages(design: Design, seed: int):
    """``(entry_kind, stages, per-stage seed tuples)`` for one job.

    Reproduces the monolithic rng exactly: a full-flow run draws a
    synthesis seed then an implementation seed from ``rng(seed)``, and
    the implementation seeds come from ``rng(implementation_seed)``; an
    implement-only run draws them from ``rng(seed)`` directly.
    """
    rng = np.random.default_rng(seed)
    draw = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731
    if isinstance(design, Netlist):
        return "netlist", IMPLEMENT_STAGES, _implement_seed_plan(draw)
    synth_seed = draw()
    impl_rng = np.random.default_rng(draw())
    impl_draw = lambda: int(impl_rng.integers(0, 2**31 - 1))  # noqa: E731
    stage_seeds = ((synth_seed,),) + _implement_seed_plan(impl_draw)
    return "spec", FULL_FLOW_STAGES, stage_seeds


@dataclass
class StageReport:
    """Per-job stage accounting, returned alongside the result.

    Travels with the job across the process boundary (plain picklable
    dataclass) so the coordinator can aggregate saved work without
    seeing the workers' caches.
    """

    hit_stages: List[str] = field(default_factory=list)
    run_stages: List[str] = field(default_factory=list)
    #: runtime proxy of the stages actually executed (the suffix)
    executed_proxy: float = 0.0
    #: timing-kernel accounting for the executed suffix (see
    #: repro.eda.sta.graph.StaStats): full propagations, incremental
    #: updates, nodes re-propagated, and the proxy the incremental
    #: path avoided versus full re-analysis per query
    sta_full: int = 0
    sta_incremental: int = 0
    sta_nodes: int = 0
    sta_proxy_saved: float = 0.0

    @property
    def n_hits(self) -> int:
        return len(self.hit_stages)

    @property
    def n_misses(self) -> int:
        return len(self.run_stages)


@dataclass
class StagedJobOutcome:
    """What :func:`run_flow_job_staged` returns: result + accounting."""

    result: FlowResult
    report: StageReport


def _design_name(design: Design) -> str:
    return design.name


def execute_pipeline(
    design: Design,
    options: FlowOptions,
    seed: int = 0,
    stop_callback=None,
    design_name: Optional[str] = None,
    synth_log: Optional[StepLog] = None,
    result_seed: Optional[int] = None,
    cache: Optional[StageCache] = None,
    report: Optional[StageReport] = None,
) -> FlowResult:
    """Run the staged pipeline for one job; bit-identical to the monolith.

    With a ``cache``, the job resumes from its deepest cached prefix
    snapshot and re-runs only the suffix; every executed cacheable
    stage's post-state is snapshotted for later jobs.  An externally
    supplied ``synth_log`` (partition-driven flows) is not part of any
    key, so such runs bypass the cache entirely.
    """
    kind, stages, stage_seeds = plan_stages(design, seed)
    if synth_log is not None:
        cache = None
    keys = stage_prefix_keys(design, options, seed) if cache is not None else None
    reported_seed = seed if result_seed is None else result_seed

    state: Optional[PipelineState] = None
    start = 0
    if cache is not None:
        for i in range(len(stages) - 1, -1, -1):
            if not stages[i].cacheable:
                continue
            cached = cache.get(keys[i], stages[i].name)
            if cached is not None:
                state = cached
                # the snapshot carries the *creating* job's identity
                # fields; the artifacts only depend on the matching
                # knob prefix, so rebadge them for this job
                state.result.design = design_name or _design_name(design)
                state.result.options = options
                state.result.seed = reported_seed
                # timing work recorded by the snapshot belongs to the
                # job that created it; this job only pays for its suffix
                state.sta_stats = None
                start = i + 1
                break

    if state is None:
        result = FlowResult(
            design=design_name or _design_name(design), options=options,
            seed=reported_seed,
        )
        state = PipelineState(result=result)
        if kind == "netlist":
            state.netlist = design
            if synth_log is not None:
                result.logs.append(synth_log)
        else:
            state.spec = design

    if report is None:
        report = StageReport()
    report.hit_stages.extend(stage.name for stage in stages[:start])

    for i in range(start, len(stages)):
        stage = stages[i]
        n_logs = len(state.result.logs)
        stage.run(state, options, stage_seeds[i], stop_callback=stop_callback)
        report.run_stages.append(stage.name)
        report.executed_proxy += sum(
            log.runtime_proxy for log in state.result.logs[n_logs:]
        )
        if cache is not None and stage.cacheable:
            cache.put(keys[i], stage.name, state)

    if state.sta_stats is not None:
        report.sta_full += state.sta_stats.full_propagates
        report.sta_incremental += state.sta_stats.incremental_updates
        report.sta_nodes += state.sta_stats.nodes_propagated
        report.sta_proxy_saved += state.sta_stats.proxy_saved

    state.result.runtime_proxy = sum(log.runtime_proxy for log in state.result.logs)
    return state.result


def run_flow_job_staged(
    design: Design, options: FlowOptions, seed: int, stop_callback=None
) -> StagedJobOutcome:
    """Stage-cached drop-in for
    :func:`~repro.core.parallel.executor.run_flow_job` (module-level,
    hence picklable).  Uses the process-global stage cache — in pool
    mode that is each worker's own cache, configured by the executor's
    worker initializer; when none is configured the pipeline simply
    runs every stage.
    """
    report = StageReport()
    result = execute_pipeline(
        design, options, seed, stop_callback=stop_callback,
        cache=get_stage_cache(), report=report,
    )
    return StagedJobOutcome(result=result, report=report)
