"""Floorplan stage: netlist -> core outline and row geometry."""

from __future__ import annotations

from typing import Sequence

from repro.eda.flow import FlowOptions, StepLog
from repro.eda.floorplan import make_floorplan
from repro.eda.stages.base import FlowStage, PipelineState


class FloorplanStage(FlowStage):
    name = "floorplan"
    knobs = ("utilization", "aspect_ratio")
    n_seeds = 0  # floorplanning is deterministic given the netlist

    def run(
        self,
        state: PipelineState,
        options: FlowOptions,
        seeds: Sequence[int],
        stop_callback=None,
    ) -> None:
        floorplan = make_floorplan(state.netlist, options.utilization, options.aspect_ratio)
        state.floorplan = floorplan
        state.result.logs.append(
            StepLog("floorplan",
                    {"width": floorplan.width, "height": floorplan.height,
                     "utilization": options.utilization},
                    runtime_proxy=10.0)
        )
