"""Clock-tree synthesis stage: placement -> buffered clock tree."""

from __future__ import annotations

from typing import Sequence

from repro.eda.cts import ClockTreeSynthesizer
from repro.eda.flow import FlowOptions, StepLog
from repro.eda.sta import TimingTopology
from repro.eda.stages.base import FlowStage, PipelineState


class CtsStage(FlowStage):
    name = "cts"
    knobs = ("cts_effort",)
    n_seeds = 1

    def run(
        self,
        state: PipelineState,
        options: FlowOptions,
        seeds: Sequence[int],
        stop_callback=None,
    ) -> None:
        cts = ClockTreeSynthesizer(options.cts_effort).synthesize(
            state.netlist, state.placement, seeds[0]
        )
        state.clock_tree = cts
        # timing structure is now final up to cell swaps: levelize once
        # here and let every downstream timing query (opt's incremental
        # kernel, droute's signoff) share the topology
        state.timing_topology = TimingTopology(state.netlist, state.placement)
        state.result.logs.append(
            StepLog("cts", {"skew": cts.global_skew, "buffers": cts.n_buffers,
                            "buffer_area": cts.buffer_area},
                    runtime_proxy=cts.n_buffers * 4.0)
        )
