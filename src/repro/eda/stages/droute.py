"""Detailed-routing + signoff stage: the pipeline terminal.

Routing and signoff share one stage because nothing downstream consumes
their artifacts — the stage's product *is* the finished
:class:`~repro.eda.flow.FlowResult` (QoR fields, final logs), which the
whole-run :class:`~repro.core.parallel.ResultCache` already keys, so
``cacheable`` is False: snapshotting post-terminal state would store
every full result twice.
"""

from __future__ import annotations

from typing import Sequence

from repro.eda.flow import FlowOptions, StepLog
from repro.eda.power import estimate_power, ir_drop_analysis
from repro.eda.routing import DetailedRouter
from repro.eda.sta import SignoffSTA, StaStats
from repro.eda.stages.base import FlowStage, PipelineState


#: simulated tool cost of one rip-up-and-reroute iteration — the unit
#: the executor's kill accounting converts skipped iterations into
DROUTE_ITERATION_PROXY = 120.0


class DrouteSignoffStage(FlowStage):
    name = "droute_signoff"
    knobs = ("target_clock_ghz", "router_effort", "router_max_iterations")
    n_seeds = 1
    cacheable = False

    def run(
        self,
        state: PipelineState,
        options: FlowOptions,
        seeds: Sequence[int],
        stop_callback=None,
    ) -> None:
        result = state.result
        period = options.clock_period_ps

        drouter = DetailedRouter(
            max_iterations=options.router_max_iterations, effort=options.router_effort
        )
        droute = drouter.route(state.congestion, seeds[0], stop_callback)
        state.droute = droute
        result.final_drvs = droute.final_drvs
        result.routed = droute.success
        result.logs.append(
            StepLog("droute", {"final_drvs": droute.final_drvs,
                               "iterations": droute.iterations_run,
                               "success": float(droute.success)},
                    series={"drvs": [float(v) for v in droute.drvs_per_iteration]},
                    runtime_proxy=droute.iterations_run * DROUTE_ITERATION_PROXY)
        )

        # a fresh full propagation (signoff must see the whole design),
        # but over the shared topology; its work lands in sta_stats so
        # the executor's sta.* metrics cover the whole timing story
        signoff_graph = SignoffSTA().build_graph(
            state.netlist, state.placement,
            skews=state.clock_tree.skews, congestion=state.congestion,
            topology=state.timing_topology,
        )
        signoff_graph.full_propagate()
        signoff = signoff_graph.report(period)
        if state.sta_stats is None:
            state.sta_stats = StaStats()
        state.sta_stats.add(signoff_graph.stats)
        result.wns = signoff.wns
        result.tns = signoff.tns
        result.timing_met = signoff.wns >= 0.0
        achieved_period = max(1.0, period - signoff.wns)
        result.achieved_ghz = 1000.0 / achieved_period
        power = estimate_power(state.netlist, state.placement, options.target_clock_ghz)
        ir_drop_analysis(state.netlist, state.placement, power)
        result.area = state.netlist.total_area + state.clock_tree.buffer_area
        result.power = power.total
        result.leakage = power.leakage
        result.logs.append(
            StepLog("signoff", {"wns": signoff.wns, "tns": signoff.tns,
                                "violations": float(signoff.n_violations),
                                "power": power.total,
                                "ir_drop": power.worst_ir_drop},
                    runtime_proxy=signoff.runtime_proxy)
        )
