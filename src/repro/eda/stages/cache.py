"""Prefix-keyed stage caching: pay only for the changed suffix.

The whole-run :class:`~repro.core.parallel.ResultCache` hits only on
*exact* ``(design, options, seed)`` repeats.  Campaign moves, though,
mostly perturb downstream knobs — so the synth/floorplan/place prefix
is recomputed identically thousands of times.  A *stage prefix key*
hashes everything that can influence the pipeline state up to and
including one stage:

- the design fingerprint and entry kind (full flow vs. implement-only),
- for every stage of the prefix, in order: its name, its declared knob
  subset's values, and its derived step seeds.

Knobs a stage does not declare cannot change its output, so two jobs
that agree on a prefix's knob slices and seeds share that prefix's
state bit-for-bit — the cached :class:`PipelineState` snapshot can be
resumed from directly.

Snapshots are deep-copied on both ``put`` and ``get`` because later
stages mutate artifacts in place (the optimizer resizes netlist cells,
the refiner moves placements); ``copy.deepcopy`` of the whole state
preserves the ``placement.netlist is netlist`` aliasing signoff relies
on.

One process-global instance (:func:`configure_stage_cache` /
:func:`get_stage_cache`) serves :func:`run_flow_job_staged` so pool
workers — which receive jobs as picklable tuples — can share hits
across the jobs they execute without any cross-process traffic.
"""

from __future__ import annotations

import copy
import hashlib
import json
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Union

from repro.eda.flow import FlowOptions
from repro.eda.netlist import Netlist
from repro.eda.stages.base import PipelineState
from repro.eda.synthesis import DesignSpec


def stage_prefix_keys(
    design: Union[DesignSpec, Netlist], options: FlowOptions, seed: int
) -> List[str]:
    """One key per pipeline stage, each covering the prefix ending there."""
    # lazy imports: core.parallel.cache imports repro.eda.flow, and the
    # runner imports this module — both would cycle at import time
    from repro.core.parallel.cache import design_fingerprint
    from repro.eda.stages.runner import plan_stages

    kind, stages, stage_seeds = plan_stages(design, seed)
    fingerprint = design_fingerprint(design)
    prefix: List[Dict] = []
    keys: List[str] = []
    for stage, seeds in zip(stages, stage_seeds):
        prefix.append({
            "stage": stage.name,
            "knobs": stage.knob_values(options),
            "seeds": [int(s) for s in seeds],
        })
        payload = json.dumps(
            {"design": fingerprint, "entry": kind, "stages": prefix},
            sort_keys=True, default=float,
        )
        keys.append(hashlib.sha256(payload.encode()).hexdigest())
    return keys


class StageCache:
    """In-memory LRU of :class:`PipelineState` snapshots by prefix key.

    Thread-safe (one lock around the LRU and the counters); entries are
    deep-copied in both directions so callers can never mutate a cached
    snapshot.  ``hits``/``misses`` count probes per stage name — the
    campaign-level saved-work accounting instead travels with each job
    in its :class:`~repro.eda.stages.runner.StageReport`.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, PipelineState]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.puts: int = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str, stage_name: str) -> Optional[PipelineState]:
        with self._lock:
            state = self._entries.get(key)
            if state is None:
                self.misses[stage_name] = self.misses.get(stage_name, 0) + 1
                return None
            self._entries.move_to_end(key)
            self.hits[stage_name] = self.hits.get(stage_name, 0) + 1
            return copy.deepcopy(state)

    def put(self, key: str, stage_name: str, state: PipelineState) -> None:
        snapshot = copy.deepcopy(state)
        with self._lock:
            self._entries[key] = snapshot
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            self.puts += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits.clear()
            self.misses.clear()
            self.puts = 0


_STAGE_CACHE: Optional[StageCache] = None
_STAGE_CACHE_LOCK = threading.Lock()


def configure_stage_cache(max_entries: int = 64) -> StageCache:
    """(Re)create the process-global stage cache.

    Called by the executor at construction (serial mode) or in each
    worker's initializer (pool mode).  Reconfiguring drops prior
    entries — harmless for correctness (entries are only ever reused,
    never required) and it keeps hit accounting per campaign.
    """
    global _STAGE_CACHE
    with _STAGE_CACHE_LOCK:
        _STAGE_CACHE = StageCache(max_entries=max_entries)
        return _STAGE_CACHE


def get_stage_cache() -> Optional[StageCache]:
    """The process-global stage cache, or None when never configured."""
    return _STAGE_CACHE
