"""Global-routing stage: placement -> congestion map."""

from __future__ import annotations

from typing import Sequence

from repro.eda.flow import FlowOptions, StepLog
from repro.eda.routing import GlobalRouter
from repro.eda.stages.base import FlowStage, PipelineState


class GrouteStage(FlowStage):
    name = "groute"
    knobs = ("router_tracks_per_um",)
    n_seeds = 1

    def run(
        self,
        state: PipelineState,
        options: FlowOptions,
        seeds: Sequence[int],
        stop_callback=None,
    ) -> None:
        groute = GlobalRouter(tracks_per_um=options.router_tracks_per_um).route(
            state.placement, seeds[0]
        )
        state.groute = groute
        state.congestion = groute.congestion_map()
        state.result.logs.append(
            StepLog("groute", {"overflow": groute.overflow,
                               "max_congestion": groute.max_congestion,
                               "wirelength": groute.wirelength},
                    runtime_proxy=groute.wirelength * 0.2)
        )
