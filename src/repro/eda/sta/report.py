"""Timing-report artifacts shared by every STA driver.

These are the *query results* of the kernel: per-endpoint slacks plus
the structural path features the correlation models consume.  They are
deliberately plain data — the propagation machinery lives in
:mod:`repro.eda.sta.graph` and the delay models in
:mod:`repro.eda.sta.policy` — so a report can be snapshotted, pickled
and compared bitwise across engines and propagation modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Default input slew at primary inputs (ps).
PI_SLEW = 20.0
#: Extra load (fF) a primary output must drive.
PO_LOAD = 2.0


@dataclass(frozen=True)
class Corner:
    """A PVT corner: multiplicative factors on delay and wire RC."""

    name: str
    delay_factor: float = 1.0
    wire_factor: float = 1.0

    def __post_init__(self):
        if self.delay_factor <= 0 or self.wire_factor <= 0:
            raise ValueError("corner factors must be positive")


TYPICAL = Corner("tt", 1.0, 1.0)
SLOW = Corner("ss", 1.18, 1.10)
FAST = Corner("ff", 0.85, 0.94)


@dataclass
class EndpointTiming:
    """Timing and structural features at one endpoint.

    Endpoints are DFF D pins (``kind='setup'``) or primary outputs
    (``kind='output'``).  ``features`` feeds the correlation models.
    """

    endpoint: str
    kind: str
    arrival: float
    required: float
    slack: float
    path_depth: int
    path_wire_delay: float
    path_cell_delay: float
    path_max_fanout: int
    path_slew: float
    hold_slack: float = float("inf")  # populated when check_hold=True

    @property
    def features(self) -> List[float]:
        return [
            self.arrival,
            float(self.path_depth),
            self.path_wire_delay,
            self.path_cell_delay,
            float(self.path_max_fanout),
            self.path_slew,
        ]

    FEATURE_NAMES = (
        "arrival",
        "path_depth",
        "path_wire_delay",
        "path_cell_delay",
        "path_max_fanout",
        "path_slew",
    )


@dataclass
class TimingReport:
    """Result of one STA query (a full run or an incremental re-query)."""

    engine: str
    corner: str
    clock_period: float
    endpoints: Dict[str, EndpointTiming] = field(default_factory=dict)
    paths: Dict[str, List[str]] = field(default_factory=dict)  # endpoint -> worst-path instances
    runtime_proxy: float = 0.0  # abstract work units ("cost" axis of Fig 8)

    @property
    def wns(self) -> float:
        """Worst negative slack (most negative endpoint slack; +inf if none)."""
        if not self.endpoints:
            return float("inf")
        return min(e.slack for e in self.endpoints.values())

    @property
    def tns(self) -> float:
        """Total negative slack (sum of negative endpoint slacks)."""
        return sum(min(0.0, e.slack) for e in self.endpoints.values())

    @property
    def n_violations(self) -> int:
        return sum(1 for e in self.endpoints.values() if e.slack < 0)

    @property
    def hold_wns(self) -> float:
        """Worst hold slack over setup endpoints (+inf when not checked)."""
        holds = [e.hold_slack for e in self.endpoints.values() if e.kind == "setup"]
        return min(holds) if holds else float("inf")

    @property
    def n_hold_violations(self) -> int:
        return sum(
            1
            for e in self.endpoints.values()
            if e.kind == "setup" and e.hold_slack < 0
        )

    def slack_of(self, endpoint: str) -> float:
        """Setup slack of one endpoint, by name (e.g. ``"ff3/D"``)."""
        try:
            return self.endpoints[endpoint].slack
        except KeyError:
            raise KeyError(
                f"endpoint {endpoint!r} is not in this {self.engine!r} report "
                f"at corner {self.corner!r} ({len(self.endpoints)} endpoints; "
                f"flop endpoints are named '<inst>/D', primary outputs "
                f"'<net>/PO')"
            ) from None

    def worst_endpoint(self) -> Optional[EndpointTiming]:
        """The endpoint with the minimum setup slack, or None if empty.

        Ties break deterministically toward the earlier endpoint in
        report order (flop endpoints in netlist order, then primary
        outputs), so ``worst_endpoint().slack`` is always the same
        float ``wns`` reports — consumers should call this instead of
        re-sorting the endpoint dict ad hoc.
        """
        worst: Optional[EndpointTiming] = None
        for ep in self.endpoints.values():
            if worst is None or ep.slack < worst.slack:
                worst = ep
        return worst
