"""Static timing analysis as a queryable kernel.

The package splits STA into three layers:

- :mod:`repro.eda.sta.report` — plain-data query results
  (:class:`TimingReport`, :class:`EndpointTiming`, corners);
- :mod:`repro.eda.sta.policy` — pluggable delay models
  (:class:`GraphDelayPolicy`, :class:`SignoffDelayPolicy`);
- :mod:`repro.eda.sta.graph` — the shared incremental kernel
  (:class:`TimingGraph`, :class:`TimingTopology`, :class:`StaStats`);
- :mod:`repro.eda.sta.engines` — the historical engine front-ends
  (:class:`GraphSTA`, :class:`SignoffSTA`), now thin drivers.

``repro.eda.timing`` remains as a compatibility façade re-exporting
the public names.
"""

from repro.eda.sta.engines import GraphSTA, SignoffSTA, _BaseSTA
from repro.eda.sta.graph import StaStats, TimingGraph, TimingTopology
from repro.eda.sta.policy import DelayPolicy, GraphDelayPolicy, SignoffDelayPolicy
from repro.eda.sta.report import (
    FAST,
    PI_SLEW,
    PO_LOAD,
    SLOW,
    TYPICAL,
    Corner,
    EndpointTiming,
    TimingReport,
)

__all__ = [
    "Corner",
    "DelayPolicy",
    "EndpointTiming",
    "FAST",
    "GraphDelayPolicy",
    "GraphSTA",
    "PI_SLEW",
    "PO_LOAD",
    "SLOW",
    "SignoffDelayPolicy",
    "SignoffSTA",
    "StaStats",
    "TYPICAL",
    "TimingGraph",
    "TimingTopology",
    "TimingReport",
    "_BaseSTA",
]
