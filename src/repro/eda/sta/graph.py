"""The incremental STA kernel: a levelized timing graph over a netlist.

:class:`TimingGraph` is the artifact the rest of the substrate queries
for timing.  It is constructed once from (netlist, placement,
congestion) plus a delay-model policy, propagates arrivals with
:meth:`TimingGraph.full_propagate`, and then answers *edits* with
:meth:`TimingGraph.update` — dirty-set invalidation that re-levels and
re-propagates only the forward fanout cones (and predecessor load
deltas) of the touched instances.  ``runtime_proxy`` is charged by the
nodes actually propagated, so the Fig-8 cost axis stays honest while
an optimizer loop queries timing incrementally.

Bit-identity with the historical full-run engines is a hard contract
(enforced against ``tests/eda/sta_reference.py``): every per-node
value is computed by the *same float expressions in the same order*
as the pre-refactor ``_BaseSTA.analyze``, and an incremental update
stops propagating exactly where recomputed ``(arrival, slew)`` values
are bitwise unchanged — recomputing a node whose inputs are bitwise
identical reproduces its old value bitwise, so pruned cones cannot
diverge from a from-scratch run.

Invalidation rules (see docs/substrate.md for the narrative version):

- **cell swap** (``replace_cell``): dirty = the instance itself plus
  the drivers of its input nets (their output load changed through the
  new input capacitance).  Net lengths are untouched.
- **buffer splice** (``insert_buffer``): the spliced net's length and
  load both change, so dirty = the new buffer, the spliced net's
  driver, and *all* of its combinational sinks (their input wire
  delays see the new length); the buffer is levelized into the graph
  and downstream levels are raised along the forward cone only.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.eda.library import DFF_CLK_TO_Q, DFF_HOLD, DFF_SETUP
from repro.eda.netlist import Netlist
from repro.eda.placement import Placement
from repro.eda.sta.policy import DelayPolicy
from repro.eda.sta.report import PI_SLEW, PO_LOAD, EndpointTiming, TimingReport


@dataclass
class StaStats:
    """Work accounting for one kernel (full vs incremental propagation)."""

    full_propagates: int = 0
    incremental_updates: int = 0
    nodes_propagated: int = 0  # nodes recomputed by incremental updates
    proxy_executed: float = 0.0  # runtime_proxy actually charged
    proxy_full_equivalent: float = 0.0  # what full re-runs would have cost

    @property
    def proxy_saved(self) -> float:
        """Work units avoided by propagating dirty cones instead of everything."""
        return max(0.0, self.proxy_full_equivalent - self.proxy_executed)

    def add(self, other: "StaStats") -> None:
        self.full_propagates += other.full_propagates
        self.incremental_updates += other.incremental_updates
        self.nodes_propagated += other.nodes_propagated
        self.proxy_executed += other.proxy_executed
        self.proxy_full_equivalent += other.proxy_full_equivalent

    def copy(self) -> "StaStats":
        return StaStats(
            self.full_propagates,
            self.incremental_updates,
            self.nodes_propagated,
            self.proxy_executed,
            self.proxy_full_equivalent,
        )


class TimingTopology:
    """The structural view shared by every corner/policy over one design:
    topological order, levels, and net lengths.  Building it is the
    part of STA that does *not* depend on the delay model, so MMMC
    analysis constructs it once and runs per-view policies over it."""

    def __init__(self, netlist: Netlist, placement: Placement):
        self.netlist = netlist
        self.placement = placement
        self.order: List[str] = []
        self.level: Dict[str, int] = {}
        self.net_len: Dict[str, float] = {}
        self.structure_version: int = -1
        self.rebuild()

    @property
    def stale(self) -> bool:
        return self.structure_version != self.netlist.structure_version

    def rebuild(self) -> None:
        netlist = self.netlist
        self.order = netlist.combinational_order()
        net_len: Dict[str, float] = {}
        for net_name in netlist.nets:
            if net_name == netlist.clock_net:
                continue
            net_len[net_name] = self.placement.net_length(net_name)
        self.net_len = net_len
        level: Dict[str, int] = {}
        for name in self.order:
            inst = netlist.instances[name]
            best = 0
            for net_name in inst.input_nets:
                driver = netlist.nets[net_name].driver
                if driver is not None and not netlist.instances[driver].cell.is_sequential:
                    best = max(best, level[driver])
            level[name] = best + 1
        self.level = level
        self.structure_version = netlist.structure_version


class TimingGraph:
    """Levelized arrival/slew state for one (netlist, placement, policy).

    ``full_propagate()`` computes every node exactly as the historical
    engines did; ``update(changed)`` recomputes only the dirty cone;
    ``report(clock_period)`` materializes endpoint slacks and charges
    the policy's runtime proxy for the operations since the last query.
    """

    def __init__(
        self,
        netlist: Netlist,
        placement: Placement,
        policy: DelayPolicy,
        skews: Optional[Dict[str, float]] = None,
        congestion: Optional[np.ndarray] = None,
        check_hold: bool = False,
        topology: Optional[TimingTopology] = None,
    ):
        self.netlist = netlist
        self.placement = placement
        self.policy = policy
        self.skews = skews or {}
        self.congestion = congestion
        self.check_hold = check_hold
        if (
            topology is None
            or topology.netlist is not netlist
            or topology.placement is not placement
        ):
            topology = TimingTopology(netlist, placement)
        self.topology = topology
        self.stats = StaStats()
        # per-net propagation state
        self._net_load: Dict[str, float] = {}
        self._arrival: Dict[str, float] = {}
        self._slew: Dict[str, float] = {}
        self._pred: Dict[str, Optional[str]] = {}
        self._arrival_min: Dict[str, float] = {}
        self._known: set = set()  # instance names levelized into the graph
        self._propagated = False
        self._ops_pending = 0  # propagation ops since the last report()
        self._full_ops = 0  # ops one from-scratch propagation costs today

    # ------------------------------------------------------------------
    # per-node recomputation: these are the *only* places arrival/slew
    # values are produced, shared verbatim between full and incremental
    # propagation — that sharing is what makes bit-identity structural
    # rather than coincidental.
    def _congestion_at(self, net_name: str) -> float:
        if self.congestion is None:
            return 0.0
        ny, nx = self.congestion.shape
        placement = self.placement
        fp = placement.floorplan
        net = placement.netlist.nets.get(net_name)
        if net is None or net.driver is None:
            return 0.0
        x, y = placement.positions[net.driver]
        i = min(nx - 1, max(0, int(x / fp.width * nx)))
        j = min(ny - 1, max(0, int(y / fp.height * ny)))
        return float(self.congestion[j, i])

    def _net_load_of(self, net_name: str) -> float:
        netlist = self.netlist
        net = netlist.nets[net_name]
        load = sum(netlist.instances[s].cell.input_cap for s, _ in net.sinks)
        if net_name in netlist.primary_outputs:
            load += PO_LOAD
        load += (
            netlist.library.wire_c_per_um
            * self.topology.net_len[net_name]
            * self.policy.corner.wire_factor
        )
        return load

    def _compute_seq(self, inst) -> int:
        policy = self.policy
        out = inst.output_net
        launch = self.skews.get(inst.name, 0.0)
        q_delay = DFF_CLK_TO_Q * policy.corner.delay_factor * policy.stage_derate()
        load = self._net_load.get(out, 0.0)
        cell = inst.cell
        self._arrival[out] = (
            launch + q_delay + cell.drive_resistance * load * policy.corner.delay_factor
        )
        self._slew[out] = cell.output_slew(load)
        self._pred[out] = None
        return 1

    def _compute_comb(self, inst) -> int:
        policy = self.policy
        netlist = self.netlist
        lib = netlist.library
        net_len = self.topology.net_len
        out = inst.output_net
        load = self._net_load.get(out, 0.0)
        cell = inst.cell
        best_arr = -np.inf
        best_net = None
        in_slews = []
        ops = 0
        for net_name in inst.input_nets:
            if net_name == netlist.clock_net:
                continue
            a_in = self._arrival.get(net_name, 0.0)
            s_in = self._slew.get(net_name, PI_SLEW)
            in_slews.append(s_in)
            w_delay = policy.wire_delay(net_len.get(net_name, 0.0), cell.input_cap, lib)
            w_delay += policy.si_bump(
                net_len.get(net_name, 0.0), self._congestion_at(net_name)
            )
            cand = a_in + w_delay
            ops += 1
            if cand > best_arr:
                best_arr = cand
                best_net = net_name
        s_in = policy.merge_slew(in_slews) if in_slews else PI_SLEW
        gate_delay = cell.delay(load, s_in) * policy.corner.delay_factor * policy.stage_derate()
        self._arrival[out] = best_arr + gate_delay
        self._slew[out] = cell.output_slew(load)
        self._pred[out] = best_net
        return ops

    def _compute_seq_min(self, inst) -> None:
        policy = self.policy
        out = inst.output_net
        launch = self.skews.get(inst.name, 0.0)
        load = self._net_load.get(out, 0.0)
        self._arrival_min[out] = (
            launch
            + (DFF_CLK_TO_Q + inst.cell.drive_resistance * load)
            * policy.corner.delay_factor
            * policy.early_derate()
        )

    def _compute_comb_min(self, inst) -> int:
        policy = self.policy
        netlist = self.netlist
        lib = netlist.library
        net_len = self.topology.net_len
        early = policy.early_derate()
        out = inst.output_net
        load = self._net_load.get(out, 0.0)
        cell = inst.cell
        fastest = np.inf
        for net_name in inst.input_nets:
            if net_name == netlist.clock_net:
                continue
            a_in = self._arrival_min.get(net_name, 0.0)
            w_delay = policy.wire_delay(net_len.get(net_name, 0.0), cell.input_cap, lib)
            fastest = min(fastest, a_in + w_delay * early)
        if np.isinf(fastest):
            fastest = 0.0
        gate_delay = cell.delay(load, PI_SLEW) * policy.corner.delay_factor * early
        self._arrival_min[out] = fastest + gate_delay
        return 1

    def _node_state(self, out_net: str) -> Tuple:
        return (
            self._arrival.get(out_net),
            self._slew.get(out_net),
            self._arrival_min.get(out_net),
        )

    # ------------------------------------------------------------------
    def full_propagate(self) -> int:
        """Propagate every node from scratch; returns propagation ops.

        Visits nets, startpoints and combinational instances in exactly
        the historical ``analyze`` order.  Also (re)builds the topology
        if the netlist's ``structure_version`` moved since it was built.
        """
        if self.topology.stale:
            self.topology.rebuild()
        netlist = self.netlist
        topo = self.topology
        ops = 0

        self._net_load = {}
        for net_name in netlist.nets:
            if net_name == netlist.clock_net:
                continue
            self._net_load[net_name] = self._net_load_of(net_name)

        self._arrival = {}
        self._slew = {}
        self._pred = {}
        self._arrival_min = {}
        for pi in netlist.primary_inputs:
            if pi == netlist.clock_net:
                continue
            self._arrival[pi] = 0.0
            self._slew[pi] = PI_SLEW
            self._pred[pi] = None
        for inst in netlist.sequential_instances():
            ops += self._compute_seq(inst)
        for name in topo.order:
            ops += self._compute_comb(netlist.instances[name])

        if self.check_hold:
            for pi in netlist.primary_inputs:
                if pi != netlist.clock_net:
                    self._arrival_min[pi] = 0.0
            for inst in netlist.sequential_instances():
                self._compute_seq_min(inst)
            for name in topo.order:
                ops += self._compute_comb_min(netlist.instances[name])

        self._known = set(netlist.instances)
        self._propagated = True
        self._full_ops = ops
        self._ops_pending = ops
        self.stats.full_propagates += 1
        return ops

    # ------------------------------------------------------------------
    def _levelize_new(self, new_names: List[str]) -> None:
        """Levelize instances spliced in since the last propagation and
        raise downstream levels along their forward cones."""
        netlist = self.netlist
        level = self.topology.level
        pending = list(new_names)
        while pending:
            progressed = []
            stuck = []
            for name in pending:
                inst = netlist.instances[name]
                if inst.cell.is_sequential:
                    progressed.append(name)
                    continue
                best = 0
                ok = True
                for net_name in inst.input_nets:
                    if net_name == netlist.clock_net:
                        continue
                    driver = netlist.nets[net_name].driver
                    if driver is None or netlist.instances[driver].cell.is_sequential:
                        continue
                    if driver not in level:
                        ok = False
                        break
                    best = max(best, level[driver])
                if not ok:
                    stuck.append(name)
                    continue
                level[name] = best + 1
                progressed.append(name)
            if not progressed:
                raise RuntimeError(
                    f"cannot levelize new instances {stuck}: "
                    "combinational cycle or dangling driver"
                )
            pending = stuck
        # raise levels forward so the worklist heap stays topological
        queue = [n for n in new_names if n in level]
        while queue:
            name = queue.pop(0)
            base = level[name]
            out = netlist.instances[name].output_net
            for sink_name, _ in netlist.nets[out].sinks:
                sink = netlist.instances[sink_name]
                if sink.cell.is_sequential:
                    continue
                if level[sink_name] <= base:
                    level[sink_name] = base + 1
                    queue.append(sink_name)

    def update(self, changed: Iterable[str]) -> int:
        """Re-propagate the forward cones of ``changed`` instances.

        ``changed`` names instances whose cell was swapped
        (``replace_cell``) or that were newly spliced in
        (``insert_buffer``).  Returns the number of nodes recomputed;
        the corresponding ops are charged to the next ``report()``.
        Propagation of a cone stops at nodes whose recomputed
        ``(arrival, slew)`` state is bitwise unchanged.
        """
        if not self._propagated:
            raise RuntimeError("full_propagate() must run before update()")
        netlist = self.netlist
        names = sorted(set(changed))
        new_names = [n for n in names if n not in self._known]
        if new_names:
            self._levelize_new(new_names)

        # dirty sets as insertion-ordered dicts (deterministic iteration)
        dirty_nets: Dict[str, None] = {}
        dirty_seq: Dict[str, None] = {}
        dirty_comb: Dict[str, None] = {}

        def mark(inst_name: str) -> None:
            if netlist.instances[inst_name].cell.is_sequential:
                dirty_seq[inst_name] = None
            else:
                dirty_comb[inst_name] = None

        for name in names:
            inst = netlist.instances[name]
            mark(name)
            if name in self._known:
                # cell swap: input caps changed -> predecessor loads change
                for net_name in inst.input_nets:
                    if net_name == netlist.clock_net:
                        continue
                    dirty_nets[net_name] = None
                    driver = netlist.nets[net_name].driver
                    if driver is not None:
                        mark(driver)
            else:
                # splice: connected nets change length *and* load, which
                # moves every sink's input wire delay
                touched = [
                    n for n in inst.input_nets if n != netlist.clock_net
                ] + [inst.output_net]
                for net_name in touched:
                    self.topology.net_len[net_name] = self.placement.net_length(net_name)
                    dirty_nets[net_name] = None
                    net = netlist.nets[net_name]
                    if net.driver is not None:
                        mark(net.driver)
                    for sink_name, _ in net.sinks:
                        if not netlist.instances[sink_name].cell.is_sequential:
                            mark(sink_name)
                self._known.add(name)
                # keep the full-run cost model current: a from-scratch
                # propagation now also visits this instance
                if inst.cell.is_sequential:
                    self._full_ops += 1
                else:
                    self._full_ops += sum(
                        1 for n in inst.input_nets if n != netlist.clock_net
                    )
                    if self.check_hold:
                        self._full_ops += 1

        for net_name in dirty_nets:
            self._net_load[net_name] = self._net_load_of(net_name)

        level = self.topology.level
        ops = 0
        nodes = 0
        heap: List[Tuple[int, str]] = []
        scheduled = set()
        processed = set()

        def schedule(inst_name: str) -> None:
            if inst_name in scheduled or inst_name in processed:
                return
            scheduled.add(inst_name)
            heapq.heappush(heap, (level[inst_name], inst_name))

        def fanout_changed(out_net: str) -> None:
            for sink_name, _ in netlist.nets[out_net].sinks:
                if not netlist.instances[sink_name].cell.is_sequential:
                    schedule(sink_name)

        for name in dirty_seq:
            inst = netlist.instances[name]
            before = self._node_state(inst.output_net)
            ops += self._compute_seq(inst)
            if self.check_hold:
                self._compute_seq_min(inst)
            nodes += 1
            if self._node_state(inst.output_net) != before:
                fanout_changed(inst.output_net)

        for name in dirty_comb:
            schedule(name)
        while heap:
            _, name = heapq.heappop(heap)
            scheduled.discard(name)
            processed.add(name)
            inst = netlist.instances[name]
            before = self._node_state(inst.output_net)
            ops += self._compute_comb(inst)
            if self.check_hold:
                ops += self._compute_comb_min(inst)
            nodes += 1
            if self._node_state(inst.output_net) != before:
                fanout_changed(inst.output_net)

        self._ops_pending += ops
        self.stats.incremental_updates += 1
        self.stats.nodes_propagated += nodes
        return nodes

    # ------------------------------------------------------------------
    def report(self, clock_period: float) -> TimingReport:
        """Materialize endpoint slacks from the current propagation state.

        Charges the policy's runtime proxy for the propagation ops
        accumulated since the last report plus the per-endpoint work,
        then lets the policy post-process (PBA).
        """
        if clock_period <= 0:
            raise ValueError("clock period must be positive")
        if not self._propagated:
            raise RuntimeError("full_propagate() must run before report()")
        netlist = self.netlist
        lib = netlist.library
        policy = self.policy
        corner = policy.corner
        net_len = self.topology.net_len
        skews = self.skews
        arrival = self._arrival
        arrival_min = self._arrival_min
        slew = self._slew
        pred = self._pred
        ops = self._ops_pending

        report = TimingReport(
            engine=policy.engine_name, corner=corner.name, clock_period=clock_period
        )

        def trace(net_name: str) -> Tuple[int, float, float, int, List[str]]:
            """Walk worst path backwards: (depth, wire_delay, cell_delay, max_fanout, instances)."""
            depth = 0
            wire_total = 0.0
            fan_max = 0
            insts: List[str] = []
            cur: Optional[str] = net_name
            visited = 0
            while cur is not None and visited < 10_000:
                visited += 1
                fan_max = max(fan_max, netlist.net_fanout(cur))
                wire_total += net_len.get(cur, 0.0) * lib.wire_r_per_um
                driver = netlist.nets[cur].driver
                if driver is None or netlist.instances[driver].cell.is_sequential:
                    break
                insts.append(driver)
                depth += 1
                cur = pred.get(cur)
            return depth, wire_total, 0.0, fan_max, insts

        # endpoints: DFF D inputs
        for inst in netlist.sequential_instances():
            d_net = inst.input_nets[0]
            a = arrival.get(d_net, 0.0)
            w_delay = policy.wire_delay(net_len.get(d_net, 0.0), inst.cell.input_cap, lib)
            w_delay += policy.si_bump(net_len.get(d_net, 0.0), self._congestion_at(d_net))
            a = a + w_delay
            capture = skews.get(inst.name, 0.0)
            required = clock_period + capture - DFF_SETUP * corner.delay_factor
            hold_slack = float("inf")
            if self.check_hold:
                a_min = arrival_min.get(d_net, 0.0)
                w_min = policy.wire_delay(
                    net_len.get(d_net, 0.0), inst.cell.input_cap, lib
                ) * policy.early_derate()
                hold_required = capture + DFF_HOLD * corner.delay_factor
                hold_slack = (a_min + w_min) - hold_required
            depth, wire_total, _, fan_max, path_insts = trace(d_net)
            ep = EndpointTiming(
                endpoint=f"{inst.name}/D",
                kind="setup",
                arrival=a,
                required=required,
                slack=required - a,
                path_depth=depth,
                path_wire_delay=wire_total,
                path_cell_delay=a - wire_total,
                path_max_fanout=fan_max,
                path_slew=slew.get(d_net, PI_SLEW),
                hold_slack=hold_slack,
            )
            report.endpoints[ep.endpoint] = ep
            report.paths[ep.endpoint] = path_insts
            ops += 2
        # endpoints: primary outputs
        for po in netlist.primary_outputs:
            a = arrival.get(po, 0.0)
            depth, wire_total, _, fan_max, path_insts = trace(po)
            ep = EndpointTiming(
                endpoint=f"{po}/PO",
                kind="output",
                arrival=a,
                required=clock_period,
                slack=clock_period - a,
                path_depth=depth,
                path_wire_delay=wire_total,
                path_cell_delay=a - wire_total,
                path_max_fanout=fan_max,
                path_slew=slew.get(po, PI_SLEW),
            )
            report.endpoints[ep.endpoint] = ep
            report.paths[ep.endpoint] = path_insts
            ops += 2

        report.runtime_proxy = policy.runtime_proxy(ops)
        report = policy.finalize_report(report)

        endpoint_ops = 2 * len(report.endpoints)
        self.stats.proxy_executed += report.runtime_proxy
        self.stats.proxy_full_equivalent += policy.full_runtime_proxy(
            self._full_ops + endpoint_ops
        )
        self._ops_pending = 0
        return report
