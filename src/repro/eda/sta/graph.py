"""The incremental STA kernel: a levelized timing graph over a netlist.

:class:`TimingGraph` is the artifact the rest of the substrate queries
for timing.  It is constructed once from (netlist, placement,
congestion) plus a delay-model policy, propagates arrivals with
:meth:`TimingGraph.full_propagate`, and then answers *edits* with
:meth:`TimingGraph.update` — dirty-set invalidation that re-levels and
re-propagates only the forward fanout cones (and predecessor load
deltas) of the touched instances.  ``runtime_proxy`` is charged by the
nodes actually propagated, so the Fig-8 cost axis stays honest while
an optimizer loop queries timing incrementally.

Full propagation is vectorized: the topology exposes a struct-of-arrays
view (:class:`_TopoSoA` — per-net rows, a CSR of combinational fanin
edges sorted by level, sink segments for load accumulation) and
``full_propagate`` evaluates whole levels at a time with numpy segment
reductions.  Dirty-cone ``update`` stays scalar — cones are small, and
the scalar per-node methods remain the single definition the vector
kernel must match.

Bit-identity with the historical full-run engines is a hard contract
(enforced against ``tests/eda/sta_reference.py``): every per-node
value is computed by the *same float expressions in the same order*
as the pre-refactor ``_BaseSTA.analyze``.  The vectorized kernel keeps
that contract because

- ``np.bincount``/``np.add.reduceat`` accumulate strictly left-to-right
  (no pairwise summation), matching the Python ``sum`` over each net's
  sinks and the per-node input loops;
- per-level elementwise expressions are written with the same
  association order as the scalar methods, so each float operation is
  the identical IEEE-754 operation;
- level-by-level evaluation is equivalent to topological-order
  evaluation (every input of a level-L node is produced at a lower
  level, by a sequential output, or at a primary input).

An incremental update stops propagating exactly where recomputed
``(arrival, slew)`` values are bitwise unchanged — recomputing a node
whose inputs are bitwise identical reproduces its old value bitwise,
so pruned cones cannot diverge from a from-scratch run.

Invalidation rules (see docs/substrate.md for the narrative version):

- **cell swap** (``replace_cell``): dirty = the instance itself plus
  the drivers of its input nets (their output load changed through the
  new input capacitance).  Net lengths are untouched.
- **buffer splice** (``insert_buffer``): the spliced net's length and
  load both change, so dirty = the new buffer, the spliced net's
  driver, and *all* of its combinational sinks (their input wire
  delays see the new length); the buffer is levelized into the graph
  and downstream levels are raised along the forward cone only.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.eda.grid import bin_index, bin_indices
from repro.eda.library import DFF_CLK_TO_Q, DFF_HOLD, DFF_SETUP
from repro.eda.netlist import Netlist
from repro.eda.placement import Placement
from repro.eda.sta.policy import DelayPolicy
from repro.eda.sta.report import PI_SLEW, PO_LOAD, EndpointTiming, TimingReport


@dataclass
class StaStats:
    """Work accounting for one kernel (full vs incremental propagation)."""

    full_propagates: int = 0
    incremental_updates: int = 0
    nodes_propagated: int = 0  # nodes recomputed by incremental updates
    proxy_executed: float = 0.0  # runtime_proxy actually charged
    proxy_full_equivalent: float = 0.0  # what full re-runs would have cost

    @property
    def proxy_saved(self) -> float:
        """Work units avoided by propagating dirty cones instead of everything."""
        return max(0.0, self.proxy_full_equivalent - self.proxy_executed)

    def add(self, other: "StaStats") -> None:
        self.full_propagates += other.full_propagates
        self.incremental_updates += other.incremental_updates
        self.nodes_propagated += other.nodes_propagated
        self.proxy_executed += other.proxy_executed
        self.proxy_full_equivalent += other.proxy_full_equivalent

    def copy(self) -> "StaStats":
        return StaStats(
            self.full_propagates,
            self.incremental_updates,
            self.nodes_propagated,
            self.proxy_executed,
            self.proxy_full_equivalent,
        )


class _NetIndex:
    """Append-only net-name <-> row mapping shared by topology and state.

    Rows are never reassigned: a rebuild only appends names that are
    new since the last sync, so array state indexed by row stays valid
    across topology rebuilds and buffer splices.
    """

    __slots__ = ("ids", "names")

    def __init__(self):
        self.ids: Dict[str, int] = {}
        self.names: List[str] = []

    def __len__(self) -> int:
        return len(self.names)

    def sync(self, net_names: Iterable[str]) -> None:
        ids = self.ids
        names = self.names
        for name in net_names:
            if name not in ids:
                ids[name] = len(names)
                names.append(name)

    def add(self, name: str) -> int:
        row = self.ids.get(name)
        if row is None:
            row = len(self.names)
            self.ids[name] = row
            self.names.append(name)
        return row


class _NetValueMap:
    """``{net name: float}`` façade over a flat per-net value array.

    Implements the dict surface the scalar compute methods and
    ``report()`` use (``get``/``[]``/``in``/iteration), with presence
    tracked in a boolean mask so absent keys behave exactly like
    missing dict entries.  Rows come from a shared :class:`_NetIndex`;
    writes to nets spliced in after construction grow the backing
    arrays on demand.
    """

    __slots__ = ("_index", "values", "mask", "fill")

    def __init__(
        self,
        index: _NetIndex,
        fill: float = 0.0,
        values: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ):
        self._index = index
        self.fill = fill
        n = len(index)
        self.values = np.full(n, fill, dtype=float) if values is None else values
        self.mask = np.zeros(n, dtype=bool) if mask is None else mask

    def _grow(self) -> None:
        n = len(self._index)
        old = self.values.shape[0]
        size = max(n, 2 * old, 8)
        values = np.full(size, self.fill, dtype=float)
        values[:old] = self.values
        mask = np.zeros(size, dtype=bool)
        mask[:old] = self.mask[:old]
        self.values = values
        self.mask = mask

    def __getitem__(self, key: str) -> float:
        row = self._index.ids.get(key)
        if row is None or row >= self.values.shape[0] or not self.mask[row]:
            raise KeyError(key)
        return self.values.item(row)

    def get(self, key: str, default=None):
        row = self._index.ids.get(key)
        if row is None or row >= self.values.shape[0] or not self.mask[row]:
            return default
        return self.values.item(row)

    def __setitem__(self, key: str, value: float) -> None:
        row = self._index.add(key)
        if row >= self.values.shape[0]:
            self._grow()
        self.values[row] = value
        self.mask[row] = True

    def __delitem__(self, key: str) -> None:
        row = self._index.ids.get(key)
        if row is None or row >= self.values.shape[0] or not self.mask[row]:
            raise KeyError(key)
        self.mask[row] = False

    def __contains__(self, key: str) -> bool:
        row = self._index.ids.get(key)
        return row is not None and row < self.values.shape[0] and bool(self.mask[row])

    def __iter__(self) -> Iterator[str]:
        names = self._index.names
        for row in range(min(len(names), self.values.shape[0])):
            if self.mask[row]:
                yield names[row]

    def __len__(self) -> int:
        return int(self.mask.sum())

    def items(self):
        for key in self:
            yield key, self.values.item(self._index.ids[key])


class _NetPredMap:
    """``{net name: Optional[net name]}`` façade over a per-net int array.

    Row value ``-1`` encodes an explicit ``None`` entry (startpoints);
    presence is tracked separately in ``mask`` like :class:`_NetValueMap`.
    """

    __slots__ = ("_index", "rows", "mask")

    def __init__(
        self,
        index: _NetIndex,
        rows: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ):
        self._index = index
        n = len(index)
        self.rows = np.full(n, -1, dtype=np.int64) if rows is None else rows
        self.mask = np.zeros(n, dtype=bool) if mask is None else mask

    def _grow(self) -> None:
        n = len(self._index)
        old = self.rows.shape[0]
        size = max(n, 2 * old, 8)
        rows = np.full(size, -1, dtype=np.int64)
        rows[:old] = self.rows
        mask = np.zeros(size, dtype=bool)
        mask[:old] = self.mask[:old]
        self.rows = rows
        self.mask = mask

    def _decode(self, row: int) -> Optional[str]:
        value = self.rows.item(row)
        return None if value < 0 else self._index.names[value]

    def __getitem__(self, key: str) -> Optional[str]:
        row = self._index.ids.get(key)
        if row is None or row >= self.rows.shape[0] or not self.mask[row]:
            raise KeyError(key)
        return self._decode(row)

    def get(self, key: str, default=None):
        row = self._index.ids.get(key)
        if row is None or row >= self.rows.shape[0] or not self.mask[row]:
            return default
        return self._decode(row)

    def __setitem__(self, key: str, value: Optional[str]) -> None:
        row = self._index.add(key)
        if row >= self.rows.shape[0]:
            self._grow()
        self.rows[row] = -1 if value is None else self._index.add(value)
        self.mask[row] = True

    def __delitem__(self, key: str) -> None:
        row = self._index.ids.get(key)
        if row is None or row >= self.rows.shape[0] or not self.mask[row]:
            raise KeyError(key)
        self.mask[row] = False

    def __contains__(self, key: str) -> bool:
        row = self._index.ids.get(key)
        return row is not None and row < self.rows.shape[0] and bool(self.mask[row])

    def __iter__(self) -> Iterator[str]:
        names = self._index.names
        for row in range(min(len(names), self.rows.shape[0])):
            if self.mask[row]:
                yield names[row]

    def items(self) -> Iterator[Tuple[str, Optional[str]]]:
        names = self._index.names
        for row in range(min(len(names), self.rows.shape[0])):
            if self.mask[row]:
                yield names[row], self._decode(row)

    def __len__(self) -> int:
        return int(self.mask.sum())


@dataclass
class _LevelSegment:
    """One level's slice of the level-sorted combinational node arrays."""

    lo: int  # node range [lo, hi) into the comb_* arrays
    hi: int
    elo: int  # edge range [elo, ehi) into fanin_src
    ehi: int
    rel_starts: np.ndarray  # reduceat starts, relative to elo (non-empty nodes)
    ne_offsets: np.ndarray  # node offsets (relative to lo) with >= 1 fanin edge
    ne_counts: np.ndarray  # fanin edge counts of those nodes


@dataclass
class _TopoSoA:
    """Struct-of-arrays view of one topology for the vectorized kernel.

    Everything here is *structural* — derived from connectivity and
    levels only — so it is rebuilt with the topology and shared by
    every corner/policy over the design.  Electrical values (cell
    attributes, net lengths, skews, congestion) are gathered per
    propagation because cell swaps don't bump ``structure_version``.
    """

    n_nets: int
    clock_row: int  # row of the clock net, or -1
    # load accumulation: one entry per (non-clock net, sink pin), in
    # net order then sink order — the accumulation order of the scalar
    # per-net Python sum
    sink_net_rows: np.ndarray
    sink_inst_rows: np.ndarray
    po_rows: np.ndarray  # rows of primary-output nets
    net_driver_rows: np.ndarray  # driver instance position per net, -1 for PIs
    # sequential startpoints, in netlist instance order
    seq_inst_rows: np.ndarray
    seq_out_rows: np.ndarray
    seq_names: List[str]
    # combinational nodes, stably sorted by level; fanin CSR excludes
    # clock-net inputs but preserves each node's input-pin order
    comb_inst_rows: np.ndarray
    comb_out_rows: np.ndarray
    fanin_ptr: np.ndarray
    fanin_src: np.ndarray
    # global non-empty fanin segments (for arrival-independent merges)
    ne_node_offsets: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))
    ne_starts: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))
    ne_counts: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))
    levels: List[_LevelSegment] = field(default_factory=list)

    @property
    def n_comb(self) -> int:
        return self.comb_out_rows.shape[0]

    @property
    def n_comb_edges(self) -> int:
        return self.fanin_src.shape[0]


class TimingTopology:
    """The structural view shared by every corner/policy over one design:
    topological order, levels, net lengths, and the struct-of-arrays
    index view the vectorized kernel consumes.  Building it is the
    part of STA that does *not* depend on the delay model, so MMMC
    analysis constructs it once and runs per-view policies over it."""

    def __init__(self, netlist: Netlist, placement: Placement):
        self.netlist = netlist
        self.placement = placement
        self.order: List[str] = []
        self.level: Dict[str, int] = {}
        self.net_len: Dict[str, float] = {}
        self.structure_version: int = -1
        self.net_index = _NetIndex()
        self._soa: Optional[_TopoSoA] = None
        self.rebuild()

    @property
    def stale(self) -> bool:
        return self.structure_version != self.netlist.structure_version

    def rebuild(self) -> None:
        netlist = self.netlist
        self.order = netlist.combinational_order()
        net_len: Dict[str, float] = {}
        for net_name in netlist.nets:
            if net_name == netlist.clock_net:
                continue
            net_len[net_name] = self.placement.net_length(net_name)
        self.net_len = net_len
        level: Dict[str, int] = {}
        for name in self.order:
            inst = netlist.instances[name]
            best = 0
            for net_name in inst.input_nets:
                driver = netlist.nets[net_name].driver
                if driver is not None and not netlist.instances[driver].cell.is_sequential:
                    best = max(best, level[driver])
            level[name] = best + 1
        self.level = level
        self.net_index.sync(netlist.nets)
        self._soa = None  # rebuilt lazily on the next vectorized query
        self.structure_version = netlist.structure_version

    @property
    def soa(self) -> _TopoSoA:
        """The struct-of-arrays view for the current structure (lazy)."""
        if self._soa is None:
            self._soa = self._build_soa()
        return self._soa

    def _build_soa(self) -> _TopoSoA:
        netlist = self.netlist
        ids = self.net_index.ids
        clock = netlist.clock_net
        n_nets = len(self.net_index)
        inst_pos = {name: i for i, name in enumerate(netlist.instances)}

        sink_net_rows: List[int] = []
        sink_inst_rows: List[int] = []
        net_driver_rows = np.full(n_nets, -1, dtype=np.intp)
        for net_name, net in netlist.nets.items():
            row = ids[net_name]
            if net.driver is not None:
                net_driver_rows[row] = inst_pos[net.driver]
            if net_name == clock:
                continue
            for sink_name, _pin in net.sinks:
                sink_net_rows.append(row)
                sink_inst_rows.append(inst_pos[sink_name])
        po_rows = np.array(
            [ids[n] for n in netlist.primary_outputs if n != clock], dtype=np.intp
        )

        seq_inst_rows: List[int] = []
        seq_out_rows: List[int] = []
        seq_names: List[str] = []
        for i, inst in enumerate(netlist.instances.values()):
            if inst.cell.is_sequential:
                seq_inst_rows.append(i)
                seq_out_rows.append(ids[inst.output_net])
                seq_names.append(inst.name)

        # combinational nodes, stably sorted by level so each level is
        # one contiguous slice; within a level the topological order is
        # preserved (irrelevant for values — every input of a level-L
        # node is produced below level L — but deterministic)
        order = self.order
        lv = np.array([self.level[name] for name in order], dtype=np.intp)
        perm = np.argsort(lv, kind="stable")
        comb_inst_rows = np.empty(len(order), dtype=np.intp)
        comb_out_rows = np.empty(len(order), dtype=np.intp)
        fanin_src: List[int] = []
        ptr = np.zeros(len(order) + 1, dtype=np.intp)
        for k, j in enumerate(perm):
            inst = netlist.instances[order[j]]
            comb_inst_rows[k] = inst_pos[inst.name]
            comb_out_rows[k] = ids[inst.output_net]
            for net_name in inst.input_nets:
                if net_name == clock:
                    continue
                fanin_src.append(ids[net_name])
            ptr[k + 1] = len(fanin_src)
        fanin_src_arr = np.array(fanin_src, dtype=np.intp)

        all_counts = ptr[1:] - ptr[:-1]
        all_nonempty = all_counts > 0

        levels: List[_LevelSegment] = []
        lv_sorted = lv[perm]
        bounds = [0] + list(np.nonzero(np.diff(lv_sorted))[0] + 1) + [len(order)]
        if len(order) == 0:
            bounds = [0, 0]
        for b in range(len(bounds) - 1):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            if lo == hi:
                continue
            counts = ptr[lo + 1 : hi + 1] - ptr[lo:hi]
            nonempty = counts > 0
            levels.append(
                _LevelSegment(
                    lo=lo,
                    hi=hi,
                    elo=int(ptr[lo]),
                    ehi=int(ptr[hi]),
                    rel_starts=(ptr[lo:hi][nonempty] - ptr[lo]).astype(np.intp),
                    ne_offsets=np.nonzero(nonempty)[0],
                    ne_counts=counts[nonempty],
                )
            )

        return _TopoSoA(
            n_nets=n_nets,
            clock_row=ids.get(clock, -1) if clock is not None else -1,
            sink_net_rows=np.array(sink_net_rows, dtype=np.intp),
            sink_inst_rows=np.array(sink_inst_rows, dtype=np.intp),
            po_rows=po_rows,
            net_driver_rows=net_driver_rows,
            seq_inst_rows=np.array(seq_inst_rows, dtype=np.intp),
            seq_out_rows=np.array(seq_out_rows, dtype=np.intp),
            seq_names=seq_names,
            comb_inst_rows=comb_inst_rows,
            comb_out_rows=comb_out_rows,
            fanin_ptr=ptr,
            fanin_src=fanin_src_arr,
            ne_node_offsets=np.nonzero(all_nonempty)[0],
            ne_starts=ptr[:-1][all_nonempty].astype(np.intp),
            ne_counts=all_counts[all_nonempty],
            levels=levels,
        )


class TimingGraph:
    """Levelized arrival/slew state for one (netlist, placement, policy).

    ``full_propagate()`` computes every node exactly as the historical
    engines did — vectorized over struct-of-arrays state by default,
    or with the per-node scalar loop when ``vectorize=False``;
    ``update(changed)`` recomputes only the dirty cone;
    ``report(clock_period)`` materializes endpoint slacks and charges
    the policy's runtime proxy for the operations since the last query.
    Both propagation modes produce bitwise-identical state.
    """

    def __init__(
        self,
        netlist: Netlist,
        placement: Placement,
        policy: DelayPolicy,
        skews: Optional[Dict[str, float]] = None,
        congestion: Optional[np.ndarray] = None,
        check_hold: bool = False,
        topology: Optional[TimingTopology] = None,
        vectorize: bool = True,
    ):
        self.netlist = netlist
        self.placement = placement
        self.policy = policy
        self.skews = skews or {}
        self.congestion = congestion
        self.check_hold = check_hold
        self.vectorize = vectorize
        if (
            topology is None
            or topology.netlist is not netlist
            or topology.placement is not placement
        ):
            topology = TimingTopology(netlist, placement)
        self.topology = topology
        self.stats = StaStats()
        # per-net propagation state: plain dicts in scalar mode, array
        # façades after a vectorized propagation — same mapping surface
        self._net_load: Dict[str, float] = {}
        self._arrival: Dict[str, float] = {}
        self._slew: Dict[str, float] = {}
        self._pred: Dict[str, Optional[str]] = {}
        self._arrival_min: Dict[str, float] = {}
        self._known: set = set()  # instance names levelized into the graph
        self._propagated = False
        self._ops_pending = 0  # propagation ops since the last report()
        self._full_ops = 0  # ops one from-scratch propagation costs today
        # cell-attribute registry for the vectorized gather; entries
        # hold the Cell object so a row can never alias a recycled id()
        self._cell_rows: Dict[int, Tuple[int, object]] = {}
        self._cell_data: List[Tuple[float, ...]] = []
        self._cell_matrix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # per-node recomputation: these are the *only* places arrival/slew
    # values are produced by the scalar paths (incremental update and
    # vectorize=False propagation); the vectorized kernel mirrors each
    # expression with identical association order, which is what makes
    # bit-identity structural rather than coincidental.
    def _congestion_at(self, net_name: str) -> float:
        if self.congestion is None:
            return 0.0
        ny, nx = self.congestion.shape
        placement = self.placement
        fp = placement.floorplan
        net = placement.netlist.nets.get(net_name)
        if net is None or net.driver is None:
            return 0.0
        x, y = placement.positions[net.driver]
        i = bin_index(x, fp.width, nx)
        j = bin_index(y, fp.height, ny)
        return float(self.congestion[j, i])

    def _net_load_of(self, net_name: str) -> float:
        netlist = self.netlist
        net = netlist.nets[net_name]
        load = sum(netlist.instances[s].cell.input_cap for s, _ in net.sinks)
        if net_name in netlist.primary_outputs:
            load += PO_LOAD
        load += (
            netlist.library.wire_c_per_um
            * self.topology.net_len[net_name]
            * self.policy.corner.wire_factor
        )
        return load

    def _compute_seq(self, inst) -> int:
        policy = self.policy
        out = inst.output_net
        launch = self.skews.get(inst.name, 0.0)
        q_delay = DFF_CLK_TO_Q * policy.corner.delay_factor * policy.stage_derate()
        load = self._net_load.get(out, 0.0)
        cell = inst.cell
        self._arrival[out] = (
            launch + q_delay + cell.drive_resistance * load * policy.corner.delay_factor
        )
        self._slew[out] = cell.output_slew(load)
        self._pred[out] = None
        return 1

    def _compute_comb(self, inst) -> int:
        policy = self.policy
        netlist = self.netlist
        lib = netlist.library
        net_len = self.topology.net_len
        out = inst.output_net
        load = self._net_load.get(out, 0.0)
        cell = inst.cell
        best_arr = -np.inf
        best_net = None
        in_slews = []
        ops = 0
        for net_name in inst.input_nets:
            if net_name == netlist.clock_net:
                continue
            a_in = self._arrival.get(net_name, 0.0)
            s_in = self._slew.get(net_name, PI_SLEW)
            in_slews.append(s_in)
            w_delay = policy.wire_delay(net_len.get(net_name, 0.0), cell.input_cap, lib)
            w_delay += policy.si_bump(
                net_len.get(net_name, 0.0), self._congestion_at(net_name)
            )
            cand = a_in + w_delay
            ops += 1
            if cand > best_arr:
                best_arr = cand
                best_net = net_name
        s_in = policy.merge_slew(in_slews) if in_slews else PI_SLEW
        gate_delay = cell.delay(load, s_in) * policy.corner.delay_factor * policy.stage_derate()
        self._arrival[out] = best_arr + gate_delay
        self._slew[out] = cell.output_slew(load)
        self._pred[out] = best_net
        return ops

    def _compute_seq_min(self, inst) -> None:
        policy = self.policy
        out = inst.output_net
        launch = self.skews.get(inst.name, 0.0)
        load = self._net_load.get(out, 0.0)
        self._arrival_min[out] = (
            launch
            + (DFF_CLK_TO_Q + inst.cell.drive_resistance * load)
            * policy.corner.delay_factor
            * policy.early_derate()
        )

    def _compute_comb_min(self, inst) -> int:
        policy = self.policy
        netlist = self.netlist
        lib = netlist.library
        net_len = self.topology.net_len
        early = policy.early_derate()
        out = inst.output_net
        load = self._net_load.get(out, 0.0)
        cell = inst.cell
        fastest = np.inf
        for net_name in inst.input_nets:
            if net_name == netlist.clock_net:
                continue
            a_in = self._arrival_min.get(net_name, 0.0)
            w_delay = policy.wire_delay(net_len.get(net_name, 0.0), cell.input_cap, lib)
            fastest = min(fastest, a_in + w_delay * early)
        if np.isinf(fastest):
            fastest = 0.0
        gate_delay = cell.delay(load, PI_SLEW) * policy.corner.delay_factor * early
        self._arrival_min[out] = fastest + gate_delay
        return 1

    def _node_state(self, out_net: str) -> Tuple:
        return (
            self._arrival.get(out_net),
            self._slew.get(out_net),
            self._arrival_min.get(out_net),
        )

    # ------------------------------------------------------------------
    def full_propagate(self) -> int:
        """Propagate every node from scratch; returns propagation ops.

        Computes nets, startpoints and combinational instances with
        exactly the historical ``analyze`` float expressions (the
        vectorized and scalar paths are bitwise interchangeable).  Also
        (re)builds the topology if the netlist's ``structure_version``
        moved since it was built.
        """
        if self.topology.stale:
            self.topology.rebuild()
        if self.vectorize:
            ops = self._propagate_vectorized()
        else:
            ops = self._propagate_scalar()
        self._known = set(self.netlist.instances)
        self._propagated = True
        self._full_ops = ops
        self._ops_pending = ops
        self.stats.full_propagates += 1
        return ops

    def _propagate_scalar(self) -> int:
        """The historical per-node propagation loop (reference path)."""
        netlist = self.netlist
        topo = self.topology
        ops = 0

        self._net_load = {}
        for net_name in netlist.nets:
            if net_name == netlist.clock_net:
                continue
            self._net_load[net_name] = self._net_load_of(net_name)

        self._arrival = {}
        self._slew = {}
        self._pred = {}
        self._arrival_min = {}
        for pi in netlist.primary_inputs:
            if pi == netlist.clock_net:
                continue
            self._arrival[pi] = 0.0
            self._slew[pi] = PI_SLEW
            self._pred[pi] = None
        for inst in netlist.sequential_instances():
            ops += self._compute_seq(inst)
        for name in topo.order:
            ops += self._compute_comb(netlist.instances[name])

        if self.check_hold:
            for pi in netlist.primary_inputs:
                if pi != netlist.clock_net:
                    self._arrival_min[pi] = 0.0
            for inst in netlist.sequential_instances():
                self._compute_seq_min(inst)
            for name in topo.order:
                ops += self._compute_comb_min(netlist.instances[name])

        return ops

    # ------------------------------------------------------------------
    # vectorized full propagation
    def _cell_columns(self) -> Tuple[np.ndarray, ...]:
        """Per-instance cell attribute columns, gathered fresh each
        propagation (cell swaps don't bump ``structure_version``, so
        attributes can never be cached structurally)."""
        netlist = self.netlist
        rows_by_id = self._cell_rows
        data = self._cell_data
        rows = np.empty(len(netlist.instances), dtype=np.intp)
        dirty = False
        for i, inst in enumerate(netlist.instances.values()):
            cell = inst.cell
            entry = rows_by_id.get(id(cell))
            # the identity check guards deepcopied graphs (stage cache):
            # a copied registry keeps the original objects' ids as keys,
            # and a new cell may be allocated at one of those addresses
            if entry is not None and entry[1] is not cell:
                entry = None
            if entry is None:
                row = len(data)
                data.append(
                    (
                        cell.input_cap,
                        cell.intrinsic_delay,
                        cell.drive_resistance,
                        cell.slew_sensitivity,
                        cell.slew_intrinsic,
                        cell.slew_resistance,
                    )
                )
                rows_by_id[id(cell)] = (row, cell)
                dirty = True
            else:
                row = entry[0]
            rows[i] = row
        if dirty or self._cell_matrix is None:
            self._cell_matrix = np.array(data, dtype=float)
        m = self._cell_matrix[rows]
        return m[:, 0], m[:, 1], m[:, 2], m[:, 3], m[:, 4], m[:, 5]

    def _net_congestion(self, soa: _TopoSoA) -> Optional[np.ndarray]:
        """Per-net congestion under each net's driver, or None if no map."""
        if self.congestion is None:
            return None
        ny, nx = self.congestion.shape
        placement = self.placement
        fp = placement.floorplan
        positions = placement.positions
        n_inst = len(self.netlist.instances)
        xs = np.empty(n_inst)
        ys = np.empty(n_inst)
        for i, name in enumerate(self.netlist.instances):
            xs[i], ys[i] = positions[name]
        gi = bin_indices(xs, fp.width, nx)
        gj = bin_indices(ys, fp.height, ny)
        inst_cong = np.asarray(self.congestion, dtype=float)[gj, gi]
        cong = np.zeros(soa.n_nets)
        driven = soa.net_driver_rows >= 0
        cong[driven] = inst_cong[soa.net_driver_rows[driven]]
        return cong

    def _propagate_vectorized(self) -> int:
        netlist = self.netlist
        topo = self.topology
        policy = self.policy
        lib = netlist.library
        soa = topo.soa
        index = topo.net_index
        n_nets = soa.n_nets
        df = policy.corner.delay_factor
        wf = policy.corner.wire_factor

        cap, intr, dres, ssens, sintr, sres = self._cell_columns()
        net_len_map = topo.net_len
        net_len = np.fromiter(
            (net_len_map.get(name, 0.0) for name in index.names),
            dtype=float,
            count=n_nets,
        )
        launch = np.fromiter(
            (self.skews.get(name, 0.0) for name in soa.seq_names),
            dtype=float,
            count=len(soa.seq_names),
        )

        # net loads: sequential bincount accumulation == the scalar
        # left-to-right Python sum over each net's sinks, then PO pin
        # load, then the wire term — same order, same expressions
        loads = np.bincount(
            soa.sink_net_rows,
            weights=cap[soa.sink_inst_rows],
            minlength=n_nets,
        )
        loads[soa.po_rows] += PO_LOAD
        loads = loads + lib.wire_c_per_um * net_len * wf

        # slews are arrival-independent: PI_SLEW at startpoint inputs,
        # cell.output_slew(load) at every instance output
        slew = np.full(n_nets, PI_SLEW)
        seq_loads = loads[soa.seq_out_rows]
        slew[soa.seq_out_rows] = sintr[soa.seq_inst_rows] + sres[soa.seq_inst_rows] * seq_loads
        ci = soa.comb_inst_rows
        comb_loads = loads[soa.comb_out_rows]
        slew[soa.comb_out_rows] = sintr[ci] + sres[ci] * comb_loads

        # launch arrivals at sequential outputs
        arrival = np.zeros(n_nets)
        pred = np.full(n_nets, -1, dtype=np.int64)
        q_delay = DFF_CLK_TO_Q * df * policy.stage_derate()
        arrival[soa.seq_out_rows] = (
            launch + q_delay + dres[soa.seq_inst_rows] * seq_loads * df
        )

        # per-edge wire + SI delay (arrival-independent): the load seen
        # by the wire is the receiving pin's input cap
        e_src = soa.fanin_src
        fanin_counts = soa.fanin_ptr[1:] - soa.fanin_ptr[:-1]
        e_cap = np.repeat(cap[ci], fanin_counts)
        e_len = net_len[e_src]
        e_wire_pure = policy.wire_delay_batch(e_len, e_cap, lib)
        cong = self._net_congestion(soa)
        e_cong = np.zeros(e_src.shape[0]) if cong is None else cong[e_src]
        e_wire = e_wire_pure + policy.si_bump_batch(e_len, e_cong)

        # merged input slews and gate delays per comb node (global):
        # nodes with no non-clock fanin fall back to PI_SLEW
        merged = np.full(soa.n_comb, PI_SLEW)
        if soa.ne_starts.size:
            merged[soa.ne_node_offsets] = policy.merge_slew_batch(
                slew[e_src], soa.ne_starts, soa.ne_counts
            )
        gate = (intr[ci] + dres[ci] * comb_loads + ssens[ci] * merged) * df * policy.stage_derate()

        # level-by-level late-arrival propagation
        for seg in soa.levels:
            n_lv = seg.hi - seg.lo
            best = np.full(n_lv, -np.inf)
            pred_lv = np.full(n_lv, -1, dtype=np.int64)
            if seg.rel_starts.size:
                src_lv = e_src[seg.elo : seg.ehi]
                cand = arrival[src_lv] + e_wire[seg.elo : seg.ehi]
                seg_max = np.maximum.reduceat(cand, seg.rel_starts)
                best[seg.ne_offsets] = seg_max
                # first input achieving the max == the scalar strict-">"
                # left-to-right winner
                rep = np.repeat(seg_max, seg.ne_counts)
                positions = np.arange(cand.shape[0])
                masked = np.where(cand == rep, positions, cand.shape[0])
                first = np.minimum.reduceat(masked, seg.rel_starts)
                winners = np.where(seg_max > -np.inf, src_lv[first], -1)
                pred_lv[seg.ne_offsets] = winners
            out_lv = soa.comb_out_rows[seg.lo : seg.hi]
            arrival[out_lv] = best + gate[seg.lo : seg.hi]
            pred[out_lv] = pred_lv

        ops = len(soa.seq_names) + soa.n_comb_edges

        arrival_min: Optional[np.ndarray] = None
        if self.check_hold:
            early = policy.early_derate()
            arrival_min = np.zeros(n_nets)
            arrival_min[soa.seq_out_rows] = (
                launch + (DFF_CLK_TO_Q + dres[soa.seq_inst_rows] * seq_loads) * df * early
            )
            e_hold = e_wire_pure * early
            gate_min = (intr[ci] + dres[ci] * comb_loads + ssens[ci] * PI_SLEW) * df * early
            for seg in soa.levels:
                n_lv = seg.hi - seg.lo
                fastest = np.full(n_lv, np.inf)
                if seg.rel_starts.size:
                    src_lv = e_src[seg.elo : seg.ehi]
                    cand = arrival_min[src_lv] + e_hold[seg.elo : seg.ehi]
                    fastest[seg.ne_offsets] = np.minimum.reduceat(cand, seg.rel_starts)
                fastest = np.where(np.isinf(fastest), 0.0, fastest)
                out_lv = soa.comb_out_rows[seg.lo : seg.hi]
                arrival_min[out_lv] = fastest + gate_min[seg.lo : seg.hi]
            ops += soa.n_comb

        # publish array state behind the dict façades; presence matches
        # the scalar dicts exactly (every non-clock net — each net is a
        # primary input or an instance output)
        mask = np.ones(n_nets, dtype=bool)
        if soa.clock_row >= 0:
            mask[soa.clock_row] = False
        self._net_load = _NetValueMap(index, values=loads, mask=mask.copy())
        self._arrival = _NetValueMap(index, values=arrival, mask=mask.copy())
        self._slew = _NetValueMap(index, fill=PI_SLEW, values=slew, mask=mask.copy())
        self._pred = _NetPredMap(index, rows=pred, mask=mask.copy())
        if arrival_min is not None:
            self._arrival_min = _NetValueMap(index, values=arrival_min, mask=mask.copy())
        else:
            self._arrival_min = _NetValueMap(index)
        return ops

    # ------------------------------------------------------------------
    def _levelize_new(self, new_names: List[str]) -> None:
        """Levelize instances spliced in since the last propagation and
        raise downstream levels along their forward cones."""
        netlist = self.netlist
        level = self.topology.level
        pending = list(new_names)
        while pending:
            progressed = []
            stuck = []
            for name in pending:
                inst = netlist.instances[name]
                if inst.cell.is_sequential:
                    progressed.append(name)
                    continue
                best = 0
                ok = True
                for net_name in inst.input_nets:
                    if net_name == netlist.clock_net:
                        continue
                    driver = netlist.nets[net_name].driver
                    if driver is None or netlist.instances[driver].cell.is_sequential:
                        continue
                    if driver not in level:
                        ok = False
                        break
                    best = max(best, level[driver])
                if not ok:
                    stuck.append(name)
                    continue
                level[name] = best + 1
                progressed.append(name)
            if not progressed:
                raise RuntimeError(
                    f"cannot levelize new instances {stuck}: "
                    "combinational cycle or dangling driver"
                )
            pending = stuck
        # raise levels forward so the worklist heap stays topological
        queue = [n for n in new_names if n in level]
        while queue:
            name = queue.pop(0)
            base = level[name]
            out = netlist.instances[name].output_net
            for sink_name, _ in netlist.nets[out].sinks:
                sink = netlist.instances[sink_name]
                if sink.cell.is_sequential:
                    continue
                if level[sink_name] <= base:
                    level[sink_name] = base + 1
                    queue.append(sink_name)

    def update(self, changed: Iterable[str]) -> int:
        """Re-propagate the forward cones of ``changed`` instances.

        ``changed`` names instances whose cell was swapped
        (``replace_cell``) or that were newly spliced in
        (``insert_buffer``).  Returns the number of nodes recomputed;
        the corresponding ops are charged to the next ``report()``.
        Propagation of a cone stops at nodes whose recomputed
        ``(arrival, slew)`` state is bitwise unchanged.
        """
        if not self._propagated:
            raise RuntimeError("full_propagate() must run before update()")
        netlist = self.netlist
        names = sorted(set(changed))
        new_names = [n for n in names if n not in self._known]
        if new_names:
            self._levelize_new(new_names)

        # dirty sets as insertion-ordered dicts (deterministic iteration)
        dirty_nets: Dict[str, None] = {}
        dirty_seq: Dict[str, None] = {}
        dirty_comb: Dict[str, None] = {}

        def mark(inst_name: str) -> None:
            if netlist.instances[inst_name].cell.is_sequential:
                dirty_seq[inst_name] = None
            else:
                dirty_comb[inst_name] = None

        for name in names:
            inst = netlist.instances[name]
            mark(name)
            if name in self._known:
                # cell swap: input caps changed -> predecessor loads change
                for net_name in inst.input_nets:
                    if net_name == netlist.clock_net:
                        continue
                    dirty_nets[net_name] = None
                    driver = netlist.nets[net_name].driver
                    if driver is not None:
                        mark(driver)
            else:
                # splice: connected nets change length *and* load, which
                # moves every sink's input wire delay
                touched = [
                    n for n in inst.input_nets if n != netlist.clock_net
                ] + [inst.output_net]
                for net_name in touched:
                    self.topology.net_len[net_name] = self.placement.net_length(net_name)
                    dirty_nets[net_name] = None
                    net = netlist.nets[net_name]
                    if net.driver is not None:
                        mark(net.driver)
                    for sink_name, _ in net.sinks:
                        if not netlist.instances[sink_name].cell.is_sequential:
                            mark(sink_name)
                self._known.add(name)
                # keep the full-run cost model current: a from-scratch
                # propagation now also visits this instance
                if inst.cell.is_sequential:
                    self._full_ops += 1
                else:
                    self._full_ops += sum(
                        1 for n in inst.input_nets if n != netlist.clock_net
                    )
                    if self.check_hold:
                        self._full_ops += 1

        for net_name in dirty_nets:
            self._net_load[net_name] = self._net_load_of(net_name)

        level = self.topology.level
        ops = 0
        nodes = 0
        heap: List[Tuple[int, str]] = []
        scheduled = set()
        processed = set()

        def schedule(inst_name: str) -> None:
            if inst_name in scheduled or inst_name in processed:
                return
            scheduled.add(inst_name)
            heapq.heappush(heap, (level[inst_name], inst_name))

        def fanout_changed(out_net: str) -> None:
            for sink_name, _ in netlist.nets[out_net].sinks:
                if not netlist.instances[sink_name].cell.is_sequential:
                    schedule(sink_name)

        for name in dirty_seq:
            inst = netlist.instances[name]
            before = self._node_state(inst.output_net)
            ops += self._compute_seq(inst)
            if self.check_hold:
                self._compute_seq_min(inst)
            nodes += 1
            if self._node_state(inst.output_net) != before:
                fanout_changed(inst.output_net)

        for name in dirty_comb:
            schedule(name)
        while heap:
            _, name = heapq.heappop(heap)
            scheduled.discard(name)
            processed.add(name)
            inst = netlist.instances[name]
            before = self._node_state(inst.output_net)
            ops += self._compute_comb(inst)
            if self.check_hold:
                ops += self._compute_comb_min(inst)
            nodes += 1
            if self._node_state(inst.output_net) != before:
                fanout_changed(inst.output_net)

        self._ops_pending += ops
        self.stats.incremental_updates += 1
        self.stats.nodes_propagated += nodes
        return nodes

    # ------------------------------------------------------------------
    def report(self, clock_period: float) -> TimingReport:
        """Materialize endpoint slacks from the current propagation state.

        Charges the policy's runtime proxy for the propagation ops
        accumulated since the last report plus the per-endpoint work,
        then lets the policy post-process (PBA).
        """
        if clock_period <= 0:
            raise ValueError("clock period must be positive")
        if not self._propagated:
            raise RuntimeError("full_propagate() must run before report()")
        netlist = self.netlist
        lib = netlist.library
        policy = self.policy
        corner = policy.corner
        net_len = self.topology.net_len
        skews = self.skews
        arrival = self._arrival
        arrival_min = self._arrival_min
        slew = self._slew
        pred = self._pred
        ops = self._ops_pending

        report = TimingReport(
            engine=policy.engine_name, corner=corner.name, clock_period=clock_period
        )

        def trace(net_name: str) -> Tuple[int, float, float, int, List[str]]:
            """Walk worst path backwards: (depth, wire_delay, cell_delay, max_fanout, instances)."""
            depth = 0
            wire_total = 0.0
            fan_max = 0
            insts: List[str] = []
            cur: Optional[str] = net_name
            visited = 0
            while cur is not None and visited < 10_000:
                visited += 1
                fan_max = max(fan_max, netlist.net_fanout(cur))
                wire_total += net_len.get(cur, 0.0) * lib.wire_r_per_um
                driver = netlist.nets[cur].driver
                if driver is None or netlist.instances[driver].cell.is_sequential:
                    break
                insts.append(driver)
                depth += 1
                cur = pred.get(cur)
            return depth, wire_total, 0.0, fan_max, insts

        # endpoints: DFF D inputs
        for inst in netlist.sequential_instances():
            d_net = inst.input_nets[0]
            a = arrival.get(d_net, 0.0)
            w_delay = policy.wire_delay(net_len.get(d_net, 0.0), inst.cell.input_cap, lib)
            w_delay += policy.si_bump(net_len.get(d_net, 0.0), self._congestion_at(d_net))
            a = a + w_delay
            capture = skews.get(inst.name, 0.0)
            required = clock_period + capture - DFF_SETUP * corner.delay_factor
            hold_slack = float("inf")
            if self.check_hold:
                a_min = arrival_min.get(d_net, 0.0)
                w_min = policy.wire_delay(
                    net_len.get(d_net, 0.0), inst.cell.input_cap, lib
                ) * policy.early_derate()
                hold_required = capture + DFF_HOLD * corner.delay_factor
                hold_slack = (a_min + w_min) - hold_required
            depth, wire_total, _, fan_max, path_insts = trace(d_net)
            ep = EndpointTiming(
                endpoint=f"{inst.name}/D",
                kind="setup",
                arrival=a,
                required=required,
                slack=required - a,
                path_depth=depth,
                path_wire_delay=wire_total,
                path_cell_delay=a - wire_total,
                path_max_fanout=fan_max,
                path_slew=slew.get(d_net, PI_SLEW),
                hold_slack=hold_slack,
            )
            report.endpoints[ep.endpoint] = ep
            report.paths[ep.endpoint] = path_insts
            ops += 2
        # endpoints: primary outputs
        for po in netlist.primary_outputs:
            a = arrival.get(po, 0.0)
            depth, wire_total, _, fan_max, path_insts = trace(po)
            ep = EndpointTiming(
                endpoint=f"{po}/PO",
                kind="output",
                arrival=a,
                required=clock_period,
                slack=clock_period - a,
                path_depth=depth,
                path_wire_delay=wire_total,
                path_cell_delay=a - wire_total,
                path_max_fanout=fan_max,
                path_slew=slew.get(po, PI_SLEW),
            )
            report.endpoints[ep.endpoint] = ep
            report.paths[ep.endpoint] = path_insts
            ops += 2

        report.runtime_proxy = policy.runtime_proxy(ops)
        report = policy.finalize_report(report)

        endpoint_ops = 2 * len(report.endpoints)
        self.stats.proxy_executed += report.runtime_proxy
        self.stats.proxy_full_equivalent += policy.full_runtime_proxy(
            self._full_ops + endpoint_ops
        )
        self._ops_pending = 0
        return report
