"""Pluggable delay-model policies for the STA kernel.

A :class:`DelayPolicy` is everything that differs between the P&R
tool's embedded timer and the signoff timer: wire delay, SI bump,
OCV derates, slew merging, the runtime-proxy cost model, and any
post-processing of the finished report (PBA).  The propagation
*machinery* — levelization, arrival propagation, dirty-cone updates —
lives in :class:`repro.eda.sta.graph.TimingGraph` and is shared; the
policy is the only thing a new engine needs to supply.

The two concrete policies reproduce the historical ``GraphSTA`` /
``SignoffSTA`` hook methods (``_wire_delay`` / ``_si_bump`` /
``_stage_derate`` / ``_early_derate`` / ``_merge_slew`` /
``_runtime_proxy``) expression-for-expression, so reports stay
bit-identical to the pre-refactor engines (enforced against
``tests/eda/sta_reference.py``).

Each scalar hook has a ``*_batch`` companion consumed by the
vectorized kernel.  Batch methods are written with the *same
association order* as their scalar counterparts (numpy elementwise
ops round identically to the scalar float ops), and segment merges
use ``np.add.reduceat``/``np.maximum.reduceat``, whose strictly
sequential accumulation matches the scalar left-to-right loops —
that is what keeps vectorized results bitwise equal to scalar ones.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.eda.sta.report import Corner, TYPICAL, TimingReport


class DelayPolicy:
    """Base delay model: lumped Elmore, worst-slew, no derates, 1x cost."""

    engine_name = "base"

    def __init__(self, corner: Corner = TYPICAL):
        self.corner = corner

    def wire_delay(self, length: float, load: float, lib) -> float:
        """Lumped Elmore: R_wire * (C_wire/2 + C_pins)."""
        r = lib.wire_r_per_um * length * self.corner.wire_factor
        c_wire = lib.wire_c_per_um * length * self.corner.wire_factor
        return r * (c_wire / 2.0 + load)

    def si_bump(self, length: float, congestion: float) -> float:
        return 0.0

    def wire_delay_batch(
        self, lengths: np.ndarray, loads: np.ndarray, lib
    ) -> np.ndarray:
        """Vectorized :meth:`wire_delay` (same expressions, same order)."""
        r = lib.wire_r_per_um * lengths * self.corner.wire_factor
        c_wire = lib.wire_c_per_um * lengths * self.corner.wire_factor
        return r * (c_wire / 2.0 + loads)

    def si_bump_batch(
        self, lengths: np.ndarray, congestions: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`si_bump`."""
        return np.zeros_like(lengths)

    def merge_slew_batch(
        self, slews: np.ndarray, starts: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Per-segment :meth:`merge_slew` over a CSR of input slews.

        ``starts`` are the first-edge offsets of *non-empty* segments
        (the caller substitutes the PI-slew fallback for empty ones);
        ``counts`` are the matching segment lengths.
        """
        return np.maximum.reduceat(slews, starts)

    def stage_derate(self) -> float:
        return 1.0

    def early_derate(self) -> float:
        """Multiplier on early-path delays for hold analysis (<= 1)."""
        return 1.0

    def merge_slew(self, slews: List[float]) -> float:
        return max(slews)

    def runtime_proxy(self, ops: int) -> float:
        """Work units charged for ``ops`` propagation operations."""
        return float(ops)

    def full_runtime_proxy(self, ops: int) -> float:
        """Proxy a from-scratch run charging ``ops`` would report.

        Includes report post-processing multipliers (PBA); used by the
        kernel to account how much work an incremental update *avoided*.
        """
        return self.runtime_proxy(ops)

    def finalize_report(self, report: TimingReport) -> TimingReport:
        """Post-process a finished report (PBA recovery etc.)."""
        return report


class GraphDelayPolicy(DelayPolicy):
    """The P&R tool's fast embedded timer (graph-based, no SI)."""

    engine_name = "graph"


class SignoffDelayPolicy(DelayPolicy):
    """The signoff timer: SI-aware, derated, optionally path-based."""

    engine_name = "signoff"

    def __init__(
        self,
        corner: Corner = TYPICAL,
        si_factor: float = 0.45,
        ocv_derate: float = 1.06,
        pba: bool = True,
        pba_depth_credit: float = 0.8,
    ):
        super().__init__(corner)
        if si_factor < 0:
            raise ValueError("si_factor must be non-negative")
        if ocv_derate < 1.0:
            raise ValueError("late OCV derate must be >= 1")
        self.si_factor = si_factor
        self.ocv_derate = ocv_derate
        self.pba = pba
        self.pba_depth_credit = pba_depth_credit

    def si_bump(self, length: float, congestion: float) -> float:
        # coupling delta grows with wire length and local routing demand
        return self.si_factor * length * 0.12 * max(0.0, congestion)

    def si_bump_batch(
        self, lengths: np.ndarray, congestions: np.ndarray
    ) -> np.ndarray:
        return self.si_factor * lengths * 0.12 * np.maximum(0.0, congestions)

    def stage_derate(self) -> float:
        return self.ocv_derate

    def merge_slew(self, slews: List[float]) -> float:
        # effective slew: closer to RMS than worst-case (less pessimistic)
        arr = np.asarray(slews)
        return float(np.sqrt(np.mean(arr**2)))

    def merge_slew_batch(
        self, slews: np.ndarray, starts: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        # RMS per segment.  np.add.reduceat sums strictly sequentially,
        # and np.mean's pairwise summation degenerates to the same
        # sequential sum below 8 elements (cells have <= 3 inputs), so
        # this is bitwise equal to the scalar merge_slew per node.
        return np.sqrt(np.add.reduceat(slews**2, starts) / counts)

    def early_derate(self) -> float:
        return 0.92  # early OCV: fast paths may be faster than nominal

    def runtime_proxy(self, ops: int) -> float:
        return float(ops) * 6.0  # SI + derate bookkeeping cost

    def full_runtime_proxy(self, ops: int) -> float:
        proxy = self.runtime_proxy(ops)
        if self.pba:
            proxy *= 1.8
        return proxy

    def finalize_report(self, report: TimingReport) -> TimingReport:
        if self.pba:
            # PBA pass on the worst endpoints: recover per-stage graph
            # pessimism proportional to path depth.
            worst = sorted(report.endpoints.values(), key=lambda e: e.slack)[:50]
            for ep in worst:
                credit = self.pba_depth_credit * ep.path_depth
                ep.arrival -= credit
                ep.slack += credit
            report.runtime_proxy *= 1.8  # PBA is expensive
        return report
