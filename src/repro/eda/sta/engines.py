"""The two timer front-ends, as thin drivers over the shared kernel.

Two engines analyze the same netlist/placement under the same "laws of
physics" but with different approximations — exactly the situation in
the paper's Sec 3.2 where "analysis miscorrelation can be an unavoidable
consequence of runtime constraints":

- :class:`GraphSTA` — the P&R tool's embedded timer.  Graph-based
  arrival propagation, lumped-Elmore wire delay, worst-slew propagation,
  no crosstalk, no derates.  Cheap.
- :class:`SignoffSTA` — the signoff timer.  Adds coupling-aware wire
  delay (congestion-dependent SI bump), effective-slew propagation,
  late OCV derates on stage delays, and optional path-based analysis
  (PBA) that recovers graph-based (GBA) pessimism on the worst paths.
  Roughly an order of magnitude more work.

Since the :mod:`repro.eda.sta` refactor an engine is just a
:class:`~repro.eda.sta.policy.DelayPolicy` factory: ``analyze`` builds
a fresh :class:`~repro.eda.sta.graph.TimingGraph`, fully propagates it
and reports — bit-identical to the historical monolithic engines —
while ``build_graph`` hands the kernel itself to callers that want to
keep it alive and query timing incrementally (the optimizer, MMMC).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.eda.netlist import Netlist
from repro.eda.placement import Placement
from repro.eda.sta.graph import TimingGraph, TimingTopology
from repro.eda.sta.policy import DelayPolicy, GraphDelayPolicy, SignoffDelayPolicy
from repro.eda.sta.report import Corner, TYPICAL, TimingReport


class _BaseSTA:
    """Shared driver machinery: policy factory + graph construction."""

    engine_name = "base"

    def __init__(self, corner: Corner = TYPICAL):
        self.corner = corner

    def make_policy(self) -> DelayPolicy:
        return DelayPolicy(self.corner)

    def build_graph(
        self,
        netlist: Netlist,
        placement: Placement,
        skews: Optional[Dict[str, float]] = None,
        congestion: Optional[np.ndarray] = None,
        check_hold: bool = False,
        topology: Optional[TimingTopology] = None,
        vectorize: bool = True,
    ) -> TimingGraph:
        """Construct (but do not propagate) this engine's kernel.

        Pass a prebuilt ``topology`` to share levelization/net lengths
        across engines or corners over the same design.
        ``vectorize=False`` selects the scalar reference loop instead of
        the struct-of-arrays kernel (bit-identical; used by equivalence
        tests and benchmarks).
        """
        return TimingGraph(
            netlist,
            placement,
            self.make_policy(),
            skews=skews,
            congestion=congestion,
            check_hold=check_hold,
            topology=topology,
            vectorize=vectorize,
        )

    def analyze(
        self,
        netlist: Netlist,
        placement: Placement,
        clock_period: float,
        skews: Optional[Dict[str, float]] = None,
        congestion: Optional[np.ndarray] = None,
        check_hold: bool = False,
    ) -> TimingReport:
        """Run STA from scratch (the historical one-shot entry point).

        ``skews`` maps flop instance names to clock arrival offsets (ps)
        produced by CTS.  ``congestion`` is a routing-demand map (from
        the global router) used by the signoff engine's SI model.
        ``check_hold`` additionally propagates early (minimum) arrivals
        and populates per-endpoint hold slacks (same-edge check:
        earliest data arrival must exceed capture skew + hold time).
        """
        if clock_period <= 0:
            raise ValueError("clock period must be positive")
        graph = self.build_graph(
            netlist, placement, skews=skews, congestion=congestion, check_hold=check_hold
        )
        graph.full_propagate()
        return graph.report(clock_period)


class GraphSTA(_BaseSTA):
    """The P&R tool's fast embedded timer (graph-based, no SI)."""

    engine_name = "graph"

    def make_policy(self) -> DelayPolicy:
        return GraphDelayPolicy(self.corner)


class SignoffSTA(_BaseSTA):
    """The signoff timer: SI-aware, derated, optionally path-based."""

    engine_name = "signoff"

    def __init__(
        self,
        corner: Corner = TYPICAL,
        si_factor: float = 0.45,
        ocv_derate: float = 1.06,
        pba: bool = True,
        pba_depth_credit: float = 0.8,
    ):
        super().__init__(corner)
        if si_factor < 0:
            raise ValueError("si_factor must be non-negative")
        if ocv_derate < 1.0:
            raise ValueError("late OCV derate must be >= 1")
        self.si_factor = si_factor
        self.ocv_derate = ocv_derate
        self.pba = pba
        self.pba_depth_credit = pba_depth_credit

    def make_policy(self) -> DelayPolicy:
        return SignoffDelayPolicy(
            self.corner,
            si_factor=self.si_factor,
            ocv_derate=self.ocv_derate,
            pba=self.pba,
            pba_depth_credit=self.pba_depth_credit,
        )
