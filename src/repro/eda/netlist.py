"""Gate-level netlist data model.

A :class:`Netlist` is a set of single-output :class:`Instance` objects
connected by :class:`Net` objects.  Sequential cells (DFFs) delimit the
combinational timing graph: a DFF's output pin is a timing startpoint
and its D input is an endpoint, so the combinational view is a DAG even
when the sequential circuit has feedback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.eda.library import Cell, StdCellLibrary


@dataclass
class Net:
    """A net: one driver, many sinks.

    ``driver`` is an instance name, or ``None`` for a primary input.
    ``sinks`` holds ``(instance_name, input_pin_index)`` pairs; primary
    outputs are flagged separately on the netlist.
    """

    name: str
    driver: Optional[str] = None
    sinks: List[Tuple[str, int]] = field(default_factory=list)


@dataclass
class Instance:
    """A placed-or-unplaced occurrence of a library cell."""

    name: str
    cell: Cell
    input_nets: List[str]
    output_net: str

    def __post_init__(self):
        if len(self.input_nets) != self.cell.n_inputs:
            raise ValueError(
                f"instance {self.name}: cell {self.cell.name} has "
                f"{self.cell.n_inputs} inputs, got {len(self.input_nets)} nets"
            )


class NetlistError(ValueError):
    """Raised when a netlist violates structural invariants."""


class Netlist:
    """A flat gate-level netlist over one standard-cell library."""

    def __init__(self, name: str, library: StdCellLibrary):
        self.name = name
        self.library = library
        self.instances: Dict[str, Instance] = {}
        self.nets: Dict[str, Net] = {}
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        self.clock_net: Optional[str] = None
        #: Bumped on every topology change (new instance/net).  Cheap
        #: staleness check for derived views (levelized timing graphs):
        #: cell swaps leave it alone, buffer insertions advance it.
        self.structure_version: int = 0

    # ------------------------------------------------------------------
    # construction
    def add_primary_input(self, net_name: str) -> Net:
        if net_name in self.nets:
            raise NetlistError(f"net {net_name} already exists")
        net = Net(name=net_name, driver=None)
        self.nets[net_name] = net
        self.primary_inputs.append(net_name)
        return net

    def mark_primary_output(self, net_name: str) -> None:
        if net_name not in self.nets:
            raise NetlistError(f"unknown net {net_name}")
        if net_name not in self.primary_outputs:
            self.primary_outputs.append(net_name)

    def set_clock(self, net_name: str) -> None:
        if net_name not in self.nets:
            raise NetlistError(f"unknown net {net_name}")
        self.clock_net = net_name

    def add_instance(self, name: str, cell: Cell, input_nets: Iterable[str]) -> Instance:
        """Add an instance; its output net is created as ``<name>_o``."""
        if name in self.instances:
            raise NetlistError(f"instance {name} already exists")
        input_nets = list(input_nets)
        for net_name in input_nets:
            if net_name not in self.nets:
                raise NetlistError(f"instance {name}: unknown input net {net_name}")
        out_net_name = f"{name}_o"
        if out_net_name in self.nets:
            raise NetlistError(f"net {out_net_name} already exists")
        inst = Instance(name=name, cell=cell, input_nets=input_nets, output_net=out_net_name)
        self.instances[name] = inst
        self.nets[out_net_name] = Net(name=out_net_name, driver=name)
        for pin_idx, net_name in enumerate(input_nets):
            self.nets[net_name].sinks.append((name, pin_idx))
        self.structure_version += 1
        return inst

    def insert_buffer(
        self, name: str, cell: Cell, net_name: str, sink_instance: str, pin_idx: int
    ) -> Instance:
        """Splice a buffer between ``net_name`` and one of its sinks.

        After the call, ``sink_instance``'s pin ``pin_idx`` is driven by
        the new buffer's output instead of by ``net_name``.  Used for
        hold fixing (delay padding) and long-net repeaters.
        """
        if cell.n_inputs != 1:
            raise NetlistError(f"{cell.name} is not a single-input buffer/inverter")
        net = self.nets.get(net_name)
        if net is None:
            raise NetlistError(f"unknown net {net_name}")
        if (sink_instance, pin_idx) not in net.sinks:
            raise NetlistError(
                f"net {net_name} does not drive pin {pin_idx} of {sink_instance}"
            )
        buffer_inst = self.add_instance(name, cell, [net_name])
        # move the sink pin onto the buffer's output
        net.sinks.remove((sink_instance, pin_idx))
        self.instances[sink_instance].input_nets[pin_idx] = buffer_inst.output_net
        self.nets[buffer_inst.output_net].sinks.append((sink_instance, pin_idx))
        return buffer_inst

    def replace_cell(self, instance_name: str, new_cell: Cell) -> None:
        """Swap an instance's cell in place (sizing / VT swap).

        The new cell must implement the same function with the same pin
        count; connectivity is untouched.
        """
        inst = self.instances[instance_name]
        if new_cell.function != inst.cell.function:
            raise NetlistError(
                f"cannot replace {inst.cell.function} with {new_cell.function}"
            )
        inst.cell = new_cell

    # ------------------------------------------------------------------
    # queries
    @property
    def n_instances(self) -> int:
        return len(self.instances)

    @property
    def n_nets(self) -> int:
        return len(self.nets)

    @property
    def total_area(self) -> float:
        return sum(inst.cell.area for inst in self.instances.values())

    @property
    def total_leakage(self) -> float:
        return sum(inst.cell.leakage for inst in self.instances.values())

    def sequential_instances(self) -> List[Instance]:
        return [i for i in self.instances.values() if i.cell.is_sequential]

    def combinational_instances(self) -> List[Instance]:
        return [i for i in self.instances.values() if not i.cell.is_sequential]

    def net_fanout(self, net_name: str) -> int:
        net = self.nets[net_name]
        fanout = len(net.sinks)
        if net_name in self.primary_outputs:
            fanout += 1
        return fanout

    # ------------------------------------------------------------------
    # validation and ordering
    def validate(self) -> None:
        """Check structural invariants; raise :class:`NetlistError` on failure."""
        for net in self.nets.values():
            if net.driver is None and net.name not in self.primary_inputs:
                raise NetlistError(f"net {net.name} has no driver and is not a PI")
            if net.driver is not None and net.driver not in self.instances:
                raise NetlistError(f"net {net.name} driven by unknown instance {net.driver}")
            for inst_name, pin_idx in net.sinks:
                inst = self.instances.get(inst_name)
                if inst is None:
                    raise NetlistError(f"net {net.name} sinks unknown instance {inst_name}")
                if pin_idx >= inst.cell.n_inputs:
                    raise NetlistError(
                        f"net {net.name} connects to pin {pin_idx} of {inst_name}, "
                        f"but {inst.cell.name} has only {inst.cell.n_inputs} inputs"
                    )
        for out in self.primary_outputs:
            if out not in self.nets:
                raise NetlistError(f"primary output {out} is not a net")
        # combinational cycles are illegal
        self.combinational_order()

    def combinational_order(self) -> List[str]:
        """Topological order of combinational instances.

        Sequential outputs and primary inputs are sources.  Raises
        :class:`NetlistError` if combinational feedback exists.
        """
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {name: [] for name in self.instances}
        for inst in self.combinational_instances():
            count = 0
            for net_name in inst.input_nets:
                driver = self.nets[net_name].driver
                if driver is not None and not self.instances[driver].cell.is_sequential:
                    count += 1
                    dependents[driver].append(inst.name)
            indegree[inst.name] = count
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: List[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for dep in dependents[name]:
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
        if len(order) != len(indegree):
            raise NetlistError("combinational cycle detected")
        return order

    def logic_depth(self) -> int:
        """Longest combinational path length in gate stages."""
        depth: Dict[str, int] = {}
        for name in self.combinational_order():
            inst = self.instances[name]
            best = 0
            for net_name in inst.input_nets:
                driver = self.nets[net_name].driver
                if driver is not None and not self.instances[driver].cell.is_sequential:
                    best = max(best, depth[driver])
            depth[name] = best + 1
        return max(depth.values(), default=0)

    def stats(self) -> Dict[str, float]:
        """Summary statistics used as ML design features."""
        n_seq = len(self.sequential_instances())
        fanouts = [self.net_fanout(n) for n in self.nets]
        return {
            "instances": float(self.n_instances),
            "nets": float(self.n_nets),
            "flops": float(n_seq),
            "area": self.total_area,
            "depth": float(self.logic_depth()),
            "avg_fanout": float(sum(fanouts) / max(1, len(fanouts))),
            "max_fanout": float(max(fanouts, default=0)),
            "pi": float(len(self.primary_inputs)),
            "po": float(len(self.primary_outputs)),
        }
