"""Congestion-driven re-placement.

After global routing, nets whose bounding boxes cross overfull gcells
get weights > 1; re-annealing the placement against the weighted HPWL
pulls those nets out of the hotspots, and a re-route then sees less
overflow — the classic congestion-driven placement iteration.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.eda.grid import bin_index
from repro.eda.placement import AnnealingRefiner, Placement
from repro.eda.routing import GlobalRouter


def congestion_net_weights(
    placement: Placement,
    congestion: np.ndarray,
    alpha: float = 2.0,
    threshold: float = 0.9,
) -> Dict[str, float]:
    """Per-net weights from a congestion map.

    A net's weight is ``1 + alpha * max(0, c_net - threshold)`` where
    ``c_net`` is the worst congestion under the net's bounding box —
    nets through clean regions stay at weight 1.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    cong = np.asarray(congestion, dtype=float)
    ny, nx = cong.shape
    fp = placement.floorplan
    netlist = placement.netlist
    weights: Dict[str, float] = {}
    for net_name, net in netlist.nets.items():
        if net_name == netlist.clock_net:
            continue
        points = []
        if net.driver is not None:
            points.append(placement.positions[net.driver])
        points += [placement.positions[s] for s, _ in net.sinks]
        pad = fp.pad_positions.get(net_name)
        if pad is not None:
            points.append(pad)
        if len(points) < 2:
            continue
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        i0 = bin_index(min(xs), fp.width, nx)
        i1 = bin_index(max(xs), fp.width, nx)
        j0 = bin_index(min(ys), fp.height, ny)
        j1 = bin_index(max(ys), fp.height, ny)
        worst = float(cong[j0 : j1 + 1, i0 : i1 + 1].max())
        weights[net_name] = 1.0 + alpha * max(0.0, worst - threshold)
    return weights


def congestion_driven_replace(
    placement: Placement,
    router: Optional[GlobalRouter] = None,
    n_iterations: int = 2,
    moves_per_cell: int = 6,
    alpha: float = 2.0,
    seed: Optional[int] = None,
):
    """Iterate route -> weight -> re-place; returns the final route.

    Modifies ``placement`` in place.  Each iteration re-routes, derives
    congestion weights, and re-anneals against them.
    """
    if n_iterations < 1:
        raise ValueError("need at least one iteration")
    rng = np.random.default_rng(seed)
    router = router or GlobalRouter()
    refiner = AnnealingRefiner(moves_per_cell=moves_per_cell)
    route = router.route(placement, int(rng.integers(0, 2**31 - 1)))
    for _ in range(n_iterations):
        weights = congestion_net_weights(placement, route.congestion_map(), alpha)
        refiner.refine(placement, int(rng.integers(0, 2**31 - 1)), net_weights=weights)
        route = router.route(placement, int(rng.integers(0, 2**31 - 1)))
    return route
