"""Simulated EDA tool substrate.

The paper's experiments were run with commercial synthesis, place and
route, and signoff tools on foundry enablement.  None of that is
available, so this package provides a self-contained substitute: a
synthetic 14nm-class standard-cell library, a gate-level netlist model,
a netlist generator ("synthesis"), floorplanning, quadratic + annealing
placement, global routing with congestion negotiation, a detailed-router
iteration simulator with per-iteration DRV accounting, two static timing
engines with genuinely different approximations (the miscorrelation the
paper's Sec 3.2 studies), power/IR analysis, a timing-optimization
engine and a full SP&R flow runner with the inherent-noise behaviour of
the paper's Fig 3.

The substrate is *behavioural*, not calibrated to any foundry: absolute
numbers are arbitrary-but-consistent, while the statistical properties
the paper relies on (noise growth near the feasibility wall, DRV
trajectory classes, analysis miscorrelation structure) emerge from the
actual algorithms rather than from sampled templates.
"""

from repro.eda.library import Cell, StdCellLibrary, make_default_library
from repro.eda.netlist import Instance, Net, Netlist
from repro.eda.flow import FlowOptions, FlowResult, SPRFlow
from repro.eda.mmmc import AnalysisView, MMMCAnalyzer, MMMCReport
from repro.eda.io import read_def, read_verilog, write_def, write_verilog

__all__ = [
    "Cell",
    "StdCellLibrary",
    "make_default_library",
    "Instance",
    "Net",
    "Netlist",
    "FlowOptions",
    "FlowResult",
    "SPRFlow",
    "AnalysisView",
    "MMMCAnalyzer",
    "MMMCReport",
    "read_def",
    "read_verilog",
    "write_def",
    "write_verilog",
]
