"""The SP&R flow runner: synthesis → floorplan → place → CTS → route → opt → signoff.

:class:`SPRFlow` is the substrate's stand-in for a commercial RTL-to-GDS
flow.  A run takes a :class:`~repro.eda.synthesis.DesignSpec`, a
:class:`FlowOptions` bundle (the "command options" of the paper's
Sec 2 — utilizations, efforts, guardbands, ...) and a seed, and returns
a :class:`FlowResult` with QoR metrics and per-step logs.

Run-to-run noise (paper Fig 3) is *emergent*: the synthesis
restructurer, the placement annealer, CTS and the optimizer all make
seed-dependent tie-breaking choices, and the closer the target
frequency sits to the design's feasibility wall, the more such choices
the optimizer is forced to make — so QoR variance grows with target
aggressiveness without any explicit noise injection.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.eda.netlist import Netlist
from repro.eda.synthesis import DesignSpec


@dataclass(frozen=True)
class FlowOptions:
    """One point in the flow's option space.

    The paper notes a P&R tool has "well over ten thousand
    command-option combinations"; :meth:`option_space_size` counts ours.
    """

    target_clock_ghz: float = 0.8
    synth_effort: float = 0.5
    utilization: float = 0.70
    aspect_ratio: float = 1.0
    placer_moves_per_cell: int = 8
    spread_strength: float = 0.8
    cts_effort: float = 0.5
    router_tracks_per_um: float = 16.0
    router_effort: float = 0.6
    router_max_iterations: int = 20
    opt_passes: int = 6
    opt_cells_per_pass: int = 24
    opt_guardband: float = 0.0
    power_recovery: bool = True

    def __post_init__(self):
        if not self.target_clock_ghz > 0 or not np.isfinite(self.target_clock_ghz):
            raise ValueError("target_clock_ghz must be positive and finite")
        if not 0.0 <= self.synth_effort <= 1.0:
            raise ValueError("synth_effort must be in [0, 1]")
        if not 0.05 <= self.utilization <= 0.98:
            raise ValueError("utilization must be in [0.05, 0.98]")
        if not 0.1 <= self.aspect_ratio <= 10.0:
            raise ValueError("aspect_ratio must be in [0.1, 10]")
        if self.placer_moves_per_cell < 1:
            raise ValueError("placer_moves_per_cell must be >= 1")
        if not 0.0 < self.spread_strength <= 10.0:
            raise ValueError("spread_strength must be in (0, 10]")
        if not 0.0 <= self.cts_effort <= 1.0:
            raise ValueError("cts_effort must be in [0, 1]")
        if not self.router_tracks_per_um > 0:
            raise ValueError("router_tracks_per_um must be positive")
        if not 0.0 <= self.router_effort <= 1.0:
            raise ValueError("router_effort must be in [0, 1]")
        if self.router_max_iterations < 1:
            raise ValueError("router_max_iterations must be >= 1")
        if self.opt_passes < 1:
            raise ValueError("opt_passes must be >= 1")
        if self.opt_cells_per_pass < 1:
            raise ValueError("opt_cells_per_pass must be >= 1")
        if self.opt_guardband < 0 or not np.isfinite(self.opt_guardband):
            raise ValueError("opt_guardband must be non-negative and finite")
        if not isinstance(self.power_recovery, bool):
            raise ValueError("power_recovery must be a bool")

    @property
    def clock_period_ps(self) -> float:
        return 1000.0 / self.target_clock_ghz

    def to_dict(self) -> Dict:
        return asdict(self)

    def with_(self, **kwargs) -> "FlowOptions":
        """A copy with some options overridden."""
        return replace(self, **kwargs)

    @staticmethod
    def option_space_size(
        n_levels_continuous: int = 5,
    ) -> int:
        """Combinations if each knob is quantized to a few levels."""
        continuous = [
            "target_clock_ghz",
            "synth_effort",
            "utilization",
            "aspect_ratio",
            "spread_strength",
            "cts_effort",
            "router_tracks_per_um",
            "router_effort",
            "opt_guardband",
        ]
        discrete = {
            "placer_moves_per_cell": 4,
            "router_max_iterations": 3,
            "opt_passes": 4,
            "opt_cells_per_pass": 3,
            "power_recovery": 2,
        }
        total = 1
        for _ in continuous:
            total *= n_levels_continuous
        for n in discrete.values():
            total *= n
        return total


@dataclass
class StepLog:
    """One flow step's logfile record."""

    step: str
    metrics: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, List[float]] = field(default_factory=dict)
    runtime_proxy: float = 0.0

    def to_text(self) -> str:
        lines = [f"#--- step {self.step} (cost {self.runtime_proxy:.0f}) ---"]
        for key, value in sorted(self.metrics.items()):
            lines.append(f"{self.step}.{key} = {value:.4f}")
        for key, values in sorted(self.series.items()):
            for i, v in enumerate(values):
                lines.append(f"{self.step}.{key}[{i}] = {v:.4f}")
        return "\n".join(lines)


@dataclass
class FlowResult:
    """End-to-end QoR of one flow run."""

    design: str
    options: FlowOptions
    seed: int
    area: float = 0.0  # um^2, cells + clock buffers
    power: float = 0.0  # uW at target frequency
    leakage: float = 0.0
    wns: float = 0.0  # ps at signoff
    tns: float = 0.0
    achieved_ghz: float = 0.0
    hpwl: float = 0.0
    final_drvs: int = 0
    routed: bool = False
    timing_met: bool = False
    logs: List[StepLog] = field(default_factory=list)
    runtime_proxy: float = 0.0

    @property
    def success(self) -> bool:
        return self.routed and self.timing_met

    def meets(self, max_area: Optional[float] = None, max_power: Optional[float] = None) -> bool:
        """Success under optional area/power constraints (MAB reward)."""
        if not self.success:
            return False
        if max_area is not None and self.area > max_area:
            return False
        if max_power is not None and self.power > max_power:
            return False
        return True

    def log_text(self) -> str:
        header = (
            f"# SP&R flow log: design={self.design} seed={self.seed} "
            f"target={self.options.target_clock_ghz:.3f}GHz"
        )
        return "\n".join([header] + [log.to_text() for log in self.logs])


class SPRFlow:
    """The full synthesis/place/route flow over the simulated substrate.

    Since the stage decomposition, this class is a thin driver over the
    composable pipeline in :mod:`repro.eda.stages`: each stage (synth,
    floorplan, place, CTS, global route, opt, detailed route + signoff)
    is its own tool consuming and producing explicit artifacts.  The
    driver is API- and bit-identical to the historical monolithic
    implementation — same step-seed draw order, same step logs, same
    :class:`FlowResult` — which the staged-vs-monolith equivalence
    suite pins against a frozen copy of the old body.
    """

    def __init__(self, stop_callback=None):
        """``stop_callback(history) -> bool`` is forwarded to detailed
        routing (the hook doomed-run predictors plug into)."""
        self.stop_callback = stop_callback

    def run(self, spec: DesignSpec, options: FlowOptions, seed: int = 0) -> FlowResult:
        """Full flow from a design spec (synthesis included)."""
        from repro.eda.stages.runner import execute_pipeline

        return execute_pipeline(spec, options, seed,
                                stop_callback=self.stop_callback)

    def implement(
        self,
        netlist: Netlist,
        options: FlowOptions,
        seed: int = 0,
        design_name: Optional[str] = None,
        synth_log: Optional[StepLog] = None,
        result_seed: Optional[int] = None,
    ) -> FlowResult:
        """Physical implementation of an existing netlist.

        The entry point partition-driven flows use: each block netlist
        (already extracted) goes through floorplan -> place -> CTS ->
        route -> opt -> signoff on its own.

        ``result_seed`` is the seed *reported* in the result (and its
        log header): :meth:`run` reports the caller's flow seed so
        ``FlowResult.seed`` always reproduces the run through the same
        entry point, while ``seed`` keeps driving step-seed derivation
        unchanged.
        """
        from repro.eda.stages.runner import execute_pipeline

        return execute_pipeline(netlist, options, seed,
                                stop_callback=self.stop_callback,
                                design_name=design_name, synth_log=synth_log,
                                result_seed=result_seed)


_LIBRARY = None
_LIBRARY_LOCK = threading.Lock()


def _default_library():
    """Lazily built, shared default library (cells are immutable).

    Double-checked locking: concurrent first callers (e.g. threads
    fanning jobs into an executor) must not each build a library —
    consumers compare cells by identity, and a torn global is visible
    garbage.  Worker processes instead build it eagerly in the
    executor's initializer.
    """
    global _LIBRARY
    if _LIBRARY is None:
        with _LIBRARY_LOCK:
            if _LIBRARY is None:
                from repro.eda.library import make_default_library

                _LIBRARY = make_default_library()
    return _LIBRARY
