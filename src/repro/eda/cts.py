"""Clock tree synthesis (lite).

Builds a recursive H-tree-style clustering of the flops, charges buffer
area per cluster level, and reports per-flop clock arrival skews.  The
skew magnitude shrinks with CTS effort; the residual is seeded noise
(a third contributor to implementation noise, after synthesis
restructuring and placement annealing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.eda.netlist import Netlist
from repro.eda.placement import Placement


@dataclass
class ClockTreeResult:
    """Per-flop skews (ps) plus tree cost metrics."""

    skews: Dict[str, float] = field(default_factory=dict)
    n_buffers: int = 0
    buffer_area: float = 0.0
    wirelength: float = 0.0

    @property
    def global_skew(self) -> float:
        """Max minus min clock arrival over all flops (ps)."""
        if not self.skews:
            return 0.0
        values = list(self.skews.values())
        return max(values) - min(values)


class ClockTreeSynthesizer:
    """Recursive-bisection clock tree builder."""

    def __init__(self, effort: float = 0.5, max_cluster: int = 8):
        if not 0.0 <= effort <= 1.0:
            raise ValueError("effort must be in [0, 1]")
        if max_cluster < 2:
            raise ValueError("max_cluster must be >= 2")
        self.effort = effort
        self.max_cluster = max_cluster

    def synthesize(
        self, netlist: Netlist, placement: Placement, seed: Optional[int] = None
    ) -> ClockTreeResult:
        rng = np.random.default_rng(seed)
        flops = netlist.sequential_instances()
        result = ClockTreeResult()
        if not flops:
            return result

        positions = np.array([placement.positions[f.name] for f in flops])
        names = [f.name for f in flops]

        # recursive bisection: levels of the tree
        n_levels = 0
        clusters = [np.arange(len(flops))]
        while any(len(c) > self.max_cluster for c in clusters):
            n_levels += 1
            next_clusters = []
            for cluster in clusters:
                if len(cluster) <= self.max_cluster:
                    next_clusters.append(cluster)
                    continue
                pts = positions[cluster]
                axis = 0 if np.ptp(pts[:, 0]) >= np.ptp(pts[:, 1]) else 1
                median = np.median(pts[:, axis])
                low = cluster[pts[:, axis] <= median]
                high = cluster[pts[:, axis] > median]
                if len(low) == 0 or len(high) == 0:  # degenerate: split evenly
                    half = len(cluster) // 2
                    low, high = cluster[:half], cluster[half:]
                next_clusters += [low, high]
            clusters = next_clusters

        result.n_buffers = max(1, 2 ** n_levels - 1) + len(clusters)
        buf_area = 0.27 * 2  # BUF_X2 area
        result.buffer_area = result.n_buffers * buf_area

        # wirelength: sum of cluster spans plus trunk estimate
        span = 0.0
        for cluster in clusters:
            pts = positions[cluster]
            span += np.ptp(pts[:, 0]) + np.ptp(pts[:, 1])
        trunk = placement.floorplan.width + placement.floorplan.height
        result.wirelength = span + trunk * n_levels * 0.5

        # skew: systematic part from distance to the clock root (center),
        # random part shrinking with effort
        center = np.array([placement.floorplan.width / 2, placement.floorplan.height / 2])
        dists = np.linalg.norm(positions - center, axis=1)
        systematic = (dists - dists.mean()) * 0.4 * (1.0 - 0.7 * self.effort)
        sigma = 6.0 * (1.0 - 0.8 * self.effort) + 0.5
        random_part = rng.normal(0.0, sigma, size=len(flops))
        for name, skew in zip(names, systematic + random_part):
            result.skews[name] = float(skew)
        return result
