"""Global and detailed placement.

Two stages, mirroring a production flow:

1. :class:`QuadraticPlacer` — minimize quadratic wirelength with fixed
   IO pads (clique net model, dense linear solve), then rank-based
   spreading to relieve overlap.
2. :class:`AnnealingRefiner` — simulated-annealing detailed placement on
   a site grid, minimizing half-perimeter wirelength (HPWL).

The annealer's move acceptance depends on its seed; this is one of the
two real sources of the run-to-run "implementation noise" the paper's
Fig 3 characterizes (the other is synthesis restructuring).

Both stages ship two interchangeable kernels.  ``vectorize=True`` (the
default) runs the struct-of-arrays fast path: the legalizer builds its
site grid with batched macro masking, and the annealer keeps int-indexed
position arrays, a per-instance net-incidence table, and incrementally
maintained per-net bounding boxes so a move costs O(touched nets)
amortized instead of a rescan of every pin of every touched net.
``vectorize=False`` runs the historical per-object scalar loops.  The
two are bitwise-identical — same RNG draw order, same float operations
in the same order — and the scalar path is frozen as
``tests/eda/placement_reference.py`` with an equivalence suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.eda.floorplan import Floorplan, ROW_HEIGHT
from repro.eda.grid import bin_index
from repro.eda.netlist import Netlist

_CLIQUE_CAP = 8  # clique model samples at most this many pins per net


@dataclass
class Placement:
    """Cell coordinates within a floorplan, with wirelength metrics."""

    netlist: Netlist
    floorplan: Floorplan
    positions: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def hpwl(self) -> float:
        """Total half-perimeter wirelength over all signal nets (um)."""
        total = 0.0
        for net_name, pts in self._net_points().items():
            if len(pts) < 2:
                continue
            xs = [p[0] for p in pts]
            ys = [p[1] for p in pts]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    def net_length(self, net_name: str) -> float:
        """HPWL of one net (um)."""
        pts = self._points_for(net_name)
        if len(pts) < 2:
            return 0.0
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def _points_for(self, net_name: str) -> List[Tuple[float, float]]:
        net = self.netlist.nets[net_name]
        pts = []
        if net.driver is not None:
            pts.append(self.positions[net.driver])
        for inst_name, _ in net.sinks:
            pts.append(self.positions[inst_name])
        pad = self.floorplan.pad_positions.get(net_name)
        if pad is not None:
            pts.append(pad)
        return pts

    def _net_points(self) -> Dict[str, List[Tuple[float, float]]]:
        skip = {self.netlist.clock_net}
        return {
            name: self._points_for(name)
            for name in self.netlist.nets
            if name not in skip
        }

    def density_map(self, nx: int = 16, ny: int = 16) -> np.ndarray:
        """Cell-area utilization per bin (1.0 = bin completely full)."""
        if nx < 1 or ny < 1:
            raise ValueError("grid dimensions must be >= 1")
        grid = np.zeros((ny, nx))
        bx = self.floorplan.width / nx
        by = self.floorplan.height / ny
        for name, (x, y) in self.positions.items():
            i = bin_index(x, self.floorplan.width, nx)
            j = bin_index(y, self.floorplan.height, ny)
            grid[j, i] += self.netlist.instances[name].cell.area
        return grid / (bx * by)

    def validate(self) -> None:
        """All instances placed, inside the core, outside macros."""
        for name in self.netlist.instances:
            if name not in self.positions:
                raise ValueError(f"instance {name} is not placed")
            x, y = self.positions[name]
            if not self.floorplan.contains(x, y):
                raise ValueError(f"instance {name} at ({x:.2f},{y:.2f}) is off-core")
            if self.floorplan.in_macro(x, y):
                raise ValueError(f"instance {name} overlaps a macro")


class QuadraticPlacer:
    """Analytic global placement: quadratic wirelength + spreading."""

    def __init__(self, spread_strength: float = 0.8, vectorize: bool = True):
        if not 0.0 <= spread_strength <= 1.0:
            raise ValueError("spread_strength must be in [0, 1]")
        self.spread_strength = spread_strength
        self.vectorize = vectorize

    def place(
        self, netlist: Netlist, floorplan: Floorplan, seed: Optional[int] = None
    ) -> Placement:
        rng = np.random.default_rng(seed)
        names = list(netlist.instances)
        index = {n: i for i, n in enumerate(names)}
        n = len(names)
        if n == 0:
            return Placement(netlist, floorplan, {})

        lap = np.zeros((n, n))
        bx = np.zeros(n)
        by = np.zeros(n)
        anchor = 1e-6  # regularize unconnected components
        lap[np.diag_indices(n)] += anchor
        cx, cy = floorplan.width / 2, floorplan.height / 2
        bx += anchor * cx
        by += anchor * cy

        for net_name, net in netlist.nets.items():
            if net_name == netlist.clock_net:
                continue
            members = []
            if net.driver is not None:
                members.append(index[net.driver])
            members += [index[s] for s, _ in net.sinks]
            members = list(dict.fromkeys(members))
            pad = floorplan.pad_positions.get(net_name)
            k = len(members) + (1 if pad is not None else 0)
            if k < 2:
                continue
            w = 1.0 / (k - 1)
            if len(members) > _CLIQUE_CAP:
                members = [members[int(i)] for i in rng.choice(len(members), _CLIQUE_CAP, replace=False)]
            for a_pos, a in enumerate(members):
                for b in members[a_pos + 1 :]:
                    lap[a, a] += w
                    lap[b, b] += w
                    lap[a, b] -= w
                    lap[b, a] -= w
                if pad is not None:
                    lap[a, a] += w
                    bx[a] += w * pad[0]
                    by[a] += w * pad[1]

        xs = np.linalg.solve(lap, bx)
        ys = np.linalg.solve(lap, by)
        xs, ys = self._spread(xs, ys, floorplan)
        positions = {name: (float(xs[i]), float(ys[i])) for name, i in index.items()}
        placement = Placement(netlist, floorplan, positions)
        _legalize(placement, rng, vectorize=self.vectorize)
        return placement

    def _spread(self, xs: np.ndarray, ys: np.ndarray, fp: Floorplan):
        """Blend analytic coordinates with rank-uniform coordinates."""
        n = xs.shape[0]
        alpha = self.spread_strength
        rank_x = np.empty(n)
        rank_x[np.argsort(xs, kind="stable")] = (np.arange(n) + 0.5) / n * fp.width
        rank_y = np.empty(n)
        rank_y[np.argsort(ys, kind="stable")] = (np.arange(n) + 0.5) / n * fp.height
        xs = (1 - alpha) * xs + alpha * rank_x
        ys = (1 - alpha) * ys + alpha * rank_y
        return np.clip(xs, 0, fp.width), np.clip(ys, 0, fp.height)


def _free_sites_scalar(fp: Floorplan, n_rows: int, sites_per_row: int,
                       pitch: float) -> np.ndarray:
    """Row-major legal site coordinates, per-site macro checks."""
    free_sites = []
    for r in range(n_rows):
        y = (r + 0.5) * ROW_HEIGHT
        for c in range(sites_per_row):
            x = (c + 0.5) * pitch
            if not fp.in_macro(x, y):
                free_sites.append((x, y))
    return np.array(free_sites).reshape(-1, 2)


def _free_sites_vectorized(fp: Floorplan, n_rows: int, sites_per_row: int,
                           pitch: float) -> np.ndarray:
    """Row-major legal site coordinates, batched macro masking.

    Bit-identical to :func:`_free_sites_scalar`: same per-site
    ``(c + 0.5) * pitch`` coordinate arithmetic, same half-open macro
    containment test, same row-major ordering.
    """
    xs = np.tile((np.arange(sites_per_row) + 0.5) * pitch, n_rows)
    ys = np.repeat((np.arange(n_rows) + 0.5) * ROW_HEIGHT, sites_per_row)
    blocked = np.zeros(xs.shape[0], dtype=bool)
    for m in fp.macros:
        blocked |= ((m.x <= xs) & (xs < m.x + m.width)
                    & (m.y <= ys) & (ys < m.y + m.height))
    keep = ~blocked
    return np.column_stack((xs[keep], ys[keep]))


def _legalize(placement: Placement, rng: np.random.Generator,
              vectorize: bool = True) -> None:
    """Snap cells to row/site grid, one cell per site, avoiding macros."""
    fp = placement.floorplan
    names = list(placement.positions)
    n = len(names)
    n_rows = fp.n_rows
    sites_per_row = max(1, int(np.ceil(n / n_rows * 1.25)))
    pitch = fp.width / sites_per_row

    if vectorize:
        site_arr = _free_sites_vectorized(fp, n_rows, sites_per_row, pitch)
    else:
        site_arr = _free_sites_scalar(fp, n_rows, sites_per_row, pitch)
    if site_arr.shape[0] < n:
        raise ValueError("floorplan has fewer legal sites than cells")

    # greedy nearest-site assignment in random order (seed-dependent)
    order = list(rng.permutation(n))
    taken = np.zeros(site_arr.shape[0], dtype=bool)
    for idx in order:
        name = names[idx]
        x, y = placement.positions[name]
        d2 = (site_arr[:, 0] - x) ** 2 + (site_arr[:, 1] - y) ** 2
        d2[taken] = np.inf
        best = int(np.argmin(d2))
        taken[best] = True
        placement.positions[name] = (float(site_arr[best, 0]), float(site_arr[best, 1]))


@dataclass(frozen=True)
class AnnealSchedule:
    """Temperatures the annealer actually evaluated moves at.

    ``first_temperature`` is exactly ``t_start`` (the historical kernel
    decayed before the first acceptance test, so no move ever saw it);
    ``last_temperature`` approaches ``t_end`` from above (the decay now
    fires only after an evaluated move, so ``a == b`` skips no longer
    drag the tail below ``t_end``).
    """

    first_temperature: float
    last_temperature: float
    n_evaluated: int


def _build_net_model(
    placement: Placement, net_weights: Optional[Dict[str, float]]
) -> Tuple[List[List[int]], List[Optional[Tuple[float, float]]], List[float], List[List[int]]]:
    """Int-indexed net model: members, fixed pad, weight, and the
    per-instance incidence lists (which nets each instance pins)."""
    netlist = placement.netlist
    names = list(netlist.instances)
    index = {nm: i for i, nm in enumerate(names)}
    n = len(names)
    nets_members: List[List[int]] = []
    nets_fixed: List[Optional[Tuple[float, float]]] = []
    nets_weight: List[float] = []
    inst_nets: List[List[int]] = [[] for _ in range(n)]
    for net_name, net in netlist.nets.items():
        if net_name == netlist.clock_net:
            continue
        members = []
        if net.driver is not None:
            members.append(index[net.driver])
        members += [index[s] for s, _ in net.sinks]
        members = list(dict.fromkeys(members))
        pad = placement.floorplan.pad_positions.get(net_name)
        if len(members) + (1 if pad is not None else 0) < 2:
            continue
        net_id = len(nets_members)
        nets_members.append(members)
        nets_fixed.append(pad)
        weight = 1.0 if net_weights is None else float(net_weights.get(net_name, 1.0))
        if weight <= 0:
            raise ValueError(f"net weight for {net_name} must be positive")
        nets_weight.append(weight)
        for m in members:
            inst_nets[m].append(net_id)
    return nets_members, nets_fixed, nets_weight, inst_nets


class AnnealingRefiner:
    """Simulated-annealing detailed placement (cell swaps on sites).

    After :meth:`refine` runs, :attr:`last_schedule` holds the
    temperatures actually evaluated (an :class:`AnnealSchedule`, or
    ``None`` when no move was evaluated).
    """

    def __init__(
        self,
        moves_per_cell: int = 30,
        t_start: float = 4.0,
        t_end: float = 0.05,
        vectorize: bool = True,
    ):
        if moves_per_cell < 1:
            raise ValueError("moves_per_cell must be >= 1")
        self.moves_per_cell = moves_per_cell
        self.t_start = t_start
        self.t_end = t_end
        self.vectorize = vectorize
        self.last_schedule: Optional[AnnealSchedule] = None

    def refine(
        self,
        placement: Placement,
        seed: Optional[int] = None,
        net_weights: Optional[Dict[str, float]] = None,
    ) -> float:
        """Improve (weighted) HPWL in place; returns the final plain HPWL.

        ``net_weights`` biases the objective per net (>=1 emphasizes a
        net) — the hook congestion-driven re-placement uses to shorten
        nets that route through overfull regions.
        """
        rng = np.random.default_rng(seed)
        netlist = placement.netlist
        names = list(netlist.instances)
        n = len(names)
        self.last_schedule = None
        if n < 2:
            return placement.hpwl()

        pos_x = [placement.positions[nm][0] for nm in names]
        pos_y = [placement.positions[nm][1] for nm in names]
        nets_members, nets_fixed, nets_weight, inst_nets = _build_net_model(
            placement, net_weights
        )

        n_moves = self.moves_per_cell * n
        cool = (self.t_end / self.t_start) ** (1.0 / max(1, n_moves - 1))
        pairs = rng.integers(0, n, size=(n_moves, 2))
        uniforms = rng.random(n_moves)
        if self.vectorize:
            self._anneal_fast(pos_x, pos_y, nets_members, nets_fixed,
                              nets_weight, inst_nets, pairs, uniforms, cool)
        else:
            self._anneal_scalar(pos_x, pos_y, nets_members, nets_fixed,
                                nets_weight, inst_nets, pairs, uniforms, cool)

        for i, nm in enumerate(names):
            placement.positions[nm] = (pos_x[i], pos_y[i])
        return placement.hpwl()

    # ------------------------------------------------------------- scalar
    def _anneal_scalar(self, pos_x, pos_y, nets_members, nets_fixed,
                       nets_weight, inst_nets, pairs, uniforms, cool) -> None:
        """Per-move full rescan of every touched net (frozen reference)."""

        def net_hpwl(net_id: int) -> float:
            members = nets_members[net_id]
            pad = nets_fixed[net_id]
            if pad is not None:
                x_lo = x_hi = pad[0]
                y_lo = y_hi = pad[1]
            else:
                first = members[0]
                x_lo = x_hi = pos_x[first]
                y_lo = y_hi = pos_y[first]
            for m in members:
                x = pos_x[m]
                y = pos_y[m]
                if x < x_lo:
                    x_lo = x
                elif x > x_hi:
                    x_hi = x
                if y < y_lo:
                    y_lo = y
                elif y > y_hi:
                    y_hi = y
            return ((x_hi - x_lo) + (y_hi - y_lo)) * nets_weight[net_id]

        t = self.t_start
        first_t = last_t = None
        n_eval = 0
        exp = math.exp
        for move in range(pairs.shape[0]):
            a, b = int(pairs[move, 0]), int(pairs[move, 1])
            if a == b:
                continue
            seen = set(inst_nets[a])
            touched = inst_nets[a] + [nid for nid in inst_nets[b] if nid not in seen]
            before = 0.0
            for net_id in touched:
                before += net_hpwl(net_id)
            pos_x[a], pos_x[b] = pos_x[b], pos_x[a]
            pos_y[a], pos_y[b] = pos_y[b], pos_y[a]
            after = 0.0
            for net_id in touched:
                after += net_hpwl(net_id)
            delta = after - before
            if delta > 0 and uniforms[move] >= exp(-delta / t):
                pos_x[a], pos_x[b] = pos_x[b], pos_x[a]  # reject
                pos_y[a], pos_y[b] = pos_y[b], pos_y[a]
            if first_t is None:
                first_t = t
            last_t = t
            n_eval += 1
            t *= cool
        if n_eval:
            self.last_schedule = AnnealSchedule(first_t, last_t, n_eval)

    # --------------------------------------------------------------- fast
    def _anneal_fast(self, pos_x, pos_y, nets_members, nets_fixed,
                     nets_weight, inst_nets, pairs, uniforms, cool) -> None:
        """Incremental kernel: per-net extreme statistics.

        For every net the kernel caches its cost plus, per side of the
        bounding box, the extreme coordinate and the extreme the box
        falls back to when the *unique* holder of that extreme moves
        away (the second-distinct extreme, or the extreme itself when
        it is shared).  Pricing a swap is then O(1) per touched net —
        compare the moving pin's coordinate against the cached extreme
        to get the bbox of the *other* pins (pad included as a
        pseudo-pin), fold in the incoming coordinate — independent of
        fanout, where the scalar kernel rescans every pin, O(fanout).

        Caches change only on *accepted* moves (a few percent), where a
        single O(k) pass recomputes each touched net; nets containing
        both swapped cells are skipped even there, because a swap
        leaves the net's coordinate multiset unchanged.  Rejected moves
        leave all state untouched, so there is no rollback bookkeeping.
        min/max are value-based and order-independent, and the delta
        accumulates over touched nets in the same order as the scalar
        kernel, so every acceptance decision is bitwise-identical.
        """
        n_nets = len(nets_members)
        member_sets = [frozenset(m) for m in nets_members]
        inst_net_sets = [frozenset(l) for l in inst_nets]
        cost = [0.0] * n_nets
        # flat per-net stats: [xl, xl', xh, xh', yl, yl', yh, yh'] where
        # v' is the side's extreme over the remaining pins if the unique
        # holder of v leaves (== v when the extreme is shared)
        stats = [None] * n_nets
        inf = math.inf

        def rebuild(nid: int) -> None:
            """Recompute cost and extreme stats of one net, O(k)."""
            pad = nets_fixed[nid]
            xl = yl = xl2 = yl2 = inf
            xh = yh = xh2 = yh2 = -inf
            cxl = cxh = cyl = cyh = 0
            for m in nets_members[nid]:
                x = pos_x[m]
                if x < xl:
                    xl2 = xl
                    xl = x
                    cxl = 1
                elif x == xl:
                    cxl += 1
                elif x < xl2:
                    xl2 = x
                if x > xh:
                    xh2 = xh
                    xh = x
                    cxh = 1
                elif x == xh:
                    cxh += 1
                elif x > xh2:
                    xh2 = x
                y = pos_y[m]
                if y < yl:
                    yl2 = yl
                    yl = y
                    cyl = 1
                elif y == yl:
                    cyl += 1
                elif y < yl2:
                    yl2 = y
                if y > yh:
                    yh2 = yh
                    yh = y
                    cyh = 1
                elif y == yh:
                    cyh += 1
                elif y > yh2:
                    yh2 = y
            if pad is not None:
                x, y = pad
                if x < xl:
                    xl2 = xl
                    xl = x
                    cxl = 1
                elif x == xl:
                    cxl += 1
                elif x < xl2:
                    xl2 = x
                if x > xh:
                    xh2 = xh
                    xh = x
                    cxh = 1
                elif x == xh:
                    cxh += 1
                elif x > xh2:
                    xh2 = x
                if y < yl:
                    yl2 = yl
                    yl = y
                    cyl = 1
                elif y == yl:
                    cyl += 1
                elif y < yl2:
                    yl2 = y
                if y > yh:
                    yh2 = yh
                    yh = y
                    cyh = 1
                elif y == yh:
                    cyh += 1
                elif y > yh2:
                    yh2 = y
            cost[nid] = ((xh - xl) + (yh - yl)) * nets_weight[nid]
            stats[nid] = [xl, xl2 if cxl == 1 else xl,
                          xh, xh2 if cxh == 1 else xh,
                          yl, yl2 if cyl == 1 else yl,
                          yh, yh2 if cyh == 1 else yh]

        for nid in range(n_nets):
            rebuild(nid)

        pair_list = pairs.tolist()
        u_list = uniforms.tolist()
        t = self.t_start
        first_t = None
        n_eval = 0
        exp = math.exp
        for move in range(len(pair_list)):
            a, b = pair_list[move]
            if a == b:
                continue
            sa = inst_net_sets[a]
            nets_a = inst_nets[a]
            ax = pos_x[a]
            ay = pos_y[a]
            bx = pos_x[b]
            by = pos_y[b]
            # before/after accumulate over the touched nets in scalar
            # order: a's nets first, then b's nets not shared with a
            before = 0.0
            after = 0.0
            for nid in nets_a:
                before += cost[nid]
                if b in member_sets[nid]:
                    after += cost[nid]  # swap within the net: no change
                    continue
                st = stats[nid]
                v = st[0]
                xl = st[1] if ax == v else v
                v = st[2]
                xh = st[3] if ax == v else v
                v = st[4]
                yl = st[5] if ay == v else v
                v = st[6]
                yh = st[7] if ay == v else v
                if bx < xl:
                    xl = bx
                elif bx > xh:
                    xh = bx
                if by < yl:
                    yl = by
                elif by > yh:
                    yh = by
                after += ((xh - xl) + (yh - yl)) * nets_weight[nid]
            for nid in inst_nets[b]:
                if nid in sa:
                    continue
                before += cost[nid]
                st = stats[nid]
                v = st[0]
                xl = st[1] if bx == v else v
                v = st[2]
                xh = st[3] if bx == v else v
                v = st[4]
                yl = st[5] if by == v else v
                v = st[6]
                yh = st[7] if by == v else v
                if ax < xl:
                    xl = ax
                elif ax > xh:
                    xh = ax
                if ay < yl:
                    yl = ay
                elif ay > yh:
                    yh = ay
                after += ((xh - xl) + (yh - yl)) * nets_weight[nid]
            delta = after - before
            if not (delta > 0 and u_list[move] >= exp(-delta / t)):
                # accept: apply the swap and rebuild the touched caches
                # (nets holding both cells keep their multiset — skip)
                pos_x[a] = bx
                pos_y[a] = by
                pos_x[b] = ax
                pos_y[b] = ay
                sb = inst_net_sets[b]
                for nid in nets_a:
                    if nid not in sb:
                        rebuild(nid)
                for nid in inst_nets[b]:
                    if nid not in sa:
                        rebuild(nid)
            if first_t is None:
                first_t = t
            last_t = t
            n_eval += 1
            t *= cool
        if n_eval:
            self.last_schedule = AnnealSchedule(first_t, last_t, n_eval)
