"""Synthetic 14nm-class standard-cell library.

Cells follow a linear delay model::

    delay(load, slew_in) = intrinsic + drive_resistance * load
                           + slew_sensitivity * slew_in
    slew_out(load)       = slew_intrinsic + slew_resistance * load

Units are arbitrary but consistent: time in picoseconds, capacitance in
femtofarads, area in square microns, power in microwatts.  Three VT
classes trade leakage for speed (LVT fastest / leakiest, HVT slowest /
lowest leakage) and four drive strengths trade area/input-cap for drive
resistance — enough structure for sizing and VT-swap optimization to be
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

# VT class speed/leakage multipliers relative to SVT.
VT_CLASSES: Dict[str, Tuple[float, float]] = {
    # name: (delay multiplier, leakage multiplier)
    "LVT": (0.82, 4.0),
    "SVT": (1.00, 1.0),
    "HVT": (1.22, 0.25),
}

DRIVE_STRENGTHS: Tuple[int, ...] = (1, 2, 4, 8)


@dataclass(frozen=True)
class Cell:
    """One library cell (a specific function/drive/VT combination)."""

    name: str
    function: str  # e.g. "NAND2"
    n_inputs: int
    drive: int  # relative drive strength (1, 2, 4, 8)
    vt: str  # "LVT" | "SVT" | "HVT"
    area: float  # um^2
    input_cap: float  # fF per input pin
    intrinsic_delay: float  # ps
    drive_resistance: float  # ps per fF of load
    slew_sensitivity: float  # ps of delay per ps of input slew
    slew_intrinsic: float  # ps
    slew_resistance: float  # ps per fF of load
    leakage: float  # uW
    switch_energy: float  # fJ per output toggle
    is_sequential: bool = False

    def delay(self, load_cap: float, input_slew: float = 10.0) -> float:
        """Pin-to-pin delay (ps) for a given load and input slew."""
        if load_cap < 0:
            raise ValueError("load capacitance must be non-negative")
        return (
            self.intrinsic_delay
            + self.drive_resistance * load_cap
            + self.slew_sensitivity * input_slew
        )

    def output_slew(self, load_cap: float) -> float:
        """Output transition time (ps) for a given load."""
        if load_cap < 0:
            raise ValueError("load capacitance must be non-negative")
        return self.slew_intrinsic + self.slew_resistance * load_cap


# Base (X1, SVT) electrical parameters per logic function.
_BASE_FUNCTIONS = {
    # function: (n_inputs, area, input_cap, intrinsic, r_drive, slew_sens, seq)
    "INV": (1, 0.20, 0.8, 4.0, 2.8, 0.10, False),
    "BUF": (1, 0.27, 0.8, 7.5, 2.4, 0.08, False),
    "NAND2": (2, 0.29, 1.0, 5.5, 3.3, 0.12, False),
    "NOR2": (2, 0.29, 1.0, 6.5, 3.8, 0.13, False),
    "AND2": (2, 0.33, 1.0, 8.0, 3.0, 0.11, False),
    "OR2": (2, 0.33, 1.0, 8.6, 3.2, 0.11, False),
    "XOR2": (2, 0.47, 1.4, 10.5, 4.2, 0.16, False),
    "AOI21": (3, 0.40, 1.1, 7.6, 3.9, 0.14, False),
    "OAI21": (3, 0.40, 1.1, 7.9, 3.9, 0.14, False),
    "MUX2": (3, 0.51, 1.2, 9.8, 4.0, 0.15, False),
    "DFF": (2, 0.87, 1.2, 28.0, 3.6, 0.05, True),
}

# DFF timing constraints (ps) at X1/SVT; scaled like delays.
DFF_SETUP = 22.0
DFF_HOLD = 4.0
DFF_CLK_TO_Q = 28.0


def _make_cell(function: str, drive: int, vt: str) -> Cell:
    n_in, area, cap, intrinsic, r_drive, slew_sens, seq = _BASE_FUNCTIONS[function]
    vt_delay, vt_leak = VT_CLASSES[vt]
    # Larger drive: resistance down ~1/drive, area and input cap up.
    area_scaled = area * (0.55 + 0.45 * drive)
    cap_scaled = cap * (0.6 + 0.4 * drive)
    leakage = 0.012 * area_scaled * vt_leak
    switch_energy = 0.9 * cap_scaled
    return Cell(
        name=f"{function}_X{drive}_{vt}",
        function=function,
        n_inputs=n_in,
        drive=drive,
        vt=vt,
        area=round(area_scaled, 4),
        input_cap=round(cap_scaled, 4),
        intrinsic_delay=round(intrinsic * vt_delay, 4),
        drive_resistance=round(r_drive * vt_delay / drive, 4),
        slew_sensitivity=slew_sens,
        slew_intrinsic=round(3.0 * vt_delay, 4),
        slew_resistance=round(2.0 * vt_delay / drive, 4),
        leakage=round(leakage, 5),
        switch_energy=round(switch_energy, 4),
        is_sequential=seq,
    )


@dataclass
class StdCellLibrary:
    """A collection of :class:`Cell` objects with lookup helpers."""

    name: str
    cells: Dict[str, Cell] = field(default_factory=dict)
    wire_r_per_um: float = 1.2  # ps of Elmore R per um (lumped model)
    wire_c_per_um: float = 0.25  # fF per um

    def add(self, cell: Cell) -> None:
        if cell.name in self.cells:
            raise ValueError(f"duplicate cell {cell.name}")
        self.cells[cell.name] = cell

    def get(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(f"no cell named {name!r} in library {self.name}") from None

    def variants(self, function: str) -> List[Cell]:
        """All drive/VT variants implementing ``function``."""
        out = [c for c in self.cells.values() if c.function == function]
        if not out:
            raise KeyError(f"no cells implement {function!r}")
        return sorted(out, key=lambda c: (c.drive, c.vt))

    def pick(self, function: str, drive: int = 1, vt: str = "SVT") -> Cell:
        """The specific variant of ``function`` at (drive, vt)."""
        return self.get(f"{function}_X{drive}_{vt}")

    def resize(self, cell: Cell, new_drive: int) -> Cell:
        """Same function and VT at a different drive strength."""
        if new_drive not in DRIVE_STRENGTHS:
            raise ValueError(f"unsupported drive {new_drive}")
        return self.pick(cell.function, new_drive, cell.vt)

    def swap_vt(self, cell: Cell, new_vt: str) -> Cell:
        """Same function and drive at a different VT class."""
        if new_vt not in VT_CLASSES:
            raise ValueError(f"unsupported VT class {new_vt}")
        return self.pick(cell.function, cell.drive, new_vt)

    @property
    def functions(self) -> List[str]:
        return sorted({c.function for c in self.cells.values()})


def make_default_library(name: str = "synth14") -> StdCellLibrary:
    """Build the full synthetic library: 11 functions x 4 drives x 3 VTs."""
    lib = StdCellLibrary(name=name)
    for function in _BASE_FUNCTIONS:
        for drive in DRIVE_STRENGTHS:
            for vt in VT_CLASSES:
                lib.add(_make_cell(function, drive, vt))
    return lib
