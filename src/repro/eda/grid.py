"""Shared gcell/bin index computation.

Three layers historically hand-rolled the "which bin does this
coordinate fall in" computation — :meth:`Placement.density_map`,
the STA kernel's congestion lookup and
:func:`repro.eda.congestion.congestion_net_weights` — with subtly
different expressions (``x / bin_width`` vs ``x / extent * n``), so a
coordinate exactly on a bin boundary (or off-core) could land in
different bins depending on who asked.  These helpers are the single
definition: floor of ``coord / extent * n_bins``, clamped to
``[0, n_bins - 1]``, in both scalar and vectorized form.

Clamping makes floor and truncate-toward-zero agree for every real
input (negative coordinates clamp to bin 0 either way), so the scalar
helper is bit-compatible with the historical ``int()``-based sites
that divided by the full extent.
"""

from __future__ import annotations

import math

import numpy as np


def bin_index(coord: float, extent: float, n_bins: int) -> int:
    """Bin of ``coord`` on ``[0, extent)`` split into ``n_bins`` bins.

    Floor-based and clamped: coordinates below 0 map to bin 0,
    coordinates at or beyond ``extent`` map to ``n_bins - 1``.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    if extent <= 0:
        raise ValueError("extent must be positive")
    return min(n_bins - 1, max(0, int(math.floor(coord / extent * n_bins))))


def bin_indices(coords: np.ndarray, extent: float, n_bins: int) -> np.ndarray:
    """Vectorized :func:`bin_index` over an array of coordinates."""
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    if extent <= 0:
        raise ValueError("extent must be positive")
    coords = np.asarray(coords, dtype=float)
    raw = np.floor(coords / extent * n_bins).astype(np.int64)
    return np.clip(raw, 0, n_bins - 1)


def gcell_indices(
    xs: np.ndarray,
    ys: np.ndarray,
    width: float,
    height: float,
    nx: int,
    ny: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Gcell ``(i, j)`` columns/rows for point arrays on an ``ny x nx`` grid.

    The batched form of calling :func:`bin_index` on both coordinates —
    the global router's binning, shared with the congestion and density
    consumers so a point on a gcell boundary lands in the same gcell no
    matter which kernel asks.
    """
    return bin_indices(xs, width, nx), bin_indices(ys, height, ny)
