"""Rectilinear net-topology estimators: RMST and approximate RSMT.

Half-perimeter wirelength (HPWL) is exact only for 2-3 pin nets; for
bigger nets a tree estimate is needed.  This module provides:

- :func:`rmst_length` — rectilinear minimum spanning tree (Prim), an
  upper bound on the Steiner tree within a factor of 1.5;
- :func:`rsmt_length` — a greedy 1-Steiner approximation of the
  rectilinear Steiner minimal tree (iteratively add the Hanan point
  that shrinks the MST most);
- :meth:`Placement`-compatible helpers used for wire-model ablations.

Invariants (tested): ``hpwl <= rsmt <= rmst`` for every point set, with
equality of rsmt/hpwl on 2-pin nets.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

Point = Tuple[float, float]


def hpwl_length(points: Sequence[Point]) -> float:
    """Half-perimeter of the bounding box (lower bound on any tree)."""
    if len(points) < 2:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def rmst_length(points: Sequence[Point]) -> float:
    """Rectilinear minimum spanning tree length (Prim's algorithm)."""
    n = len(points)
    if n < 2:
        return 0.0
    pts = np.asarray(points, dtype=float)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    # distance of each node to the tree
    dist = np.abs(pts[:, 0] - pts[0, 0]) + np.abs(pts[:, 1] - pts[0, 1])
    dist[0] = np.inf
    total = 0.0
    for _ in range(n - 1):
        nxt = int(np.argmin(np.where(in_tree, np.inf, dist)))
        total += float(dist[nxt])
        in_tree[nxt] = True
        new_dist = np.abs(pts[:, 0] - pts[nxt, 0]) + np.abs(pts[:, 1] - pts[nxt, 1])
        dist = np.minimum(dist, new_dist)
    return total


def _hanan_points(points: Sequence[Point]) -> List[Point]:
    xs = sorted({p[0] for p in points})
    ys = sorted({p[1] for p in points})
    existing = set(points)
    return [(x, y) for x in xs for y in ys if (x, y) not in existing]


def rsmt_length(points: Sequence[Point], max_steiner: int = 8) -> float:
    """Greedy 1-Steiner RSMT approximation.

    Repeatedly adds the Hanan-grid point that most reduces the RMST
    length, until no point helps or ``max_steiner`` points were added.
    For nets of up to ~10 pins this is close to optimal; it is always
    between HPWL and the plain RMST.
    """
    if len(points) < 2:
        return 0.0
    working: List[Point] = list(dict.fromkeys(points))
    best = rmst_length(working)
    for _ in range(max_steiner):
        candidates = _hanan_points(working)
        if not candidates:
            break
        improved = None
        for candidate in candidates:
            trial = rmst_length(working + [candidate])
            if trial < best - 1e-12:
                best = trial
                improved = candidate
        if improved is None:
            break
        working.append(improved)
    return best


def net_length(
    placement, net_name: str, model: str = "hpwl"
) -> float:
    """Length of one placed net under a chosen wire model.

    ``model``: "hpwl" (default, what the timer uses), "rmst" or "rsmt".
    Accepts a :class:`repro.eda.placement.Placement`.
    """
    if model == "hpwl":
        return placement.net_length(net_name)
    net = placement.netlist.nets[net_name]
    points: List[Point] = []
    if net.driver is not None:
        points.append(placement.positions[net.driver])
    points += [placement.positions[s] for s, _ in net.sinks]
    pad = placement.floorplan.pad_positions.get(net_name)
    if pad is not None:
        points.append(pad)
    if model == "rmst":
        return rmst_length(points)
    if model == "rsmt":
        return rsmt_length(points)
    raise ValueError(f"unknown wire model {model!r}")


def total_wirelength(placement, model: str = "hpwl") -> float:
    """Sum of net lengths under a wire model (clock net excluded)."""
    clock = placement.netlist.clock_net
    return sum(
        net_length(placement, name, model)
        for name in placement.netlist.nets
        if name != clock
    )
