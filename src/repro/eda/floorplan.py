"""Die floorplan: core area, rows, IO pad ring, optional macros.

The floorplan fixes the geometry placement and routing operate in.  Die
area is derived from total cell area and a target utilization; IO pads
for primary inputs/outputs are distributed on the core boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.eda.netlist import Netlist

ROW_HEIGHT = 1.0  # um; all cells are single-row-height


@dataclass(frozen=True)
class Macro:
    """A pre-placed rectangular blockage (e.g. a memory)."""

    name: str
    x: float
    y: float
    width: float
    height: float

    def overlaps(self, other: "Macro") -> bool:
        return not (
            self.x + self.width <= other.x
            or other.x + other.width <= self.x
            or self.y + self.height <= other.y
            or other.y + other.height <= self.y
        )


@dataclass
class Floorplan:
    """Core region geometry plus fixed IO pad locations."""

    width: float
    height: float
    utilization: float
    pad_positions: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    macros: List[Macro] = field(default_factory=list)

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def n_rows(self) -> int:
        return max(1, int(self.height / ROW_HEIGHT))

    def add_macro(self, macro: Macro) -> None:
        if macro.x < 0 or macro.y < 0 or macro.x + macro.width > self.width or macro.y + macro.height > self.height:
            raise ValueError(f"macro {macro.name} lies outside the core")
        for other in self.macros:
            if macro.overlaps(other):
                raise ValueError(f"macro {macro.name} overlaps {other.name}")
        self.macros.append(macro)

    def macro_area(self) -> float:
        return sum(m.width * m.height for m in self.macros)

    def contains(self, x: float, y: float) -> bool:
        return 0.0 <= x <= self.width and 0.0 <= y <= self.height

    def in_macro(self, x: float, y: float) -> bool:
        return any(
            m.x <= x < m.x + m.width and m.y <= y < m.y + m.height for m in self.macros
        )


def make_floorplan(
    netlist: Netlist,
    utilization: float = 0.70,
    aspect_ratio: float = 1.0,
) -> Floorplan:
    """Size a core for ``netlist`` and ring it with IO pads.

    ``utilization`` is cell area / core area (higher = denser, harder to
    route — the lever behind congestion experiments).  ``aspect_ratio``
    is height / width.
    """
    if not 0.05 <= utilization <= 0.98:
        raise ValueError("utilization must be in [0.05, 0.98]")
    if aspect_ratio <= 0:
        raise ValueError("aspect_ratio must be positive")
    core_area = netlist.total_area / utilization
    width = (core_area / aspect_ratio) ** 0.5
    height = core_area / width
    # quantize height to an integer number of rows
    height = max(ROW_HEIGHT, round(height / ROW_HEIGHT) * ROW_HEIGHT)
    fp = Floorplan(width=width, height=height, utilization=utilization)

    # pads: PIs along left/top edges, POs along right/bottom edges
    def spread(names: List[str], edges: List[str]) -> None:
        for i, name in enumerate(names):
            edge = edges[i % len(edges)]
            frac = (i // len(edges) + 0.5) / max(1, (len(names) + len(edges) - 1) // len(edges))
            if edge == "left":
                fp.pad_positions[name] = (0.0, frac * height)
            elif edge == "right":
                fp.pad_positions[name] = (width, frac * height)
            elif edge == "top":
                fp.pad_positions[name] = (frac * width, height)
            else:
                fp.pad_positions[name] = (frac * width, 0.0)

    spread(list(netlist.primary_inputs), ["left", "top"])
    spread(list(netlist.primary_outputs), ["right", "bottom"])
    return fp
