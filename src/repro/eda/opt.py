"""Timing/power optimization engine: sizing, VT swap, power recovery.

The engine iterates STA and netlist surgery the way a P&R tool's
optDesign step does:

- while timing fails: upsize and LVT-swap cells on the worst paths;
- once timing meets: downsize and HVT-swap cells with abundant slack
  (power recovery), without letting WNS go negative.

Both loops make seed-dependent tie-breaking choices, so near the
maximum achievable frequency the outcome (area, leakage) is noisy —
the mechanism behind the paper's Fig 3.  The miscorrelation experiment
(Sec 3.2) also uses this engine: pessimistic guardbands force it to do
*unneeded* sizing work, costing area and power.

Since the :mod:`repro.eda.sta` refactor the optimizer queries timing
*incrementally*: each surgery pass reports the instances it touched,
and the shared :class:`~repro.eda.sta.graph.TimingGraph` re-propagates
only their forward cones instead of re-running full STA.  Reports (and
therefore every sizing decision) are bit-identical to the historical
full-reanalysis loop; only the ``runtime_proxy`` charged per query
shrinks.  Pass ``incremental=False`` to run the historical loop —
the benchmark uses it as the cost baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.eda.library import DRIVE_STRENGTHS
from repro.eda.netlist import Netlist
from repro.eda.placement import Placement
from repro.eda.sta import StaStats, TimingGraph, TimingReport, _BaseSTA


@dataclass
class OptResult:
    """Outcome of one optimization run."""

    passes: int
    upsizes: int = 0
    downsizes: int = 0
    vt_swaps: int = 0
    final_report: Optional[TimingReport] = None
    area_delta: float = 0.0
    leakage_delta: float = 0.0
    history: List[float] = field(default_factory=list)  # wns per pass
    sta_stats: Optional[StaStats] = None  # timing-work accounting

    @property
    def total_ops(self) -> int:
        return self.upsizes + self.downsizes + self.vt_swaps


class TimingOptimizer:
    """Slack-driven sizing and VT assignment."""

    def __init__(
        self,
        max_passes: int = 8,
        cells_per_pass: int = 24,
        guardband: float = 0.0,
        recover_power: bool = True,
    ):
        """``guardband`` (ps) is added pessimism: the optimizer treats an
        endpoint as failing unless its slack exceeds the guardband.  The
        miscorrelation experiments sweep this to quantify the cost of
        "aiming low"."""
        if max_passes < 1:
            raise ValueError("max_passes must be >= 1")
        if cells_per_pass < 1:
            raise ValueError("cells_per_pass must be >= 1")
        if guardband < 0:
            raise ValueError("guardband must be non-negative")
        self.max_passes = max_passes
        self.cells_per_pass = cells_per_pass
        self.guardband = guardband
        self.recover_power = recover_power

    def optimize(
        self,
        netlist: Netlist,
        placement: Placement,
        clock_period: float,
        sta: _BaseSTA,
        skews: Optional[Dict[str, float]] = None,
        congestion=None,
        seed: Optional[int] = None,
        incremental: bool = True,
        graph: Optional[TimingGraph] = None,
    ) -> OptResult:
        """Close timing (then recover power) against one timer.

        With ``incremental=True`` (default) the loop keeps one
        :class:`TimingGraph` alive and re-propagates only the cones of
        touched instances between passes; ``incremental=False`` re-runs
        ``sta.analyze`` per pass (the historical behavior, kept as the
        cost baseline).  An already-built ``graph`` for the same
        (netlist, placement) may be passed to skip reconstruction — the
        stage layer threads one through :class:`PipelineState`.
        """
        rng = np.random.default_rng(seed)
        area_before = netlist.total_area
        leak_before = netlist.total_leakage
        result = OptResult(passes=0)

        if incremental:
            if graph is None:
                graph = sta.build_graph(
                    netlist, placement, skews=skews, congestion=congestion
                )
            stats = graph.stats
            graph.full_propagate()
            report = graph.report(clock_period)
        else:
            graph = None
            stats = StaStats()
            report = sta.analyze(netlist, placement, clock_period, skews, congestion)
            stats.full_propagates += 1
            stats.proxy_executed += report.runtime_proxy
            stats.proxy_full_equivalent += report.runtime_proxy

        worst = report.worst_endpoint()
        result.history.append(worst.slack if worst is not None else float("inf"))
        for _ in range(self.max_passes):
            result.passes += 1
            wns = worst.slack if worst is not None else float("inf")
            effective_wns = wns - self.guardband
            if effective_wns < 0:
                touched = self._fix_timing(netlist, placement, report, rng, result)
            elif self.recover_power:
                touched = self._recover_power(netlist, report, rng, result)
            else:
                touched = []
            if not touched:
                break
            if graph is not None:
                graph.update(touched)
                report = graph.report(clock_period)
            else:
                report = sta.analyze(netlist, placement, clock_period, skews, congestion)
                stats.full_propagates += 1
                stats.proxy_executed += report.runtime_proxy
                stats.proxy_full_equivalent += report.runtime_proxy
            worst = report.worst_endpoint()
            result.history.append(worst.slack if worst is not None else float("inf"))
            if (
                worst is not None
                and worst.slack - self.guardband >= 0
                and not self.recover_power
            ):
                break

        result.final_report = report
        result.area_delta = netlist.total_area - area_before
        result.leakage_delta = netlist.total_leakage - leak_before
        result.sta_stats = stats
        return result

    # ------------------------------------------------------------------
    def _output_load(self, netlist, placement, inst) -> float:
        """Capacitance the instance drives (pins + wire)."""
        lib = netlist.library
        net = netlist.nets[inst.output_net]
        load = sum(netlist.instances[s].cell.input_cap for s, _ in net.sinks)
        load += lib.wire_c_per_um * placement.net_length(inst.output_net)
        return load

    def _upsize_gain(self, netlist, placement, inst, new_cell) -> float:
        """Estimated path-delay change (negative = faster) of a swap.

        Accounts for both the cell's own drive improvement and the
        penalty its larger input pins inflict on predecessor stages —
        blind upsizing on deeply-failing designs otherwise backfires.
        """
        cell = inst.cell
        load = self._output_load(netlist, placement, inst)
        delta_self = (
            (new_cell.intrinsic_delay - cell.intrinsic_delay)
            + (new_cell.drive_resistance - cell.drive_resistance) * load
        )
        delta_cap = new_cell.input_cap - cell.input_cap
        delta_pred = 0.0
        for net_name in inst.input_nets:
            driver = netlist.nets[net_name].driver
            if driver is not None:
                delta_pred += netlist.instances[driver].cell.drive_resistance * delta_cap
        return delta_self + delta_pred

    def _fix_timing(self, netlist, placement, report, rng, result) -> List[str]:
        """Upsize / LVT-swap path cells, best estimated gain first.

        Returns the names of the instances actually modified (empty
        list when the pass made no progress) so the caller can
        invalidate exactly their timing cones.
        """
        failing = sorted(
            (e for e in report.endpoints.values() if e.slack - self.guardband < 0),
            key=lambda e: e.slack,
        )
        candidates: List[str] = []
        seen = set()
        for ep in failing:
            for inst_name in report.paths.get(ep.endpoint, []):
                if inst_name not in seen:
                    seen.add(inst_name)
                    candidates.append(inst_name)
            if len(candidates) >= self.cells_per_pass * 3:
                break
        if not candidates:
            return []
        rng.shuffle(candidates)
        scored = []
        lib = netlist.library
        for inst_name in candidates:
            inst = netlist.instances[inst_name]
            cell = inst.cell
            best = None
            drive_idx = DRIVE_STRENGTHS.index(cell.drive)
            if drive_idx + 1 < len(DRIVE_STRENGTHS):
                upsized = lib.resize(cell, DRIVE_STRENGTHS[drive_idx + 1])
                gain = self._upsize_gain(netlist, placement, inst, upsized)
                best = (gain, inst_name, upsized, "upsize")
            if cell.vt != "LVT":
                faster = lib.swap_vt(cell, "LVT")
                gain = self._upsize_gain(netlist, placement, inst, faster)
                if best is None or gain < best[0]:
                    best = (gain, inst_name, faster, "vt")
            if best is not None and best[0] < -1e-9:
                scored.append(best)
        if not scored:
            return []
        scored.sort(key=lambda t: t[0])
        touched: List[str] = []
        for gain, inst_name, new_cell, kind in scored[: self.cells_per_pass]:
            netlist.replace_cell(inst_name, new_cell)
            touched.append(inst_name)
            if kind == "upsize":
                result.upsizes += 1
            else:
                result.vt_swaps += 1
        return touched

    def fix_hold(
        self,
        netlist: Netlist,
        placement: Placement,
        clock_period: float,
        sta: _BaseSTA,
        skews: Optional[Dict[str, float]] = None,
        max_buffers: int = 64,
        max_passes: int = 10,
        incremental: bool = True,
    ) -> int:
        """Pad short paths with delay buffers until hold is met.

        Each pass re-checks hold and inserts one slow (HVT X1) buffer
        in front of every violating flop's D pin; newly inserted
        buffers sit at the flop's own location.  With ``incremental=
        True`` only the spliced cones are re-propagated between passes.
        Returns the number of buffers inserted.  Raises RuntimeError if
        hold cannot be closed within the buffer budget (a real tool
        would escalate).
        """
        if max_buffers < 1:
            raise ValueError("max_buffers must be >= 1")
        lib = netlist.library
        buffer_cell = lib.pick("BUF", 1, "HVT")
        inserted = 0

        graph: Optional[TimingGraph] = None
        if incremental:
            graph = sta.build_graph(netlist, placement, skews=skews, check_hold=True)
            graph.full_propagate()

        def hold_report():
            if graph is not None:
                return graph.report(clock_period)
            return sta.analyze(netlist, placement, clock_period, skews, check_hold=True)

        for _ in range(max_passes):
            report = hold_report()
            violating = [
                name
                for name, ep in report.endpoints.items()
                if ep.kind == "setup" and ep.hold_slack < 0
            ]
            if not violating:
                return inserted
            touched: List[str] = []
            for endpoint in violating:
                if inserted >= max_buffers:
                    raise RuntimeError(
                        f"hold not closed within {max_buffers} buffers"
                    )
                flop_name = endpoint.split("/")[0]
                flop = netlist.instances[flop_name]
                d_net = flop.input_nets[0]
                buf = netlist.insert_buffer(
                    f"hold_buf_{inserted}", buffer_cell, d_net, flop_name, 0
                )
                placement.positions[buf.name] = placement.positions[flop_name]
                touched.append(buf.name)
                inserted += 1
            if graph is not None:
                graph.update(touched)
        report = hold_report()
        if report.n_hold_violations:
            raise RuntimeError("hold not closed within the pass budget")
        return inserted

    def _recover_power(self, netlist, report, rng, result) -> List[str]:
        """Downsize / HVT-swap cells that only appear on slack-rich paths.

        Returns the names of the instances actually modified.
        """
        margin = self.guardband + 40.0  # only touch comfortably-met paths
        relaxed = [e for e in report.endpoints.values() if e.slack > margin]
        if not relaxed:
            return []
        # instances on any near-critical path are off limits
        critical = set()
        for ep in report.endpoints.values():
            if ep.slack <= margin:
                critical.update(report.paths.get(ep.endpoint, []))
        candidates = [
            name
            for name, inst in netlist.instances.items()
            if name not in critical
            and not inst.cell.is_sequential
            and (inst.cell.drive > 1 or inst.cell.vt != "HVT")
        ]
        if not candidates:
            return []
        rng.shuffle(candidates)
        touched: List[str] = []
        for inst_name in candidates[: self.cells_per_pass]:
            inst = netlist.instances[inst_name]
            cell = inst.cell
            if cell.vt != "HVT":
                netlist.replace_cell(inst_name, netlist.library.swap_vt(cell, "HVT"))
                result.vt_swaps += 1
                touched.append(inst_name)
            elif cell.drive > 1:
                drive_idx = DRIVE_STRENGTHS.index(cell.drive)
                netlist.replace_cell(inst_name, netlist.library.resize(cell, DRIVE_STRENGTHS[drive_idx - 1]))
                result.downsizes += 1
                touched.append(inst_name)
        return touched
