"""Netlist generation ("synthesis lite").

The substrate has no RTL front end; instead a :class:`DesignSpec`
describes a design's macro-structure (gate count, register count, logic
depth, fanout character, function mix) and :func:`synthesize` emits a
mapped gate-level netlist with that structure.  Generation is seeded, so
the same spec and seed reproduce the same netlist, while synthesis
*effort* changes real structure (depth vs area tradeoff) the way a logic
restructuring engine would.

Profiles for the designs the paper uses (a PULPino RISC-V core, an
embedded CPU, and artificial "eyechart" layouts) live in
:mod:`repro.bench.generators`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.eda.library import StdCellLibrary
from repro.eda.netlist import Netlist

#: Default mix of combinational functions (probabilities sum to 1).
DEFAULT_FUNCTION_MIX: Dict[str, float] = {
    "INV": 0.16,
    "NAND2": 0.22,
    "NOR2": 0.14,
    "AND2": 0.08,
    "OR2": 0.07,
    "XOR2": 0.09,
    "AOI21": 0.10,
    "OAI21": 0.07,
    "MUX2": 0.07,
}


@dataclass
class DesignSpec:
    """Macro-structure of a design to generate.

    ``depth`` is the *natural* logic depth before restructuring;
    ``locality`` in (0, 1] biases gate inputs toward recent logic levels
    (higher = deeper, more serial logic).  ``function_mix`` overrides the
    default gate-type distribution.
    """

    name: str
    n_gates: int = 600
    n_flops: int = 64
    n_inputs: int = 32
    n_outputs: int = 32
    depth: int = 14
    locality: float = 0.75
    function_mix: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_FUNCTION_MIX))

    def __post_init__(self):
        if self.n_gates < 1:
            raise ValueError("n_gates must be >= 1")
        if self.n_flops < 1:
            raise ValueError("n_flops must be >= 1 (designs are sequential)")
        if self.n_inputs < 1 or self.n_outputs < 1:
            raise ValueError("need at least one input and one output")
        if self.depth < 2:
            raise ValueError("depth must be >= 2")
        if not 0.0 < self.locality <= 1.0:
            raise ValueError("locality must be in (0, 1]")
        total = sum(self.function_mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError("function_mix probabilities must sum to 1")


def synthesize(
    spec: DesignSpec,
    library: StdCellLibrary,
    effort: float = 0.5,
    seed: Optional[int] = None,
) -> Netlist:
    """Generate a mapped netlist implementing ``spec``.

    ``effort`` in [0, 1] trades area for depth the way restructuring
    does: effort 0 keeps the natural depth; effort 1 shortens the depth
    by ~35% but inflates gate count by up to ~12% (duplication and
    buffering).  Structure choices are drawn from ``seed``, which is the
    source of run-to-run synthesis noise.
    """
    if not 0.0 <= effort <= 1.0:
        raise ValueError("effort must be in [0, 1]")
    rng = np.random.default_rng(seed)
    netlist = Netlist(spec.name, library)

    for i in range(spec.n_inputs):
        netlist.add_primary_input(f"pi{i}")
    clock = netlist.add_primary_input("clk")
    netlist.set_clock(clock.name)

    # Restructuring: higher effort -> shallower target depth, more gates.
    target_depth = max(3, int(round(spec.depth * (1.0 - 0.35 * effort))))
    n_gates = int(round(spec.n_gates * (1.0 + 0.12 * effort)))

    # DFF outputs are combinational sources. Their D inputs are wired
    # after the combinational cloud exists (two-pass construction).
    flop_names = []
    placeholder = "pi0"  # temporary D connection, rewired below
    for i in range(spec.n_flops):
        name = f"ff{i}"
        netlist.add_instance(name, library.pick("DFF"), [placeholder, clock.name])
        flop_names.append(name)

    # Level-0 signals available as gate inputs.
    signals = [f"pi{i}" for i in range(spec.n_inputs)]
    signals += [netlist.instances[f].output_net for f in flop_names]
    level_of = {s: 0 for s in signals}

    functions = list(spec.function_mix.keys())
    probs = np.array([spec.function_mix[f] for f in functions])
    probs = probs / probs.sum()

    gates_per_level = max(1, n_gates // target_depth)
    gate_idx = 0
    by_level: list = [list(signals)]  # signals available per level
    for level in range(1, target_depth + 1):
        by_level.append([])
        count = gates_per_level if level < target_depth else n_gates - gate_idx
        level_choices = rng.choice(len(functions), p=probs, size=max(0, count))
        for k in range(max(0, count)):
            function = functions[int(level_choices[k])]
            cell = library.pick(function)
            inputs = _pick_inputs(by_level, cell.n_inputs, level, spec.locality, rng)
            name = f"g{gate_idx}"
            inst = netlist.add_instance(name, cell, inputs)
            signals.append(inst.output_net)
            level_of[inst.output_net] = level
            by_level[level].append(inst.output_net)
            gate_idx += 1

    # Wire flop D inputs and primary outputs to late (deep) signals.
    deep = [s for s in signals if level_of[s] >= max(1, target_depth - 2)]
    if not deep:
        deep = signals[-spec.n_flops:]
    for flop in flop_names:
        d_net = deep[int(rng.integers(0, len(deep)))]
        inst = netlist.instances[flop]
        old = inst.input_nets[0]
        netlist.nets[old].sinks.remove((flop, 0))
        inst.input_nets[0] = d_net
        netlist.nets[d_net].sinks.append((flop, 0))
    for i in range(spec.n_outputs):
        netlist.mark_primary_output(deep[int(rng.integers(0, len(deep)))])

    netlist.validate()
    return netlist


def _pick_inputs(by_level, n_inputs, level, locality, rng) -> list:
    """Choose input nets with a recency (locality) bias.

    Two-stage draw: pick a source level with weight
    ``locality^distance * |level|``, then a uniform signal within it —
    O(depth) per input instead of O(total signals).
    """
    level_weights = np.array(
        [locality ** (level - 1 - lv) * len(by_level[lv]) for lv in range(level)]
    )
    total = level_weights.sum()
    if total <= 0:
        raise ValueError("no candidate signals below the current level")
    level_weights = level_weights / total
    picked = []
    seen = set()
    for _ in range(n_inputs):
        for _attempt in range(4):  # a few tries for distinctness
            lv = int(rng.choice(level, p=level_weights))
            pool = by_level[lv]
            candidate = pool[int(rng.integers(0, len(pool)))]
            if candidate not in seen:
                break
        seen.add(candidate)
        picked.append(candidate)
    return picked
