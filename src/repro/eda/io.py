"""Design interchange: structural Verilog-style netlists, DEF-style placements.

A downstream user needs designs to survive process boundaries.  The
formats here are deliberately minimal dialects of the real things:

- ``write_verilog`` / ``read_verilog`` — one module, gate-level
  instances of library cells, explicit port connections;
- ``write_def`` / ``read_def`` — die area plus one COMPONENTS section
  with placed locations.

Round-tripping is lossless for everything the substrate models (tested
by property: parse(write(x)) == x structurally).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.eda.floorplan import Floorplan
from repro.eda.library import StdCellLibrary
from repro.eda.netlist import Netlist, NetlistError
from repro.eda.placement import Placement

#: order of input-port names per pin index (A, B, C like real libraries)
_PIN_NAMES = ("A", "B", "C", "D")


def write_verilog(netlist: Netlist) -> str:
    """Serialize a netlist as a structural Verilog module."""
    ports = list(netlist.primary_inputs) + [
        po for po in netlist.primary_outputs if po not in netlist.primary_inputs
    ]
    lines = [f"module {netlist.name} ({', '.join(_escape(p) for p in ports)});"]
    for pi in netlist.primary_inputs:
        lines.append(f"  input {_escape(pi)};")
    for po in netlist.primary_outputs:
        lines.append(f"  output {_escape(po)};")
    internal = [
        n for n in netlist.nets
        if n not in netlist.primary_inputs and n not in netlist.primary_outputs
    ]
    for net in internal:
        lines.append(f"  wire {_escape(net)};")
    for inst in netlist.instances.values():
        conns = [f".Y({_escape(inst.output_net)})"]
        for idx, net in enumerate(inst.input_nets):
            conns.append(f".{_PIN_NAMES[idx]}({_escape(net)})")
        lines.append(
            f"  {inst.cell.name} {_escape(inst.name)} ({', '.join(conns)});"
        )
    if netlist.clock_net is not None:
        lines.append(f"  // clock: {_escape(netlist.clock_net)}")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_MODULE_RE = re.compile(r"module\s+(\w+)\s*\(([^)]*)\)\s*;")
_DECL_RE = re.compile(r"^\s*(input|output|wire)\s+(\S+)\s*;\s*$")
_INST_RE = re.compile(r"^\s*(\S+)\s+(\S+)\s*\((.*)\)\s*;\s*$")
_CONN_RE = re.compile(r"\.(\w+)\(([^)]*)\)")
_CLOCK_RE = re.compile(r"^\s*//\s*clock:\s*(\S+)\s*$")


def read_verilog(text: str, library: StdCellLibrary) -> Netlist:
    """Parse the structural dialect back into a netlist."""
    header = _MODULE_RE.search(text)
    if header is None:
        raise NetlistError("no module header found")
    netlist = Netlist(header.group(1), library)
    inputs: List[str] = []
    outputs: List[str] = []
    instances: List[Tuple[str, str, Dict[str, str]]] = []
    clock = None
    for line in text.splitlines():
        decl = _DECL_RE.match(line)
        if decl:
            kind, name = decl.group(1), _unescape(decl.group(2))
            if kind == "input":
                inputs.append(name)
            elif kind == "output":
                outputs.append(name)
            continue
        clk = _CLOCK_RE.match(line)
        if clk:
            clock = _unescape(clk.group(1))
            continue
        inst = _INST_RE.match(line)
        if inst and inst.group(1) not in ("module", "input", "output", "wire"):
            cell_name, inst_name = inst.group(1), _unescape(inst.group(2))
            conns = {
                pin: _unescape(net)
                for pin, net in _CONN_RE.findall(inst.group(3))
            }
            instances.append((cell_name, inst_name, conns))

    for name in inputs:
        netlist.add_primary_input(name)

    # sequential cells first, with placeholder inputs: their outputs
    # break the feedback cycles that defeat pure dependency ordering
    placeholder = inputs[0] if inputs else None
    rewire: List[Tuple[str, Dict[str, str]]] = []
    combinational = []
    for cell_name, inst_name, conns in instances:
        cell = library.get(cell_name)
        if cell.is_sequential:
            if placeholder is None:
                raise NetlistError("sequential design without primary inputs")
            netlist.add_instance(inst_name, cell, [placeholder] * cell.n_inputs)
            rewire.append((inst_name, conns))
        else:
            combinational.append((cell_name, inst_name, conns))
    instances = combinational

    # remaining instances may reference each other's outputs in any
    # order: create them in dependency order by adding the ready ones
    pending = list(instances)
    guard = 0
    while pending:
        guard += 1
        if guard > len(instances) + 2:
            missing = [i[1] for i in pending]
            raise NetlistError(f"unresolvable connections for {missing[:5]}")
        still = []
        for cell_name, inst_name, conns in pending:
            cell = library.get(cell_name)
            input_nets = []
            ready = True
            for idx in range(cell.n_inputs):
                net = conns.get(_PIN_NAMES[idx])
                if net is None:
                    raise NetlistError(f"{inst_name}: missing pin {_PIN_NAMES[idx]}")
                input_nets.append(net)
                if net not in netlist.nets:
                    ready = False
            if not ready:
                still.append((cell_name, inst_name, conns))
                continue
            inst = netlist.add_instance(inst_name, cell, input_nets)
            declared_out = conns.get("Y")
            if declared_out != inst.output_net:
                raise NetlistError(
                    f"{inst_name}: output {declared_out!r} does not follow the "
                    f"<name>_o convention"
                )
        if len(still) == len(pending):
            missing = [i[1] for i in still]
            raise NetlistError(f"unresolvable connections for {missing[:5]}")
        pending = still

    # rewire the sequential placeholders to their declared connections
    for inst_name, conns in rewire:
        inst = netlist.instances[inst_name]
        for idx in range(inst.cell.n_inputs):
            declared = conns.get(_PIN_NAMES[idx])
            if declared is None:
                raise NetlistError(f"{inst_name}: missing pin {_PIN_NAMES[idx]}")
            if declared not in netlist.nets:
                raise NetlistError(f"{inst_name}: unknown net {declared}")
            old = inst.input_nets[idx]
            netlist.nets[old].sinks.remove((inst_name, idx))
            inst.input_nets[idx] = declared
            netlist.nets[declared].sinks.append((inst_name, idx))

    for po in outputs:
        netlist.mark_primary_output(po)
    if clock is not None:
        netlist.set_clock(clock)
    netlist.validate()
    return netlist


def _escape(name: str) -> str:
    return name


def _unescape(name: str) -> str:
    return name


# ---------------------------------------------------------------- DEF-style
def write_def(placement: Placement, units: int = 1000) -> str:
    """Serialize a placement (die + components) in a DEF-like dialect."""
    fp = placement.floorplan
    lines = [
        "VERSION 5.8 ;",
        f"DESIGN {placement.netlist.name} ;",
        f"UNITS DISTANCE MICRONS {units} ;",
        f"DIEAREA ( 0 0 ) ( {int(fp.width * units)} {int(fp.height * units)} ) ;",
        f"COMPONENTS {len(placement.positions)} ;",
    ]
    for name in sorted(placement.positions):
        x, y = placement.positions[name]
        cell = placement.netlist.instances[name].cell.name
        lines.append(
            f"  - {name} {cell} + PLACED ( {int(round(x * units))} "
            f"{int(round(y * units))} ) N ;"
        )
    lines.append("END COMPONENTS")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


_DEF_UNITS_RE = re.compile(r"UNITS DISTANCE MICRONS (\d+)")
_DEF_DIE_RE = re.compile(r"DIEAREA \( (\-?\d+) (\-?\d+) \) \( (\-?\d+) (\-?\d+) \)")
_DEF_COMP_RE = re.compile(
    r"^\s*-\s+(\S+)\s+(\S+)\s+\+\s+PLACED\s+\(\s*(\-?\d+)\s+(\-?\d+)\s*\)"
)


def read_def(text: str, netlist: Netlist, floorplan: Floorplan = None) -> Placement:
    """Parse a DEF-like dump back into a placement over ``netlist``.

    ``floorplan`` restores pad positions (DEF carries only the die and
    component locations); without it a pad-less floorplan of the dumped
    die size is synthesized.
    """
    units_match = _DEF_UNITS_RE.search(text)
    die_match = _DEF_DIE_RE.search(text)
    if units_match is None or die_match is None:
        raise ValueError("not a recognizable DEF dump (missing UNITS/DIEAREA)")
    units = int(units_match.group(1))
    width = int(die_match.group(3)) / units
    height = int(die_match.group(4)) / units
    if floorplan is None:
        floorplan = Floorplan(width=width, height=height, utilization=0.7)
    positions: Dict[str, Tuple[float, float]] = {}
    for line in text.splitlines():
        comp = _DEF_COMP_RE.match(line)
        if comp:
            name, cell_name = comp.group(1), comp.group(2)
            inst = netlist.instances.get(name)
            if inst is None:
                raise ValueError(f"DEF component {name} not in the netlist")
            if inst.cell.name != cell_name:
                raise ValueError(
                    f"DEF component {name} is {cell_name}, netlist says {inst.cell.name}"
                )
            positions[name] = (
                int(comp.group(3)) / units,
                int(comp.group(4)) / units,
            )
    missing = set(netlist.instances) - set(positions)
    if missing:
        raise ValueError(f"DEF is missing {len(missing)} components")
    return Placement(netlist, floorplan, positions)
