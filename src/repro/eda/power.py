"""Power estimation and a lightweight IR-drop analysis.

Dynamic power sums per-net switching energy (wire + pin caps, activity
weighted); leakage comes straight from the library.  IR drop solves a
coarse resistive-grid relaxation over the placement's power-density
map; the resulting droop map feeds the signoff corner (the
"multiphysics" loop the paper mentions in Sec 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.eda.netlist import Netlist
from repro.eda.placement import Placement

VDD = 0.8  # volts
DEFAULT_ACTIVITY = 0.15  # toggle probability per cycle


@dataclass
class PowerReport:
    """Total and per-component power (uW) plus the IR-drop map."""

    dynamic: float
    leakage: float
    clock: float
    ir_drop_map: Optional[np.ndarray] = None

    @property
    def total(self) -> float:
        return self.dynamic + self.leakage + self.clock

    @property
    def worst_ir_drop(self) -> float:
        """Worst supply droop as a fraction of VDD (0 when not analyzed)."""
        if self.ir_drop_map is None:
            return 0.0
        return float(self.ir_drop_map.max())


def estimate_power(
    netlist: Netlist,
    placement: Optional[Placement] = None,
    frequency_ghz: float = 1.0,
    activity: float = DEFAULT_ACTIVITY,
) -> PowerReport:
    """Estimate power at a given clock frequency.

    With a placement, wire capacitance from actual net lengths is
    included; otherwise only pin caps switch.  Energy bookkeeping:
    ``P_dyn = activity * f * (C * V^2 + internal switch energy)``.
    """
    if frequency_ghz <= 0:
        raise ValueError("frequency must be positive")
    if not 0.0 < activity <= 1.0:
        raise ValueError("activity must be in (0, 1]")
    lib = netlist.library
    dynamic = 0.0
    for net_name, net in netlist.nets.items():
        if net_name == netlist.clock_net:
            continue
        cap = sum(netlist.instances[s].cell.input_cap for s, _ in net.sinks)
        if placement is not None:
            cap += lib.wire_c_per_um * placement.net_length(net_name)
        # fF * V^2 * GHz -> uW
        dynamic += activity * frequency_ghz * cap * VDD * VDD
    for inst in netlist.instances.values():
        dynamic += activity * frequency_ghz * inst.cell.switch_energy

    # the clock net toggles every cycle and reaches every flop
    n_flops = len(netlist.sequential_instances())
    clock_cap = n_flops * 1.2
    if placement is not None:
        clock_cap += lib.wire_c_per_um * 2.0 * (
            placement.floorplan.width + placement.floorplan.height
        )
    clock = frequency_ghz * clock_cap * VDD * VDD

    leakage = netlist.total_leakage
    return PowerReport(dynamic=dynamic, leakage=leakage, clock=clock)


def ir_drop_analysis(
    netlist: Netlist,
    placement: Placement,
    power: PowerReport,
    grid: int = 16,
    sheet_resistance: float = 0.04,
    n_relax: int = 200,
) -> np.ndarray:
    """Relaxation solve of supply droop over a ``grid x grid`` mesh.

    Pads (ideal supplies) sit on the four corners.  Returns the droop
    map as a fraction of VDD; also attaches it to ``power``.
    """
    if grid < 2:
        raise ValueError("grid must be >= 2")
    density = placement.density_map(grid, grid)
    total_density = density.sum()
    if total_density <= 0:
        drop = np.zeros((grid, grid))
        power.ir_drop_map = drop
        return drop
    # current per bin proportional to its share of total power
    current = density / total_density * (power.total / VDD)  # uA
    drop = np.zeros((grid, grid))
    pads = [(0, 0), (0, grid - 1), (grid - 1, 0), (grid - 1, grid - 1)]
    for _ in range(n_relax):
        padded = np.pad(drop, 1, mode="edge")
        neighbor_avg = (
            padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
        ) / 4.0
        drop = neighbor_avg + current * sheet_resistance * 1e-3
        for j, i in pads:
            drop[j, i] = 0.0
    drop = drop / VDD
    power.ir_drop_map = drop
    return drop
