"""Multi-mode multi-corner (MMMC) analysis management.

Signoff evaluates every endpoint at several PVT corners — setup at the
slow corner, hold at the fast corner, plus typical — and merges the
worst case per check.  The missing-corner prediction experiment
(:mod:`repro.core.correlation`) exists precisely because running all
views is expensive; this module is the ground-truth "run them all"
manager it is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.eda.netlist import Netlist
from repro.eda.placement import Placement
from repro.eda.sta import (
    Corner,
    FAST,
    GraphSTA,
    SLOW,
    SignoffSTA,
    TimingReport,
    TimingTopology,
    TYPICAL,
)


@dataclass(frozen=True)
class AnalysisView:
    """One (corner, engine, check) combination to run."""

    name: str
    corner: Corner
    engine: str = "signoff"  # "graph" | "signoff"
    check_hold: bool = False

    def __post_init__(self):
        if self.engine not in ("graph", "signoff"):
            raise ValueError("engine must be 'graph' or 'signoff'")


#: the standard signoff view set: slow setup, fast hold, typical both
DEFAULT_VIEWS = (
    AnalysisView("setup_ss", SLOW, "signoff", check_hold=False),
    AnalysisView("hold_ff", FAST, "signoff", check_hold=True),
    AnalysisView("typ_tt", TYPICAL, "signoff", check_hold=True),
)


@dataclass
class MMMCReport:
    """Merged result of all analysis views."""

    reports: Dict[str, TimingReport] = field(default_factory=dict)

    @property
    def setup_wns(self) -> float:
        """Worst setup slack over all views."""
        return min(r.wns for r in self.reports.values())

    @property
    def hold_wns(self) -> float:
        """Worst hold slack over the hold-checking views."""
        holds = [r.hold_wns for r in self.reports.values()]
        return min(holds) if holds else float("inf")

    @property
    def worst_setup_view(self) -> str:
        return min(self.reports, key=lambda v: self.reports[v].wns)

    @property
    def worst_hold_view(self) -> str:
        return min(self.reports, key=lambda v: self.reports[v].hold_wns)

    @property
    def total_runtime_proxy(self) -> float:
        return sum(r.runtime_proxy for r in self.reports.values())

    def endpoint_worst_slack(self, endpoint: str) -> float:
        """Merged (minimum) setup slack of one endpoint over views."""
        slacks = [
            r.endpoints[endpoint].slack
            for r in self.reports.values()
            if endpoint in r.endpoints
        ]
        if not slacks:
            raise KeyError(f"endpoint {endpoint!r} not found in any view")
        return min(slacks)

    @property
    def clean(self) -> bool:
        return self.setup_wns >= 0 and self.hold_wns >= 0


class MMMCAnalyzer:
    """Run a view set and merge (the signoff "run them all" reference).

    Engines are constructed once per view at ``__init__`` (the Fig 9 /
    Fig 10 loops call ``analyze`` repeatedly — reallocating timers per
    call was pure waste), and one :class:`TimingTopology` — the
    corner-independent part of STA: levelization and net lengths — is
    built per design and shared by every view's kernel; only the
    per-view delay policies differ.
    """

    def __init__(self, views=DEFAULT_VIEWS):
        if not views:
            raise ValueError("need at least one analysis view")
        names = [v.name for v in views]
        if len(set(names)) != len(names):
            raise ValueError("duplicate view names")
        self.views = tuple(views)
        self.engines = {}
        for view in self.views:
            if view.engine == "graph":
                self.engines[view.name] = GraphSTA(corner=view.corner)
            else:
                self.engines[view.name] = SignoffSTA(corner=view.corner)

    def analyze(
        self,
        netlist: Netlist,
        placement: Placement,
        clock_period: float,
        skews: Optional[Dict[str, float]] = None,
        congestion=None,
        topology: Optional[TimingTopology] = None,
    ) -> MMMCReport:
        if clock_period <= 0:
            raise ValueError("clock period must be positive")
        if (
            topology is None
            or topology.netlist is not netlist
            or topology.placement is not placement
        ):
            topology = TimingTopology(netlist, placement)
        report = MMMCReport()
        for view in self.views:
            graph = self.engines[view.name].build_graph(
                netlist,
                placement,
                skews=skews,
                congestion=congestion,
                check_hold=view.check_hold,
                topology=topology,
            )
            graph.full_propagate()
            report.reports[view.name] = graph.report(clock_period)
        return report
