"""Content-keyed result caching for flow runs.

A flow run is a pure function of ``(design, options, seed)`` — the
substrate injects no hidden state — so its :class:`FlowResult` can be
cached under a content key and replayed for free.  The cache has two
tiers:

- an in-memory LRU tier (:class:`ResultCache` with ``max_entries``),
  which makes repeated campaign points free within one process, and
- an optional on-disk JSON tier (``cache_dir``), which survives across
  processes and lets a re-run campaign report ~100% hits.

Keys are SHA-256 hex digests over (design fingerprint, canonical
options dict, seed).  Any change to the design content, any option
knob, or the seed produces a different key; renaming a design *does*
change its key (the design name is part of the reported result, so two
names must not share one cached ``FlowResult``).

Disk entries carry a ``schema`` version (:data:`CACHE_SCHEMA`).  An
entry whose version is missing or mismatched — e.g. written before the
staged-pipeline refactor, or by a newer layout — is treated as a miss
instead of deserializing a stale layout into current dataclasses.

Whole-run caching is complemented by the *stage-prefix* tier
(:class:`~repro.eda.stages.cache.StageCache`, re-exported here): keys
over the knob subsets and step seeds of a pipeline prefix, letting a
job that differs only in downstream knobs resume from its deepest
cached stage snapshot.  See ``docs/parallel.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import asdict
from typing import Dict, Optional, Union

from repro.eda.flow import FlowOptions, FlowResult, StepLog
from repro.eda.netlist import Netlist
from repro.eda.synthesis import DesignSpec

#: disk-entry layout version.  Bump whenever the serialized FlowResult
#: layout changes; readers treat any other version as a miss.  Version
#: history: 1 = unversioned pre-staged-pipeline entries (implicitly),
#: 2 = versioned entries introduced with the staged pipeline.
CACHE_SCHEMA = 2


def design_fingerprint(design: Union[DesignSpec, Netlist]) -> str:
    """A stable content hash of the job's design input.

    ``DesignSpec`` hashes its full field dict (a spec plus a seed fully
    determines the synthesized netlist).  ``Netlist`` hashes its
    structural Verilog serialization, so two netlists with identical
    structure share cache entries regardless of how they were built.
    """
    if isinstance(design, DesignSpec):
        payload = json.dumps(asdict(design), sort_keys=True, default=float)
        return "spec:" + hashlib.sha256(payload.encode()).hexdigest()
    if isinstance(design, Netlist):
        from repro.eda.io import write_verilog

        return "netlist:" + hashlib.sha256(write_verilog(design).encode()).hexdigest()
    raise TypeError(f"cannot fingerprint design of type {type(design).__name__}")


def cache_key(design: Union[DesignSpec, Netlist], options: FlowOptions, seed: int) -> str:
    """The content key one flow job caches under."""
    payload = json.dumps(
        {
            "design": design_fingerprint(design),
            "options": options.to_dict(),
            "seed": int(seed),
        },
        sort_keys=True,
        default=float,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------- (de)serialization


def flow_result_to_dict(result: FlowResult) -> Dict:
    """JSON-safe dict of a :class:`FlowResult` (for the disk tier)."""
    out = asdict(result)
    out["options"] = result.options.to_dict()
    # asdict leaves numpy scalars in metric dicts; normalize to floats
    for log in out["logs"]:
        log["metrics"] = {k: float(v) for k, v in log["metrics"].items()}
        log["series"] = {k: [float(v) for v in vs] for k, vs in log["series"].items()}
        log["runtime_proxy"] = float(log["runtime_proxy"])
    return out


def flow_result_from_dict(data: Dict) -> FlowResult:
    data = dict(data)
    data["options"] = FlowOptions(**data["options"])
    data["logs"] = [StepLog(**log) for log in data["logs"]]
    return FlowResult(**data)


# ----------------------------------------------------------------------- the cache


class ResultCache:
    """LRU in-memory tier plus optional on-disk JSON tier.

    ``get`` promotes disk hits into memory; ``put`` writes both tiers.
    Disk writes are atomic (write-to-temp + rename) so a killed worker
    never leaves a truncated JSON behind.
    """

    def __init__(self, max_entries: int = 1024, cache_dir: Optional[str] = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.cache_dir = cache_dir
        self._memory: "OrderedDict[str, FlowResult]" = OrderedDict()
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def get(self, key: str) -> Optional[FlowResult]:
        """The cached result, or None.  Sets ``self.last_tier`` to
        ``"memory"``/``"disk"`` on a hit (for executor stats)."""
        self.last_tier = None
        if key in self._memory:
            self._memory.move_to_end(key)
            self.last_tier = "memory"
            return self._memory[key]
        if self.cache_dir is not None:
            path = self._disk_path(key)
            if os.path.exists(path):
                try:
                    with open(path) as fh:
                        data = json.load(fh)
                    if data.pop("schema", None) != CACHE_SCHEMA:
                        return None  # stale or future layout: a miss
                    result = flow_result_from_dict(data)
                except (ValueError, KeyError, TypeError):
                    return None  # corrupt entry: treat as a miss
                self._insert_memory(key, result)
                self.last_tier = "disk"
                return result
        return None

    def put(self, key: str, result: FlowResult) -> None:
        self._insert_memory(key, result)
        if self.cache_dir is not None:
            path = self._disk_path(key)
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            try:
                # fdopen's context closes fd even when json.dump raises,
                # so an unserializable result leaks neither the
                # descriptor nor (see finally) the temp file
                with os.fdopen(fd, "w") as fh:
                    json.dump(dict(flow_result_to_dict(result),
                                   schema=CACHE_SCHEMA), fh)
                os.replace(tmp, path)
            except (OSError, TypeError, ValueError):
                pass  # a failed disk write must not fail the campaign
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)

    def _insert_memory(self, key: str, result: FlowResult) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier; with ``disk=True`` also the disk tier
        (including stale ``.tmp`` files left by killed writers)."""
        self._memory.clear()
        if disk and self.cache_dir is not None:
            for name in sorted(os.listdir(self.cache_dir)):
                if name.endswith(".json") or name.endswith(".tmp"):
                    os.unlink(os.path.join(self.cache_dir, name))


# the stage-prefix cache tier lives with the stage definitions (its keys
# are derived from per-stage knob subsets); re-exported here so
# repro.core.parallel is the one-stop caching namespace
from repro.eda.stages.cache import (  # noqa: E402  (re-export)
    StageCache,
    configure_stage_cache,
    get_stage_cache,
    stage_prefix_keys,
)

__all__ = [
    "CACHE_SCHEMA",
    "ResultCache",
    "StageCache",
    "cache_key",
    "configure_stage_cache",
    "design_fingerprint",
    "flow_result_from_dict",
    "flow_result_to_dict",
    "get_stage_cache",
    "stage_prefix_keys",
]
