"""Parallel flow execution with deduplicating result caching.

The campaign layers (trajectory exploration, batched bandits,
multistart, characterization sweeps) all submit through one
:class:`FlowExecutor`, so the paper's "N concurrent tool licenses"
is real process-level parallelism instead of a loop variable.
See ``docs/parallel.md``.
"""

from repro.core.parallel.cache import (
    ResultCache,
    cache_key,
    design_fingerprint,
    flow_result_from_dict,
    flow_result_to_dict,
)
from repro.core.parallel.executor import (
    ExecutorStats,
    FlowExecutionError,
    FlowExecutor,
    FlowJob,
    run_flow_job,
)

__all__ = [
    "ExecutorStats",
    "FlowExecutionError",
    "FlowExecutor",
    "FlowJob",
    "ResultCache",
    "cache_key",
    "design_fingerprint",
    "flow_result_from_dict",
    "flow_result_to_dict",
    "run_flow_job",
]
