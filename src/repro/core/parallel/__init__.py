"""Parallel flow execution with deduplicating result caching.

The campaign layers (trajectory exploration, batched bandits,
multistart, characterization sweeps) all submit through one
:class:`FlowExecutor`, so the paper's "N concurrent tool licenses"
is real process-level parallelism instead of a loop variable.
Caching is two-level: the whole-run :class:`ResultCache` replays exact
``(design, options, seed)`` repeats, and the stage-prefix
:class:`StageCache` (``stage_cache=True``) resumes jobs from their
deepest cached pipeline prefix so only the changed suffix re-runs.
See ``docs/parallel.md``.
"""

from repro.core.parallel.cache import (
    CACHE_SCHEMA,
    ResultCache,
    StageCache,
    cache_key,
    configure_stage_cache,
    design_fingerprint,
    flow_result_from_dict,
    flow_result_to_dict,
    get_stage_cache,
    stage_prefix_keys,
)
from repro.core.parallel.executor import (
    ExecutorStats,
    FlowExecutionError,
    FlowExecutor,
    FlowJob,
    run_flow_job,
)
from repro.eda.stages.runner import (
    StagedJobOutcome,
    StageReport,
    run_flow_job_staged,
)

__all__ = [
    "CACHE_SCHEMA",
    "ExecutorStats",
    "FlowExecutionError",
    "FlowExecutor",
    "FlowJob",
    "ResultCache",
    "StageCache",
    "StageReport",
    "StagedJobOutcome",
    "cache_key",
    "configure_stage_cache",
    "design_fingerprint",
    "flow_result_from_dict",
    "flow_result_to_dict",
    "get_stage_cache",
    "run_flow_job",
    "run_flow_job_staged",
    "stage_prefix_keys",
]
