"""The shared parallel flow-execution engine.

The paper's experiments all assume *N concurrent tool licenses*: GWTW
trajectory rounds, batched-bandit iterations with 5 samples each,
multistart batches, characterization sweeps.  :class:`FlowExecutor`
makes that concurrency real: campaign layers submit
``(design, options, seed)`` jobs and get :class:`FlowResult`\\ s back
**in deterministic submission order**, whether the jobs ran serially
in-process (``n_workers=1``), across a ``ProcessPoolExecutor``
(``n_workers>1``), or straight out of the result cache.

Failure semantics: a job that times out or whose worker crashes (after
``max_retries`` resubmissions) yields a :class:`FlowExecutionError`
*in its result slot* instead of aborting the batch — campaign layers
record the failure in their trace and keep going, exactly like a
license-server hiccup in a real tool farm.

With a :class:`~repro.metrics.MetricsCollector` attached, every flow
job additionally reports into METRICS: workers transmit step metrics
through the collector's queue, and the executor emits per-job event
records (cache tier, dedup, retries, timeouts, wall time) — see
``docs/metrics.md``.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import tempfile
import time

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.parallel.cache import CACHE_SCHEMA, ResultCache, cache_key
from repro.eda.flow import FlowOptions, FlowResult, SPRFlow, _default_library
from repro.eda.netlist import Netlist
from repro.eda.stages.cache import configure_stage_cache
from repro.eda.stages.runner import (
    StagedJobOutcome,
    StageReport,
    run_flow_job_staged,
)
from repro.eda.synthesis import DesignSpec

Design = Union[DesignSpec, Netlist]


@dataclass(frozen=True)
class FlowJob:
    """One unit of campaign work: a flow run at a specific point."""

    design: Design
    options: FlowOptions
    seed: int


class FlowExecutionError(RuntimeError):
    """A job that could not produce a :class:`FlowResult`.

    Returned *in the job's result slot* (never raised across a batch),
    so the campaign trace records which point failed, with what, and
    after how many attempts.
    """

    def __init__(self, message: str, job_index: int = -1, seed: int = -1,
                 attempts: int = 1, kind: str = "crash"):
        super().__init__(message)
        self.job_index = job_index
        self.seed = seed
        self.attempts = attempts
        self.kind = kind  # "crash" | "timeout"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlowExecutionError(kind={self.kind!r}, job={self.job_index}, "
                f"seed={self.seed}, attempts={self.attempts}: {self.args[0]!r})")


@dataclass
class ExecutorStats:
    """Executor-level accounting, surfaced through the CLI.

    ``wall_time_s`` is real elapsed time inside ``run_jobs``/``map``;
    ``runtime_proxy_total`` is the summed simulated tool cost of the
    results delivered (including cached ones) — their ratio is the
    work-delivered-per-second the parallel+cache machinery achieves.
    ``runtime_proxy_executed`` is the subset of that cost actually
    *paid* this campaign: a whole-run cache hit or dedup contributes 0,
    a stage-cache prefix resume contributes only its suffix — so
    ``runtime_proxy_total - runtime_proxy_executed`` is the work the
    caches saved.  ``stage_hits``/``stage_misses`` count pipeline
    stages served from / executed past the stage-prefix cache, with
    per-stage breakdowns in the ``*_by_stage`` dicts.
    """

    jobs_submitted: int = 0
    jobs_run: int = 0
    cache_hits_memory: int = 0
    cache_hits_disk: int = 0
    deduped: int = 0
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    wall_time_s: float = 0.0
    runtime_proxy_total: float = 0.0
    runtime_proxy_executed: float = 0.0
    stage_hits: int = 0
    stage_misses: int = 0
    stage_hits_by_stage: Dict[str, int] = field(default_factory=dict)
    stage_misses_by_stage: Dict[str, int] = field(default_factory=dict)
    kills: int = 0
    kill_proxy_saved: float = 0.0

    @property
    def cache_hits(self) -> int:
        return self.cache_hits_memory + self.cache_hits_disk

    @property
    def cache_hit_rate(self) -> float:
        if self.jobs_submitted == 0:
            return 0.0
        return (self.cache_hits + self.deduped) / self.jobs_submitted

    def summary(self) -> str:
        line = (
            f"jobs={self.jobs_submitted} run={self.jobs_run} "
            f"cache_hits={self.cache_hits} (mem={self.cache_hits_memory} "
            f"disk={self.cache_hits_disk} dedup={self.deduped}, "
            f"rate={self.cache_hit_rate:.0%}) retries={self.retries} "
            f"failures={self.failures} timeouts={self.timeouts} "
            f"wall={self.wall_time_s:.2f}s "
            f"work_delivered={self.runtime_proxy_total:.0f} units"
        )
        if self.stage_hits or self.stage_misses:
            line += (
                f" stage_hits={self.stage_hits} stage_misses={self.stage_misses} "
                f"work_executed={self.runtime_proxy_executed:.0f} units"
            )
        if self.kills:
            line += (
                f" kills={self.kills} "
                f"kill_saved={self.kill_proxy_saved:.0f} units"
            )
        return line


def _worker_init(stage_cache_entries: Optional[int] = None) -> None:
    """Per-worker-process initializer: build the shared default library
    eagerly so no worker races the lazy global on first use, and (when
    stage caching is on) give the worker its own process-local stage
    cache — prefix snapshots are reused across the jobs each worker
    executes, with no cross-process traffic."""
    _default_library()
    if stage_cache_entries is not None:
        configure_stage_cache(stage_cache_entries)


def _kill_proxy_saved(result: FlowResult) -> Optional[float]:
    """Router proxy a stopped-early run avoided, or None if it ran out.

    The router only exits before ``router_max_iterations`` when the
    stop callback fired or the design routed clean (``drvs == 0``), so
    *dirty and short of the cap* identifies a killed run without any
    change to the step-log format.
    """
    from repro.eda.stages.droute import DROUTE_ITERATION_PROXY

    for log in result.logs:
        if log.step == "droute":
            iterations = int(log.metrics.get("iterations", 0))
            cap = result.options.router_max_iterations
            if result.final_drvs > 0 and iterations < cap:
                return (cap - iterations) * DROUTE_ITERATION_PROXY
            return None
    return None


def run_flow_job(design: Design, options: FlowOptions, seed: int,
                 stop_callback=None) -> FlowResult:
    """Execute one flow job (module-level, hence picklable).

    ``DesignSpec`` inputs go through the full flow (synthesis
    included); ``Netlist`` inputs go straight to physical
    implementation — the partition-driven entry point.
    """
    flow = SPRFlow(stop_callback=stop_callback)
    if isinstance(design, Netlist):
        return flow.implement(design, options, seed=seed)
    return flow.run(design, options, seed=seed)


class FlowExecutor:
    """Fan flow jobs across workers, with deduplicating result caching.

    Parameters
    ----------
    n_workers:
        1 = serial in-process execution (no pickling constraints, used
        by tests and as the deterministic reference); >1 = a
        ``ProcessPoolExecutor`` with that many workers.
    cache:
        a :class:`ResultCache`, or True for a default in-memory LRU, or
        None/False to disable caching entirely.
    cache_dir:
        convenience: with ``cache=True``, adds the on-disk JSON tier.
    timeout_s:
        per-job wall-clock timeout (process mode only; a serial job
        cannot be preempted).  A timed-out job is recorded as a
        ``FlowExecutionError(kind="timeout")`` and not retried.
    max_retries:
        resubmissions allowed per job after a worker crash.
    flow_fn:
        the job function, ``(design, options, seed, stop_callback) ->
        FlowResult``.  Defaults to :func:`run_flow_job`; tests inject
        crashing/slow stand-ins here.
    collector:
        an optional :class:`~repro.metrics.MetricsCollector`.  When
        set, every flow job reports into its server: executed jobs
        transmit their step metrics worker-side (through the
        collector's queue), cache-served jobs are re-reported
        coordinator-side, and the executor emits per-job event records
        (cache tier hits, dedup, retries, timeouts, wall vs. proxy
        runtime) under the job's run id.  Run ids are content-derived
        (:func:`~repro.metrics.make_run_id`), so identical jobs share
        one id and distinct jobs never collide across workers.  With
        ``n_workers > 1`` the collector must be ``cross_process=True``.
        When the collector's server carries a campaign id, every record
        this executor produces — worker-side step metrics and the
        coordinator-side event records alike — is stamped with it on
        ingest, so multi-session warehouses stay sliceable by campaign.
    stage_cache:
        enable the stage-prefix cache: jobs run through the staged
        pipeline and resume from the deepest cached prefix snapshot,
        re-running only the changed suffix (see ``docs/parallel.md``).
        Serial mode shares one process-global
        :class:`~repro.eda.stages.cache.StageCache` (reset when the
        executor is constructed); pool mode gives each worker its own.
        Only the default ``flow_fn`` is stage-aware — injecting a
        custom ``flow_fn`` bypasses staging.
    stage_cache_entries:
        LRU capacity of the stage cache (pipeline-state snapshots held
        per process).
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache: Union[ResultCache, bool, None] = True,
        cache_dir: Optional[str] = None,
        timeout_s: Optional[float] = None,
        max_retries: int = 1,
        flow_fn: Optional[Callable[..., FlowResult]] = None,
        collector=None,
        stage_cache: bool = False,
        stage_cache_entries: int = 64,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if stage_cache_entries < 1:
            raise ValueError("stage_cache_entries must be >= 1")
        self.n_workers = n_workers
        if cache is True:
            cache = ResultCache(cache_dir=cache_dir)
        elif cache is False:
            cache = None
        elif cache is not None and cache_dir is not None:
            raise ValueError("pass cache_dir only with cache=True")
        self.cache = cache
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.flow_fn = flow_fn or run_flow_job
        self.collector = collector
        self.stage_cache = stage_cache
        self.stage_cache_entries = stage_cache_entries
        self.stats = ExecutorStats()
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._cache_stats_persisted = False
        if stage_cache and n_workers == 1:
            configure_stage_cache(stage_cache_entries)

    # ------------------------------------------------------------ lifecycle
    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            initargs = (self.stage_cache_entries if self.stage_cache else None,)
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.n_workers, initializer=_worker_init,
                initargs=initargs,
            )
        return self._pool

    def _restart_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._persist_cache_stats()

    def _persist_cache_stats(self) -> None:
        """Merge this executor's cache accounting into
        ``<cache_dir>/cache-stats.json`` (read by ``repro cache stats``).
        Counters are summed into any prior file so sequential campaigns
        over one cache directory accumulate; written at most once per
        executor, atomically, and never fails the campaign.

        The read-merge-write runs under an exclusive ``flock`` on a
        sidecar lockfile: two executors closing at once over the same
        cache directory would otherwise both read the same prior file
        and the second ``os.replace`` would silently drop the first
        executor's counters.
        """
        if (self.cache is None or self.cache.cache_dir is None
                or self._cache_stats_persisted):
            return
        self._cache_stats_persisted = True
        path = os.path.join(self.cache.cache_dir, "cache-stats.json")
        payload = {
            "jobs_submitted": self.stats.jobs_submitted,
            "jobs_run": self.stats.jobs_run,
            "cache_hits_memory": self.stats.cache_hits_memory,
            "cache_hits_disk": self.stats.cache_hits_disk,
            "deduped": self.stats.deduped,
            "stage_hits": self.stats.stage_hits,
            "stage_misses": self.stats.stage_misses,
            "stage_hits_by_stage": dict(self.stats.stage_hits_by_stage),
            "stage_misses_by_stage": dict(self.stats.stage_misses_by_stage),
            "runtime_proxy_total": self.stats.runtime_proxy_total,
            "runtime_proxy_executed": self.stats.runtime_proxy_executed,
        }
        try:
            lock_fd = os.open(path + ".lock", os.O_CREAT | os.O_RDWR, 0o644)
            try:
                if fcntl is not None:
                    fcntl.flock(lock_fd, fcntl.LOCK_EX)
                try:
                    with open(path) as fh:
                        prior = json.load(fh)
                except (OSError, ValueError):
                    prior = {}
                for key, value in payload.items():
                    if isinstance(value, dict):
                        merged = dict(prior.get(key, {}) or {})
                        for stage, count in value.items():
                            merged[stage] = merged.get(stage, 0) + count
                        payload[key] = merged
                    else:
                        payload[key] = value + prior.get(key, 0)
                payload["schema"] = CACHE_SCHEMA
                fd, tmp = tempfile.mkstemp(dir=self.cache.cache_dir, suffix=".tmp")
                try:
                    with os.fdopen(fd, "w") as fh:
                        json.dump(payload, fh)
                    os.replace(tmp, path)
                finally:
                    if os.path.exists(tmp):
                        os.unlink(tmp)
            finally:
                os.close(lock_fd)  # closing drops the flock
        except (OSError, TypeError, ValueError):
            pass  # stats persistence must not fail the campaign

    def __enter__(self) -> "FlowExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ flow jobs
    def run_jobs(
        self,
        jobs: Sequence[FlowJob],
        stop_callback=None,
    ) -> List[Union[FlowResult, FlowExecutionError]]:
        """Run a batch; results come back in submission order.

        Identical jobs within the batch execute once (dedup); jobs
        whose key is cached execute zero times.  ``stop_callback``
        (the doomed-run pruning hook) applies to every job in the
        batch; in process mode it must be picklable.
        """
        t0 = time.perf_counter()
        self.stats.jobs_submitted += len(jobs)
        run_ids = self._prepare_collection(jobs)
        results: List[Optional[Union[FlowResult, FlowExecutionError]]] = [None] * len(jobs)
        hit_tier: List[Optional[str]] = [None] * len(jobs)
        deduped: List[bool] = [False] * len(jobs)
        job_attempts: List[int] = [0] * len(jobs)
        stage_reports: List[Optional[StageReport]] = [None] * len(jobs)
        executed_work: List[float] = [0.0] * len(jobs)
        killed: List[bool] = [False] * len(jobs)
        kill_saved: List[float] = [0.0] * len(jobs)
        # only the default job function is stage-aware; an injected
        # flow_fn (test stand-ins) keeps its exact call contract
        staged = self.stage_cache and self.flow_fn is run_flow_job
        job_fn = run_flow_job_staged if staged else self.flow_fn

        # cache lookups + within-batch dedup
        to_run: List[int] = []        # job indices that must execute
        followers: dict = {}          # leader index -> indices sharing its key
        leader_of_key: dict = {}
        keys: List[Optional[str]] = [None] * len(jobs)
        for i, job in enumerate(jobs):
            if self.cache is not None:
                key = cache_key(job.design, job.options, job.seed)
                keys[i] = key
                hit = self.cache.get(key)
                if hit is not None:
                    if self.cache.last_tier == "disk":
                        self.stats.cache_hits_disk += 1
                    else:
                        self.stats.cache_hits_memory += 1
                    hit_tier[i] = self.cache.last_tier
                    results[i] = hit
                    continue
                if key in leader_of_key:
                    followers.setdefault(leader_of_key[key], []).append(i)
                    self.stats.deduped += 1
                    deduped[i] = True
                    continue
                leader_of_key[key] = i
            to_run.append(i)

        if run_ids is None:
            tasks = [(jobs[i].design, jobs[i].options, jobs[i].seed, stop_callback)
                     for i in to_run]
            fn = job_fn if staged else None
        else:
            # workers report step metrics themselves, through the queue
            from repro.metrics.collector import run_instrumented_flow_job

            tasks = [(self.collector.queue, run_ids[i], job_fn,
                      jobs[i].design, jobs[i].options, jobs[i].seed, stop_callback)
                     for i in to_run]
            fn = run_instrumented_flow_job
        attempts_out: List[int] = []
        executed = self._execute(tasks, indices=to_run, fn=fn,
                                 attempts_out=attempts_out)
        for i, outcome, n_attempts in zip(to_run, executed, attempts_out):
            if isinstance(outcome, StagedJobOutcome):
                stage_reports[i] = outcome.report
                outcome = outcome.result
            results[i] = outcome
            job_attempts[i] = n_attempts
            if isinstance(outcome, FlowResult):
                report = stage_reports[i]
                executed_work[i] = (report.executed_proxy if report is not None
                                    else outcome.runtime_proxy)
                if stop_callback is not None:
                    saved = _kill_proxy_saved(outcome)
                    if saved is not None:
                        killed[i] = True
                        kill_saved[i] = saved
                        self.stats.kills += 1
                        self.stats.kill_proxy_saved += saved
                if self.cache is not None:
                    self.cache.put(keys[i], outcome)
            for j in followers.get(i, ()):
                results[j] = outcome

        for i, outcome in enumerate(results):
            if isinstance(outcome, FlowResult):
                self.stats.runtime_proxy_total += outcome.runtime_proxy
            self.stats.runtime_proxy_executed += executed_work[i]
            report = stage_reports[i]
            if report is not None:
                self.stats.stage_hits += report.n_hits
                self.stats.stage_misses += report.n_misses
                for name in report.hit_stages:
                    self.stats.stage_hits_by_stage[name] = \
                        self.stats.stage_hits_by_stage.get(name, 0) + 1
                for name in report.run_stages:
                    self.stats.stage_misses_by_stage[name] = \
                        self.stats.stage_misses_by_stage.get(name, 0) + 1
        wall = time.perf_counter() - t0
        self.stats.wall_time_s += wall
        if run_ids is not None:
            self._report_batch(jobs, run_ids, results, hit_tier, deduped,
                               job_attempts, wall, stage_reports, executed_work,
                               killed, kill_saved)
        return results  # type: ignore[return-value]

    def run_one(
        self, design: Design, options: FlowOptions, seed: int, stop_callback=None
    ) -> Union[FlowResult, FlowExecutionError]:
        """Convenience wrapper: one job, one outcome."""
        return self.run_jobs([FlowJob(design, options, seed)], stop_callback)[0]

    # --------------------------------------------------------- generic jobs
    def map(self, fn: Callable, args_list: Sequence[Tuple]) -> List[object]:
        """Run arbitrary picklable ``fn(*args)`` tasks with the same
        ordering/timeout/retry machinery (no caching — generic tasks
        have no content key).  Campaign layers whose unit of work is
        not a flow run (multistart local searches, sizer gradings) go
        through here."""
        t0 = time.perf_counter()
        self.stats.jobs_submitted += len(args_list)
        outcomes = self._execute(list(args_list), fn=fn,
                                 indices=list(range(len(args_list))))
        self.stats.wall_time_s += time.perf_counter() - t0
        return outcomes

    # ------------------------------------------------------------ internals
    def _prepare_collection(self, jobs: Sequence[FlowJob]) -> Optional[List[str]]:
        """Run ids for an instrumented batch (None when not collecting)."""
        if self.collector is None:
            return None
        if self.n_workers > 1 and not self.collector.cross_process:
            raise ValueError(
                "n_workers > 1 needs a MetricsCollector(cross_process=True)"
            )
        from repro.metrics.wrappers import make_run_id

        self.collector.start()  # idempotent
        return [make_run_id(job.design, job.options, job.seed) for job in jobs]

    def _report_batch(self, jobs, run_ids, results, hit_tier, deduped,
                      job_attempts, wall: float, stage_reports=None,
                      executed_work=None, killed=None, kill_saved=None) -> None:
        """Emit per-job executor-event records, and re-report cache-served
        results whose step metrics may predate this server (disk tier)."""
        from repro.metrics.collector import QueueTransmitter
        from repro.metrics.wrappers import report_flow_metrics

        if stage_reports is None:
            stage_reports = [None] * len(jobs)
        if executed_work is None:
            executed_work = [0.0] * len(jobs)
        if killed is None:
            killed = [False] * len(jobs)
        if kill_saved is None:
            kill_saved = [0.0] * len(jobs)
        for i, job in enumerate(jobs):
            outcome = results[i]
            failed = isinstance(outcome, FlowExecutionError)
            report = stage_reports[i]
            design_name = job.design.name
            with QueueTransmitter(self.collector.queue, design_name,
                                  run_ids[i], tool="flow_executor") as tx:
                tx.send("exec.cache_hit_memory", float(hit_tier[i] == "memory"))
                tx.send("exec.cache_hit_disk", float(hit_tier[i] == "disk"))
                tx.send("exec.dedup", float(deduped[i]))
                tx.send("exec.attempts", float(job_attempts[i]))
                tx.send("exec.retries", float(max(0, job_attempts[i] - 1)))
                tx.send("exec.timeout",
                        float(failed and outcome.kind == "timeout"))
                tx.send("exec.failure", float(failed))
                tx.send("exec.runtime_proxy",
                        0.0 if failed else outcome.runtime_proxy)
                tx.send("exec.wall_time", wall)
                tx.send("exec.stage.hit",
                        float(report.n_hits if report is not None else 0))
                tx.send("exec.stage.miss",
                        float(report.n_misses if report is not None else 0))
                tx.send("stage.runtime_proxy", float(executed_work[i]))
                tx.send("sta.full",
                        float(report.sta_full if report is not None else 0))
                tx.send("sta.incremental.updates",
                        float(report.sta_incremental if report is not None else 0))
                tx.send("sta.incremental.nodes",
                        float(report.sta_nodes if report is not None else 0))
                tx.send("sta.incremental.proxy_saved",
                        float(report.sta_proxy_saved if report is not None else 0.0))
                tx.send("exec.killed.run", float(killed[i]))
                tx.send("exec.killed.proxy_saved", float(kill_saved[i]))
            if hit_tier[i] is not None and not failed:
                with QueueTransmitter(self.collector.queue, design_name,
                                      run_ids[i], tool="spr_flow") as tx:
                    report_flow_metrics(tx, outcome)

    def _execute(self, tasks: List[Tuple], indices: List[int],
                 fn: Optional[Callable] = None,
                 attempts_out: Optional[List[int]] = None) -> List[object]:
        fn = fn or self.flow_fn
        if attempts_out is None:
            attempts_out = []
        if not tasks:
            return []
        if self.n_workers == 1:
            pairs = [self._run_serial(fn, task, idx)
                     for task, idx in zip(tasks, indices)]
        else:
            pairs = self._run_pool(fn, tasks, indices)
        attempts_out.extend(n for _, n in pairs)
        return [outcome for outcome, _ in pairs]

    def _run_serial(self, fn, task, index):
        attempts = 0
        while True:
            attempts += 1
            try:
                result = fn(*task)
                self.stats.jobs_run += 1
                return result, attempts
            except Exception as exc:  # noqa: BLE001 - recorded, not hidden
                if attempts <= self.max_retries:
                    self.stats.retries += 1
                    continue
                self.stats.failures += 1
                return FlowExecutionError(
                    f"job failed after {attempts} attempt(s): {exc}",
                    job_index=index, seed=self._seed_of(task),
                    attempts=attempts, kind="crash",
                ), attempts

    def _run_pool(self, fn, tasks, indices):
        pool = self._ensure_pool()
        futures = [pool.submit(fn, *task) for task in tasks]
        outcomes: List[object] = []
        attempts = [1] * len(tasks)
        for pos, future in enumerate(futures):
            while True:
                try:
                    result = future.result(timeout=self.timeout_s)
                    self.stats.jobs_run += 1
                    outcomes.append((result, attempts[pos]))
                    break
                except concurrent.futures.TimeoutError:
                    future.cancel()
                    self.stats.timeouts += 1
                    self.stats.failures += 1
                    outcomes.append((FlowExecutionError(
                        f"job exceeded timeout of {self.timeout_s}s",
                        job_index=indices[pos], seed=self._seed_of(tasks[pos]),
                        attempts=attempts[pos], kind="timeout",
                    ), attempts[pos]))
                    break
                except concurrent.futures.process.BrokenProcessPool:
                    self._restart_pool()
                    pool = self._ensure_pool()
                    # resubmit every not-yet-finished job on the new pool
                    for later in range(pos, len(tasks)):
                        if not futures[later].done() or later == pos:
                            futures[later] = pool.submit(fn, *tasks[later])
                    if attempts[pos] <= self.max_retries:
                        attempts[pos] += 1
                        self.stats.retries += 1
                        future = futures[pos]
                        continue
                    self.stats.failures += 1
                    outcomes.append((FlowExecutionError(
                        f"worker pool broke {attempts[pos]} time(s) on this job",
                        job_index=indices[pos], seed=self._seed_of(tasks[pos]),
                        attempts=attempts[pos], kind="crash",
                    ), attempts[pos]))
                    break
                except Exception as exc:  # noqa: BLE001 - worker raised
                    if attempts[pos] <= self.max_retries:
                        attempts[pos] += 1
                        self.stats.retries += 1
                        future = pool.submit(fn, *tasks[pos])
                        continue
                    self.stats.failures += 1
                    outcomes.append((FlowExecutionError(
                        f"job failed after {attempts[pos]} attempt(s): {exc}",
                        job_index=indices[pos], seed=self._seed_of(tasks[pos]),
                        attempts=attempts[pos], kind="crash",
                    ), attempts[pos]))
                    break
        return outcomes

    @staticmethod
    def _seed_of(task: Tuple) -> int:
        for item in task:
            if isinstance(item, (int,)) and not isinstance(item, bool):
                return item
        return -1
