"""Stage-1 robot engineers (paper Sec 3.1).

"Obvious, high-value applications include (i) automation of manual DRC
violation fixing; (ii) automation of manual timing closure steps;
(iii) placement of memory instances in a P&R block ..."  Each robot is
an expert-system automaton: it owns an escalation ladder of remedies,
applies them systematically, and runs to completion with no human.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.eda.flow import FlowOptions, FlowResult, SPRFlow
from repro.eda.floorplan import Floorplan, Macro
from repro.eda.synthesis import DesignSpec


@dataclass
class RobotReport:
    """What a robot did and whether it succeeded."""

    robot: str
    solved: bool
    attempts: int
    actions: List[str] = field(default_factory=list)
    final_result: Optional[FlowResult] = None
    runtime_proxy: float = 0.0


class DRCFixRobot:
    """Automated DRC-violation fixing.

    Escalation ladder: raise router effort → allow more router
    iterations → lower placement utilization → relax aspect ratio.
    Each rung re-runs the flow and checks the DRV count, exactly the
    trial-and-error loop the paper says consumes expert time.
    """

    name = "drc_fix"

    def __init__(self, max_attempts: int = 6):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts

    def run(
        self, spec: DesignSpec, options: FlowOptions, seed: int = 0
    ) -> RobotReport:
        flow = SPRFlow()
        report = RobotReport(robot=self.name, solved=False, attempts=0)
        current = options
        rungs = [
            ("raise router_effort", lambda o: o.with_(router_effort=min(1.0, o.router_effort + 0.3))),
            ("raise router_max_iterations", lambda o: o.with_(router_max_iterations=o.router_max_iterations + 20)),
            ("lower utilization", lambda o: o.with_(utilization=max(0.4, o.utilization - 0.1))),
            ("raise router_effort", lambda o: o.with_(router_effort=min(1.0, o.router_effort + 0.3))),
            ("lower utilization", lambda o: o.with_(utilization=max(0.4, o.utilization - 0.1))),
            ("lower utilization", lambda o: o.with_(utilization=max(0.4, o.utilization - 0.1))),
        ]
        rung_idx = 0
        for attempt in range(self.max_attempts):
            report.attempts += 1
            result = flow.run(spec, current, seed=seed + attempt)
            report.runtime_proxy += result.runtime_proxy
            report.final_result = result
            if result.routed:
                report.solved = True
                return report
            if rung_idx >= len(rungs):
                break
            action, escalate = rungs[rung_idx]
            rung_idx += 1
            report.actions.append(action)
            current = escalate(current)
        return report


class TimingClosureRobot:
    """Automated timing closure.

    Ladder: more optimizer passes → higher synthesis effort → better
    CTS → finally concede target frequency in small steps (the paper's
    "aim low" made explicit and mechanical).
    """

    name = "timing_closure"

    def __init__(self, max_attempts: int = 8, frequency_step: float = 0.03):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if frequency_step <= 0:
            raise ValueError("frequency_step must be positive")
        self.max_attempts = max_attempts
        self.frequency_step = frequency_step

    def run(
        self, spec: DesignSpec, options: FlowOptions, seed: int = 0
    ) -> RobotReport:
        flow = SPRFlow()
        report = RobotReport(robot=self.name, solved=False, attempts=0)
        current = options
        rungs = [
            ("more opt passes", lambda o: o.with_(opt_passes=o.opt_passes + 4,
                                                  opt_cells_per_pass=o.opt_cells_per_pass + 16)),
            ("higher synth effort", lambda o: o.with_(synth_effort=min(1.0, o.synth_effort + 0.3))),
            ("better CTS", lambda o: o.with_(cts_effort=min(1.0, o.cts_effort + 0.3))),
        ]
        rung_idx = 0
        for attempt in range(self.max_attempts):
            report.attempts += 1
            result = flow.run(spec, current, seed=seed + attempt)
            report.runtime_proxy += result.runtime_proxy
            report.final_result = result
            if result.timing_met:
                report.solved = True
                return report
            if rung_idx < len(rungs):
                action, escalate = rungs[rung_idx]
                rung_idx += 1
            else:
                action = "concede target frequency"
                escalate = lambda o: o.with_(  # noqa: E731
                    target_clock_ghz=max(0.1, o.target_clock_ghz - self.frequency_step)
                )
            report.actions.append(action)
            current = escalate(current)
        return report


class MemoryPlacementRobot:
    """Automated placement of memory macros in a block.

    Scans candidate macro positions on a coarse grid, scoring each by
    (a) keeping macros off the core center (congestion) and (b)
    pin-access proximity to the nearest die edge — the heuristics a
    human would apply, mechanized.
    """

    name = "memory_placement"

    def __init__(self, grid: int = 6):
        if grid < 2:
            raise ValueError("grid must be >= 2")
        self.grid = grid

    def run(
        self,
        floorplan: Floorplan,
        macro_sizes: List[Tuple[float, float]],
        seed: int = 0,
    ) -> RobotReport:
        report = RobotReport(robot=self.name, solved=False, attempts=0)
        rng = np.random.default_rng(seed)
        placed: List[Macro] = []
        for m_idx, (w, h) in enumerate(macro_sizes):
            if w <= 0 or h <= 0:
                raise ValueError("macro dimensions must be positive")
            if w > floorplan.width or h > floorplan.height:
                report.actions.append(f"macro{m_idx}: does not fit")
                return report
            best = None
            for gj in range(self.grid):
                for gi in range(self.grid):
                    x = gi / max(1, self.grid - 1) * (floorplan.width - w)
                    y = gj / max(1, self.grid - 1) * (floorplan.height - h)
                    candidate = Macro(f"mem{m_idx}", x, y, w, h)
                    report.attempts += 1
                    if any(candidate.overlaps(p) for p in placed):
                        continue
                    score = self._score(floorplan, candidate) + rng.normal(0, 1e-6)
                    if best is None or score < best[0]:
                        best = (score, candidate)
            if best is None:
                report.actions.append(f"macro{m_idx}: no legal position")
                return report
            placed.append(best[1])
            report.actions.append(
                f"macro{m_idx} at ({best[1].x:.1f},{best[1].y:.1f})"
            )
        for macro in placed:
            floorplan.add_macro(macro)
        report.solved = True
        return report

    @staticmethod
    def _score(floorplan: Floorplan, macro: Macro) -> float:
        cx = macro.x + macro.width / 2
        cy = macro.y + macro.height / 2
        center_dist = np.hypot(cx - floorplan.width / 2, cy - floorplan.height / 2)
        edge_dist = min(cx, floorplan.width - cx, cy, floorplan.height - cy)
        # prefer near an edge (pin access), far from the center (congestion)
        return edge_dist - 0.5 * center_dist
