"""Stages 2-4 of ML insertion (paper Fig 5(b)).

- Stage 2 (*orchestration of search*): :class:`TrajectoryExplorer` runs
  N concurrent flow trajectories per round and clones perturbed copies
  of the winners into the losers' slots — GWTW applied to whole flows.
- Stage 3 (*pruning via predictors*): the explorer accepts a doomed-run
  stop callback; pruned runs release their licenses early and the saved
  runtime is accounted.
- Stage 4 (*reinforcement learning*): :class:`FlowRepairAgent` learns a
  tabular Q-policy over flow-repair actions (which knob to escalate
  given the failure signature) from its own rollouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.orchestration.tree import FlowOptionTree, default_option_tree
from repro.core.parallel import FlowExecutionError, FlowExecutor
from repro.eda.flow import FlowOptions, FlowResult, SPRFlow
from repro.eda.synthesis import DesignSpec


@dataclass
class ExplorationResult:
    """Outcome of a trajectory-space search.

    ``runtime_proxy_executed``/``stage_hits`` report the executor's
    saved-work accounting for this exploration (deltas over the
    campaign): with the stage-prefix cache on, executed work is the
    changed-suffix cost only, so ``total_runtime_proxy -
    runtime_proxy_executed`` is what prefix reuse saved.
    """

    best_result: Optional[FlowResult]
    best_score: float
    n_runs: int
    n_pruned: int
    total_runtime_proxy: float
    score_trace: List[float] = field(default_factory=list)
    n_failed: int = 0
    failures: List[FlowExecutionError] = field(default_factory=list)
    runtime_proxy_executed: float = 0.0
    stage_hits: int = 0


def default_score(result: FlowResult) -> float:
    """Higher is better: successful runs score by achieved frequency per
    area; failures score negative by how badly they failed."""
    if result.success:
        return result.achieved_ghz * 1000.0 / max(1.0, result.area)
    penalty = 0.0
    if not result.timing_met:
        penalty += min(1.0, -min(0.0, result.wns) / 1000.0)
    if not result.routed:
        penalty += min(1.0, result.final_drvs / 10000.0)
    return -penalty


class TrajectoryExplorer:
    """GWTW over flow trajectories under a license budget.

    With an :class:`~repro.core.parallel.FlowExecutor`, each round's
    ``n_concurrent`` runs execute as one submitted batch — real
    parallelism across worker processes, with caching deduplicating
    revisited trajectory points.  Without one, a private serial
    executor is used; results are bit-identical either way because
    run seeds are pre-drawn in slot order before any run launches.

    Stage-cache note: the explorer draws a fresh seed per slot per
    round (required for bit-identity with the historical serial loop),
    and a new seed changes every stage's derived step seeds — so an
    executor's ``stage_cache=True`` only pays off here on revisited
    ``(trajectory, seed)`` points, like the whole-run cache.  The big
    wins belong to fixed-seed suffix-knob sweeps (see
    ``benchmarks/stage_cache_benchmark.py``); the saved-work deltas are
    still reported either way.
    """

    def __init__(
        self,
        tree: Optional[FlowOptionTree] = None,
        n_concurrent: int = 5,
        n_rounds: int = 6,
        survivor_fraction: float = 0.4,
        score: Callable[[FlowResult], float] = default_score,
        stop_callback=None,
        executor: Optional[FlowExecutor] = None,
    ):
        if n_concurrent < 2:
            raise ValueError("need at least 2 concurrent runs to clone winners")
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if not 0.0 < survivor_fraction < 1.0:
            raise ValueError("survivor_fraction must be in (0, 1)")
        self.tree = tree or default_option_tree()
        self.n_concurrent = n_concurrent
        self.n_rounds = n_rounds
        self.survivor_fraction = survivor_fraction
        self.score = score
        self.stop_callback = stop_callback
        self.executor = executor

    def explore(self, spec: DesignSpec, seed: int = 0) -> ExplorationResult:
        """Façade over the declarative engine's ``"explorer"`` strategy
        (:mod:`repro.dse`).  rng stream, job seeds and scoring are
        bit-identical to the historical in-place loop — the surrogate
        proposer stays off on this path because it changes the draw
        pattern."""
        from repro.dse.engine import DSEEngine
        from repro.dse.objective import resolve_objective
        from repro.dse.space import SearchSpace

        engine = DSEEngine(
            space=SearchSpace(tree=self.tree),
            objective=resolve_objective(self.score),
            strategy="explorer",
            executor=self.executor,
            kill_policy=self.stop_callback,
            params={
                "n_concurrent": self.n_concurrent,
                "n_rounds": self.n_rounds,
                "survivor_fraction": self.survivor_fraction,
            },
        )
        return engine.run(spec, seed=seed).to_exploration_result()


class FlowRepairAgent:
    """Stage-4: tabular Q-learning of flow-repair actions.

    State: (timing bucket, routing bucket) of the last run.  Actions:
    which knob to escalate.  Reward: improvement in the exploration
    score minus a fixed per-run cost.  After training the greedy policy
    is a learned escalation ladder — the robots' hand-coded ladder,
    discovered from experience instead.
    """

    ACTIONS = (
        "more_opt",
        "more_synth_effort",
        "lower_utilization",
        "more_router_effort",
        "lower_target",
    )

    def __init__(
        self,
        alpha: float = 0.4,
        gamma: float = 0.8,
        epsilon: float = 0.3,
        run_cost: float = 0.05,
    ):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if not 0 <= gamma < 1:
            raise ValueError("gamma must be in [0, 1)")
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.run_cost = run_cost
        self.q: Dict[Tuple[int, int], np.ndarray] = {}

    @staticmethod
    def state_of(result: FlowResult) -> Tuple[int, int]:
        if result.timing_met:
            timing = 0
        elif result.wns > -200:
            timing = 1
        else:
            timing = 2
        if result.routed:
            routing = 0
        elif result.final_drvs < 2000:
            routing = 1
        else:
            routing = 2
        return timing, routing

    def _q_row(self, state: Tuple[int, int]) -> np.ndarray:
        if state not in self.q:
            self.q[state] = np.zeros(len(self.ACTIONS))
        return self.q[state]

    def apply_action(self, options: FlowOptions, action: str) -> FlowOptions:
        if action == "more_opt":
            return options.with_(opt_passes=options.opt_passes + 4,
                                 opt_cells_per_pass=options.opt_cells_per_pass + 16)
        if action == "more_synth_effort":
            return options.with_(synth_effort=min(1.0, options.synth_effort + 0.25))
        if action == "lower_utilization":
            return options.with_(utilization=max(0.4, options.utilization - 0.08))
        if action == "more_router_effort":
            return options.with_(router_effort=min(1.0, options.router_effort + 0.2))
        if action == "lower_target":
            return options.with_(target_clock_ghz=max(0.1, options.target_clock_ghz - 0.04))
        raise ValueError(f"unknown action {action!r}")

    def train(
        self,
        spec: DesignSpec,
        start_options: FlowOptions,
        n_episodes: int = 6,
        steps_per_episode: int = 4,
        seed: int = 0,
    ) -> Dict[Tuple[int, int], str]:
        """Q-learning rollouts; returns the learned greedy policy."""
        rng = np.random.default_rng(seed)
        flow = SPRFlow()
        for _ in range(n_episodes):
            options = start_options
            result = flow.run(spec, options, seed=int(rng.integers(0, 2**31 - 1)))
            state = self.state_of(result)
            score = default_score(result)
            for _ in range(steps_per_episode):
                if state == (0, 0):
                    break  # flow is healthy; nothing to repair
                row = self._q_row(state)
                if rng.random() < self.epsilon:
                    action_idx = int(rng.integers(0, len(self.ACTIONS)))
                else:
                    action_idx = int(np.argmax(row))
                options = self.apply_action(options, self.ACTIONS[action_idx])
                result = flow.run(spec, options, seed=int(rng.integers(0, 2**31 - 1)))
                new_state = self.state_of(result)
                new_score = default_score(result)
                reward = (new_score - score) - self.run_cost
                future = float(np.max(self._q_row(new_state)))
                row[action_idx] += self.alpha * (
                    reward + self.gamma * future - row[action_idx]
                )
                state, score = new_state, new_score
        return self.policy()

    def policy(self) -> Dict[Tuple[int, int], str]:
        """Greedy action per visited state."""
        return {
            state: self.ACTIONS[int(np.argmax(row))] for state, row in self.q.items()
        }
