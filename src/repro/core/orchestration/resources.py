"""Project-level resource scheduling (paper footnote 4, ref [1]).

"Project- and enterprise-level schedule and resource optimizations,
supported by accurate estimates, have the potential to achieve
substantial design cost reductions."  Tool runs compete for machines
and tool licenses; this module simulates non-preemptive scheduling of a
job set under a resource pool and compares dispatch policies —
longest-processing-time-first (LPT, the classic makespan heuristic),
FIFO, and random — optionally with runtime estimates supplied by the
rope predictors.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class Job:
    """One tool run: a runtime and the resources it holds while running."""

    name: str
    runtime: float
    licenses: Dict[str, int] = field(default_factory=dict)
    machines: int = 1

    def __post_init__(self):
        if self.runtime <= 0:
            raise ValueError(f"job {self.name}: runtime must be positive")
        if self.machines < 1:
            raise ValueError(f"job {self.name}: needs at least one machine")
        for kind, count in self.licenses.items():
            if count < 1:
                raise ValueError(f"job {self.name}: license count for {kind} must be >= 1")


@dataclass(frozen=True)
class ResourcePool:
    """What the project owns: machines and per-kind license counts."""

    machines: int
    licenses: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        if self.machines < 1:
            raise ValueError("pool needs at least one machine")

    def can_ever_run(self, job: Job) -> bool:
        if job.machines > self.machines:
            return False
        return all(
            self.licenses.get(kind, 0) >= count
            for kind, count in job.licenses.items()
        )


@dataclass
class ScheduleEntry:
    job: Job
    start: float
    end: float


@dataclass
class Schedule:
    """A completed simulation: per-job start/end times."""

    entries: List[ScheduleEntry]
    policy: str

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.entries), default=0.0)

    @property
    def total_runtime(self) -> float:
        return sum(e.job.runtime for e in self.entries)

    @property
    def mean_waiting_time(self) -> float:
        if not self.entries:
            return 0.0
        return float(np.mean([e.start for e in self.entries]))

    def utilization(self, pool: ResourcePool) -> float:
        """Machine-time used over machine-time available."""
        if self.makespan == 0:
            return 0.0
        used = sum(e.job.machines * e.job.runtime for e in self.entries)
        return used / (pool.machines * self.makespan)


def schedule_jobs(
    jobs: Sequence[Job],
    pool: ResourcePool,
    policy: str = "lpt",
    seed: Optional[int] = None,
) -> Schedule:
    """Non-preemptive event-driven scheduling simulation.

    ``policy``: "lpt" (longest runtime first — the makespan heuristic),
    "spt" (shortest first — minimizes mean waiting), "fifo" (submission
    order) or "random".  Jobs that can never fit the pool raise.
    """
    for job in jobs:
        if not pool.can_ever_run(job):
            raise ValueError(f"job {job.name} can never run on this pool")
    if policy == "lpt":
        queue = sorted(jobs, key=lambda j: -j.runtime)
    elif policy == "spt":
        queue = sorted(jobs, key=lambda j: j.runtime)
    elif policy == "fifo":
        queue = list(jobs)
    elif policy == "random":
        rng = np.random.default_rng(seed)
        queue = list(jobs)
        rng.shuffle(queue)
    else:
        raise ValueError(f"unknown policy {policy!r}")

    free_machines = pool.machines
    free_licenses = dict(pool.licenses)
    running: List = []  # heap of (end_time, counter, job)
    entries: List[ScheduleEntry] = []
    now = 0.0
    counter = 0

    def try_start() -> None:
        nonlocal free_machines, counter
        progressed = True
        while progressed:
            progressed = False
            for i, job in enumerate(queue):
                fits = job.machines <= free_machines and all(
                    free_licenses.get(kind, 0) >= count
                    for kind, count in job.licenses.items()
                )
                if fits:
                    queue.pop(i)
                    free_machines -= job.machines
                    for kind, count in job.licenses.items():
                        free_licenses[kind] -= count
                    heapq.heappush(running, (now + job.runtime, counter, job))
                    counter += 1
                    entries.append(ScheduleEntry(job, now, now + job.runtime))
                    progressed = True
                    break

    try_start()
    while running:
        end_time, _, job = heapq.heappop(running)
        now = end_time
        free_machines += job.machines
        for kind, count in job.licenses.items():
            free_licenses[kind] += count
        try_start()
    if queue:
        raise RuntimeError("scheduler stalled with jobs still queued")
    return Schedule(entries=entries, policy=policy)


def compare_policies(
    jobs: Sequence[Job],
    pool: ResourcePool,
    seed: int = 0,
) -> Dict[str, float]:
    """Makespan per policy (the ref-[1] cost-reduction lever)."""
    return {
        policy: schedule_jobs(jobs, pool, policy, seed=seed).makespan
        for policy in ("lpt", "spt", "fifo", "random")
    }


def jobs_from_flow_estimates(
    estimates: Dict[str, float],
    pnr_license: str = "pnr",
) -> List[Job]:
    """Wrap per-run runtime estimates (e.g. from a rope predictor) as
    schedulable jobs, each holding one P&R license."""
    return [
        Job(name=name, runtime=max(1e-6, runtime), licenses={pnr_license: 1})
        for name, runtime in estimates.items()
    ]
