"""Flow orchestration (paper Sec 2 Fig 5, Sec 3.1).

- :mod:`tree` — the tree of flow options: "thousands of potential
  options at each flow step, along with iteration, result in an
  enormous tree of possible flow trajectories."
- :mod:`robots` — stage-1 "robot engineers": expert-system automata
  that execute a design task to completion with no human (DRC fixing,
  timing closure, memory placement).
- :mod:`explorer` — stage-2/3 orchestration: concurrent trajectory
  search with winner cloning, plus doomed-run pruning; and a stage-4
  tabular reinforcement learner over flow-repair actions.
"""

from repro.core.orchestration.tree import FlowOptionTree, FlowStepOptions, default_option_tree
from repro.core.orchestration.robots import (
    DRCFixRobot,
    MemoryPlacementRobot,
    RobotReport,
    TimingClosureRobot,
)
from repro.core.orchestration.explorer import (
    ExplorationResult,
    TrajectoryExplorer,
    FlowRepairAgent,
)

__all__ = [
    "FlowOptionTree",
    "FlowStepOptions",
    "default_option_tree",
    "DRCFixRobot",
    "TimingClosureRobot",
    "MemoryPlacementRobot",
    "RobotReport",
    "TrajectoryExplorer",
    "ExplorationResult",
    "FlowRepairAgent",
]
