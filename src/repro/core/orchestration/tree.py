"""The tree of flow options (paper Fig 5(a)).

Each flow step exposes a set of named options with discrete candidate
values; a *trajectory* is one choice per option down the whole flow.
The tree's size — the product over steps — is what makes naive search
"hopeless" and motivates bandits, GWTW and pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice, product
from typing import Dict, Iterator, List, Tuple

from repro.eda.flow import FlowOptions


@dataclass
class FlowStepOptions:
    """One flow step's option menu: name -> candidate values."""

    step: str
    options: Dict[str, List] = field(default_factory=dict)

    def __post_init__(self):
        for name, values in self.options.items():
            if not values:
                raise ValueError(f"option {name} of step {self.step} has no values")

    @property
    def n_combinations(self) -> int:
        total = 1
        for values in self.options.values():
            total *= len(values)
        return total


@dataclass
class FlowOptionTree:
    """The whole flow's option space, step by step."""

    steps: List[FlowStepOptions]

    def __post_init__(self):
        if not self.steps:
            raise ValueError("tree needs at least one step")
        names = [s.step for s in self.steps]
        if len(set(names)) != len(names):
            raise ValueError("duplicate step names")

    @property
    def n_trajectories(self) -> int:
        """Number of root-to-leaf paths (no iteration loops counted)."""
        total = 1
        for step in self.steps:
            total *= step.n_combinations
        return total

    def option_names(self) -> List[Tuple[str, str]]:
        return [(s.step, name) for s in self.steps for name in s.options]

    def enumerate(self, limit: int = 1000) -> Iterator[Dict[str, object]]:
        """Yield flat {option: value} trajectories (up to ``limit``)."""
        if limit < 1:
            raise ValueError("limit must be >= 1")
        names = []
        value_lists = []
        for step in self.steps:
            for option, values in step.options.items():
                names.append(option)
                value_lists.append(values)
        for combo in islice(product(*value_lists), limit):
            yield dict(zip(names, combo))

    def n_trajectories_with_iteration(
        self, p_repeat: float = 0.3, max_repeats: int = 2
    ) -> float:
        """Expected trajectory count when steps can loop (Fig 5(a)).

        The figure's tree includes iteration arrows: a step that fails
        re-enters with new options.  If every step independently repeats
        with probability ``p_repeat`` up to ``max_repeats`` times, each
        step's effective branching multiplies by the expected number of
        visits, compounding the explosion.
        """
        if not 0.0 <= p_repeat < 1.0:
            raise ValueError("p_repeat must be in [0, 1)")
        if max_repeats < 0:
            raise ValueError("max_repeats must be >= 0")
        expected_visits = sum(p_repeat**k for k in range(max_repeats + 1))
        total = 1.0
        for step in self.steps:
            total *= step.n_combinations ** expected_visits
        return total

    def sample(self, rng) -> Dict[str, object]:
        """One uniformly random trajectory."""
        choice = {}
        for step in self.steps:
            for option, values in step.options.items():
                choice[option] = values[int(rng.integers(0, len(values)))]
        return choice

    @staticmethod
    def to_flow_options(trajectory: Dict[str, object]) -> FlowOptions:
        """Materialize a trajectory as runnable :class:`FlowOptions`."""
        return FlowOptions(**trajectory)


def default_option_tree(
    target_frequencies: Tuple[float, ...] = (0.5, 0.6, 0.65, 0.7, 0.75, 0.8),
) -> FlowOptionTree:
    """The substrate flow's own option tree.

    Kept deliberately coarse (6 x 3 x 4 x ... combinations); even so the
    trajectory count is in the tens of thousands — the paper's point
    that "even identifying a best gate-level netlist ... is beyond the
    grasp of human engineers".
    """
    return FlowOptionTree(
        steps=[
            FlowStepOptions("synth", {
                "target_clock_ghz": list(target_frequencies),
                "synth_effort": [0.2, 0.5, 0.9],
            }),
            FlowStepOptions("floorplan", {
                "utilization": [0.55, 0.65, 0.75, 0.85],
                "aspect_ratio": [0.8, 1.0, 1.25],
            }),
            FlowStepOptions("place", {
                "placer_moves_per_cell": [4, 8, 16],
                "spread_strength": [0.6, 0.8],
            }),
            FlowStepOptions("cts", {"cts_effort": [0.3, 0.6, 0.9]}),
            FlowStepOptions("route", {
                "router_effort": [0.4, 0.6, 0.8],
                "router_max_iterations": [20, 40],
            }),
            FlowStepOptions("opt", {
                "opt_passes": [4, 8],
                "opt_guardband": [0.0, 20.0, 50.0],
            }),
        ]
    )
