"""Batched bandit scheduling: N concurrent tool runs × T iterations.

The paper's experiment (Fig 7) runs "40 iterations and 5 concurrent
samples (tool runs) per iteration": in each iteration the policy picks
5 arms (one per available license), all 5 runs execute, and the policy
is updated with all 5 rewards before the next iteration — the standard
batched-bandit setting induced by tool-license constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.bandit.environment import BanditEnvironment
from repro.core.bandit.policies import BanditPolicy


@dataclass
class BanditRunRecord:
    """One pull: where it happened and what came back."""

    iteration: int
    slot: int
    arm: int
    reward: float
    success: bool


@dataclass
class ScheduleResult:
    """Full trace of a batched bandit schedule."""

    records: List[BanditRunRecord] = field(default_factory=list)
    n_iterations: int = 0
    n_concurrent: int = 0

    @property
    def total_reward(self) -> float:
        return sum(r.reward for r in self.records)

    @property
    def n_successes(self) -> int:
        return sum(1 for r in self.records if r.success)

    def best_reward_by_iteration(self) -> List[float]:
        """Running best single-pull reward after each iteration (the
        "Best from 5 samples x 40 iterations" trace of Fig 7)."""
        best = 0.0
        out = []
        for it in range(self.n_iterations):
            for rec in self.records:
                if rec.iteration == it:
                    best = max(best, rec.reward)
            out.append(best)
        return out

    def arms_by_iteration(self) -> List[List[int]]:
        """Arms sampled per iteration (Fig 7's scatter)."""
        out = [[] for _ in range(self.n_iterations)]
        for rec in self.records:
            out[rec.iteration].append(rec.arm)
        return out

    def mean_reward_tail(self, tail_fraction: float = 0.25) -> float:
        """Mean reward over the final fraction of iterations (a
        convergence-quality summary)."""
        if not 0.0 < tail_fraction <= 1.0:
            raise ValueError("tail_fraction must be in (0, 1]")
        cut = int(self.n_iterations * (1.0 - tail_fraction))
        tail = [r.reward for r in self.records if r.iteration >= cut]
        return float(np.mean(tail)) if tail else 0.0


class BatchBanditScheduler:
    """Run a policy against an environment under a license budget.

    With an :class:`~repro.core.parallel.FlowExecutor`, each
    iteration's ``n_concurrent`` pulls run as one parallel batch
    (environments that wrap real flow runs fan them across worker
    processes); the policy still updates with all rewards before the
    next iteration, preserving batched-bandit semantics.
    """

    def __init__(self, n_iterations: int = 40, n_concurrent: int = 5,
                 executor=None):
        if n_iterations < 1 or n_concurrent < 1:
            raise ValueError("iterations and concurrency must be >= 1")
        self.n_iterations = n_iterations
        self.n_concurrent = n_concurrent
        self.executor = executor

    def run(self, policy: BanditPolicy, env: BanditEnvironment) -> ScheduleResult:
        """Façade over the declarative engine's ``"bandit"`` strategy
        (:mod:`repro.dse`); pull order, policy updates and records are
        bit-identical to the historical in-place loop."""
        from repro.dse.engine import DSEEngine

        engine = DSEEngine(
            strategy="bandit",
            executor=self.executor,
            params={
                "n_iterations": self.n_iterations,
                "n_concurrent": self.n_concurrent,
            },
        )
        return engine.run((policy, env), seed=None).to_schedule_result()
