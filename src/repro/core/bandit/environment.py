"""Bandit environments: what pulling an arm means.

:class:`FlowArmEnvironment` is the real thing — each pull launches one
SP&R flow run (one "tool license" for one iteration) at the arm's
target frequency, exactly as in the paper's Fig 7 experiment on
PULPino.  :class:`SyntheticBanditEnvironment` provides cheap Bernoulli
arms for policy robustness sweeps and unit tests.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.eda.flow import FlowOptions, FlowResult, SPRFlow
from repro.eda.synthesis import DesignSpec


class BanditEnvironment:
    """Interface: ``pull(arm) -> (reward, info)`` with reward in [0, 1]."""

    n_arms: int

    def pull(self, arm: int):
        raise NotImplementedError

    def pull_batch(self, arms: Sequence[int], executor=None, stop_callback=None):
        """One batched iteration: outcomes for ``arms``, in order.

        The default loops :meth:`pull`; environments whose pulls are
        real flow runs override this to fan the batch across a
        :class:`~repro.core.parallel.FlowExecutor` (the paper's "5
        concurrent samples per iteration" as actual concurrency).
        Passing an ``executor`` to an environment that cannot use one
        warns instead of silently running serially; ``stop_callback``
        (the doomed-run kill hook) is likewise only honored by flow
        environments.
        """
        if executor is not None:
            warnings.warn(
                f"{type(self).__name__} executes pulls serially; "
                "the supplied executor is ignored",
                RuntimeWarning, stacklevel=2,
            )
        return [self.pull(arm) for arm in arms]

    def describe_arm(self, arm: int) -> str:
        return f"arm{arm}"


class SyntheticBanditEnvironment(BanditEnvironment):
    """Bernoulli arms with optional per-arm values.

    Reward of arm i is ``value[i] * Bernoulli(p[i])`` — the structure of
    the flow problem (a run either meets constraints or not, and a
    successful run at a higher frequency is worth more).
    """

    def __init__(
        self,
        success_probs: Sequence[float],
        values: Optional[Sequence[float]] = None,
        seed: Optional[int] = None,
    ):
        probs = np.asarray(success_probs, dtype=float)
        if probs.ndim != 1 or probs.size == 0:
            raise ValueError("success_probs must be a non-empty vector")
        if probs.min() < 0 or probs.max() > 1:
            raise ValueError("probabilities must be in [0, 1]")
        self.success_probs = probs
        if values is None:
            self.values = np.ones_like(probs)
        else:
            self.values = np.asarray(values, dtype=float)
            if self.values.shape != probs.shape:
                raise ValueError("values must match success_probs in length")
            if self.values.min() < 0 or self.values.max() > 1:
                raise ValueError("values must be in [0, 1]")
        self.n_arms = probs.size
        self.rng = np.random.default_rng(seed)

    @property
    def true_means(self) -> np.ndarray:
        return self.success_probs * self.values

    def pull(self, arm: int):
        success = self.rng.random() < self.success_probs[arm]
        reward = float(self.values[arm]) if success else 0.0
        return reward, {"success": bool(success)}


@dataclass
class FlowPullInfo:
    """Metadata for one flow-run pull.

    ``result`` is None (and ``error`` set) when the run itself failed
    to execute — a crashed/timed-out worker, recorded in the campaign
    trace as an unsuccessful pull instead of aborting the schedule.
    """

    target_ghz: float
    success: bool
    result: Optional[FlowResult]
    error: Optional[str] = None


class FlowArmEnvironment(BanditEnvironment):
    """Arms are target frequencies for the SP&R flow on one design.

    Reward: 0 for a run that misses timing/routing or the power/area
    constraints; otherwise the target frequency normalized by the
    highest arm (a successful faster design is worth more).  This is
    the paper's setup: "PULPino in 14nm foundry technology, with given
    power and area constraints".
    """

    def __init__(
        self,
        spec: DesignSpec,
        target_frequencies: Sequence[float],
        base_options: Optional[FlowOptions] = None,
        max_area: Optional[float] = None,
        max_power: Optional[float] = None,
        seed: Optional[int] = None,
    ):
        freqs = list(target_frequencies)
        if not freqs:
            raise ValueError("need at least one target frequency")
        if any(f <= 0 for f in freqs):
            raise ValueError("target frequencies must be positive")
        self.spec = spec
        self.frequencies = freqs
        self.base_options = base_options or FlowOptions()
        self.max_area = max_area
        self.max_power = max_power
        self.n_arms = len(freqs)
        self.rng = np.random.default_rng(seed)
        self.flow = SPRFlow()
        self._f_max = max(freqs)
        self.history: List[FlowPullInfo] = []

    def describe_arm(self, arm: int) -> str:
        return f"{self.frequencies[arm]:.3f}GHz"

    def pull(self, arm: int):
        options = self.base_options.with_(target_clock_ghz=self.frequencies[arm])
        result = self.flow.run(self.spec, options, seed=int(self.rng.integers(0, 2**31 - 1)))
        return self._score_pull(arm, result)

    def pull_batch(self, arms: Sequence[int], executor=None, stop_callback=None):
        """Run one license-batch of flow pulls, optionally in parallel.

        Seeds are drawn from the environment rng in slot order before
        any run launches, so outcomes are bit-identical to serial
        :meth:`pull` calls regardless of worker count.  With a
        ``stop_callback`` (an online kill policy), doomed pulls are
        terminated mid-route on both the serial and executor paths.

        Stage-cache note: because every pull gets a fresh seed (the
        bit-identity contract above), an executor's ``stage_cache=True``
        can only reuse prefixes across *identical* ``(options, seed)``
        pulls here; the executor still reports per-job
        ``exec.stage.*`` accounting when it is on.  Fixed-seed
        suffix-knob sweeps are the access pattern it accelerates.
        """
        if executor is None:
            if stop_callback is None:
                return [self.pull(arm) for arm in arms]
            # same seed stream as pull(), through a killing flow
            flow = SPRFlow(stop_callback=stop_callback)
            outcomes = []
            for arm in arms:
                options = self.base_options.with_(
                    target_clock_ghz=self.frequencies[arm])
                result = flow.run(self.spec, options,
                                  seed=int(self.rng.integers(0, 2**31 - 1)))
                outcomes.append(self._score_pull(arm, result))
            return outcomes
        from repro.core.parallel import FlowExecutionError, FlowJob

        jobs = [
            FlowJob(
                self.spec,
                self.base_options.with_(target_clock_ghz=self.frequencies[arm]),
                int(self.rng.integers(0, 2**31 - 1)),
            )
            for arm in arms
        ]
        outcomes = []
        for arm, run in zip(arms, executor.run_jobs(jobs, stop_callback=stop_callback)):
            if isinstance(run, FlowExecutionError):
                info = FlowPullInfo(target_ghz=self.frequencies[arm],
                                    success=False, result=None, error=str(run))
                self.history.append(info)
                outcomes.append((0.0, info))
            else:
                outcomes.append(self._score_pull(arm, run))
        return outcomes

    def _score_pull(self, arm: int, result: FlowResult):
        success = result.meets(self.max_area, self.max_power)
        reward = self.frequencies[arm] / self._f_max if success else 0.0
        info = FlowPullInfo(
            target_ghz=self.frequencies[arm], success=success, result=result
        )
        self.history.append(info)
        return reward, info
