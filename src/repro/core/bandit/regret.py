"""Regret accounting (paper footnote 3).

"Let r* be the reward for the optimal arm at any step j.  Then the
regret for that step is r* - r_{a_j} and the expected total regret is
E[sum_j r* - r_{a_j}]."  These helpers compute realized and expected
regret for a schedule against known true arm means.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bandit.scheduler import ScheduleResult


def cumulative_regret(result: ScheduleResult, true_means: Sequence[float]) -> np.ndarray:
    """Expected regret accumulated after each pull.

    Uses the *expected* per-step regret mu* - mu_{a_j} (the standard
    pseudo-regret), which is what bandit guarantees bound.
    """
    means = np.asarray(true_means, dtype=float)
    if means.ndim != 1 or means.size == 0:
        raise ValueError("true_means must be a non-empty vector")
    mu_star = means.max()
    records = sorted(result.records, key=lambda r: (r.iteration, r.slot))
    per_step = np.array([mu_star - means[r.arm] for r in records])
    return np.cumsum(per_step)


def expected_total_regret(result: ScheduleResult, true_means: Sequence[float]) -> float:
    """Total pseudo-regret of the whole schedule."""
    regret = cumulative_regret(result, true_means)
    return float(regret[-1]) if regret.size else 0.0
