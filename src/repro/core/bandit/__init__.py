"""Multi-armed-bandit tool-run scheduling (paper Sec 3.1, Fig 7).

Per the paper (and its ref [25]): arms are flow option bundles — here,
target design frequencies — with unknown reward distributions; a budget
of T iterations with N concurrent tool runs (licenses) per iteration is
spent by a sampling policy that balances exploration and exploitation.
Thompson Sampling is the paper's recommended policy; softmax and
ε-greedy are the compared alternatives, plus UCB1 and uniform baselines.
"""

from repro.core.bandit.policies import (
    BanditPolicy,
    BayesUCB,
    EpsilonGreedy,
    GaussianThompsonSampling,
    SlidingWindowThompson,
    Softmax,
    ThompsonSampling,
    UCB1,
    UniformRandom,
)
from repro.core.bandit.environment import (
    BanditEnvironment,
    FlowArmEnvironment,
    SyntheticBanditEnvironment,
)
from repro.core.bandit.scheduler import BanditRunRecord, BatchBanditScheduler, ScheduleResult
from repro.core.bandit.regret import cumulative_regret, expected_total_regret

__all__ = [
    "BanditPolicy",
    "ThompsonSampling",
    "BayesUCB",
    "SlidingWindowThompson",
    "GaussianThompsonSampling",
    "Softmax",
    "EpsilonGreedy",
    "UCB1",
    "UniformRandom",
    "BanditEnvironment",
    "FlowArmEnvironment",
    "SyntheticBanditEnvironment",
    "BatchBanditScheduler",
    "ScheduleResult",
    "BanditRunRecord",
    "cumulative_regret",
    "expected_total_regret",
]
