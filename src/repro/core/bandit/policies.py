"""Bandit sampling policies.

All policies share the interface: :meth:`select` proposes an arm index,
:meth:`update` records an observed reward.  Rewards are expected in
[0, 1] (the schedulers normalize).  Each policy owns its random
generator so concurrent schedulers don't interfere.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class BanditPolicy:
    """Base class: per-arm counts and empirical means."""

    name = "base"

    def __init__(self, n_arms: int, seed: Optional[int] = None):
        if n_arms < 1:
            raise ValueError("need at least one arm")
        self.n_arms = n_arms
        self.counts = np.zeros(n_arms, dtype=int)
        self.sums = np.zeros(n_arms)
        self.rng = np.random.default_rng(seed)

    @property
    def means(self) -> np.ndarray:
        """Empirical mean reward per arm (0 where unexplored)."""
        safe = np.maximum(self.counts, 1)
        return self.sums / safe

    @property
    def total_pulls(self) -> int:
        return int(self.counts.sum())

    def select(self) -> int:
        raise NotImplementedError

    def update(self, arm: int, reward: float) -> None:
        if not 0 <= arm < self.n_arms:
            raise IndexError(f"arm {arm} out of range")
        if not 0.0 <= reward <= 1.0:
            raise ValueError("rewards must be normalized to [0, 1]")
        self.counts[arm] += 1
        self.sums[arm] += reward
        self._after_update(arm, reward)

    def _after_update(self, arm: int, reward: float) -> None:
        pass

    def best_arm(self) -> int:
        """Current exploit choice (highest empirical mean)."""
        return int(np.argmax(self.means))


class UniformRandom(BanditPolicy):
    """Pure exploration baseline."""

    name = "uniform"

    def select(self) -> int:
        return int(self.rng.integers(0, self.n_arms))


class EpsilonGreedy(BanditPolicy):
    """Exploit the best arm, explore uniformly with probability ε."""

    name = "eps_greedy"

    def __init__(self, n_arms: int, epsilon: float = 0.1, seed: Optional[int] = None):
        super().__init__(n_arms, seed)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon

    def select(self) -> int:
        if self.rng.random() < self.epsilon or self.total_pulls == 0:
            return int(self.rng.integers(0, self.n_arms))
        return self.best_arm()


class Softmax(BanditPolicy):
    """Boltzmann exploration over empirical means."""

    name = "softmax"

    def __init__(self, n_arms: int, temperature: float = 0.1, seed: Optional[int] = None):
        super().__init__(n_arms, seed)
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def select(self) -> int:
        logits = self.means / self.temperature
        logits -= logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        return int(self.rng.choice(self.n_arms, p=probs))


class UCB1(BanditPolicy):
    """Optimism in the face of uncertainty (Auer et al. bound)."""

    name = "ucb1"

    def select(self) -> int:
        unexplored = np.nonzero(self.counts == 0)[0]
        if unexplored.size:
            return int(unexplored[0])
        t = self.total_pulls
        bonus = np.sqrt(2.0 * np.log(t) / self.counts)
        return int(np.argmax(self.means + bonus))


class ThompsonSampling(BanditPolicy):
    """Beta-Bernoulli Thompson Sampling (paper refs [38][33][40]).

    Continuous rewards in [0, 1] are handled with the standard
    Bernoulli-sampling trick: each observed reward r updates the Beta
    posterior with a Bernoulli(r) draw, preserving the posterior mean.
    """

    name = "thompson"

    def __init__(self, n_arms: int, seed: Optional[int] = None, prior: float = 1.0):
        super().__init__(n_arms, seed)
        if prior <= 0:
            raise ValueError("prior pseudo-counts must be positive")
        self.alpha = np.full(n_arms, prior)
        self.beta = np.full(n_arms, prior)

    def select(self) -> int:
        samples = self.rng.beta(self.alpha, self.beta)
        return int(np.argmax(samples))

    def _after_update(self, arm: int, reward: float) -> None:
        if self.rng.random() < reward:
            self.alpha[arm] += 1.0
        else:
            self.beta[arm] += 1.0

    def posterior_mean(self) -> np.ndarray:
        return self.alpha / (self.alpha + self.beta)


class BayesUCB(BanditPolicy):
    """Bayes-UCB (Kaufmann et al.): play the arm with the highest
    posterior quantile; the quantile tightens as 1 - 1/t.

    A principled optimism alternative to UCB1 that shares Thompson's
    Beta posterior (continuous rewards via the Bernoulli trick).
    """

    name = "bayes_ucb"

    def __init__(self, n_arms: int, seed: Optional[int] = None, prior: float = 1.0):
        super().__init__(n_arms, seed)
        if prior <= 0:
            raise ValueError("prior pseudo-counts must be positive")
        self.alpha = np.full(n_arms, prior)
        self.beta = np.full(n_arms, prior)

    def select(self) -> int:
        t = max(2, self.total_pulls + 1)
        quantile = 1.0 - 1.0 / t
        scores = _beta_quantile(self.alpha, self.beta, quantile)
        return int(np.argmax(scores))

    def _after_update(self, arm: int, reward: float) -> None:
        if self.rng.random() < reward:
            self.alpha[arm] += 1.0
        else:
            self.beta[arm] += 1.0


def _beta_quantile(alpha: np.ndarray, beta: np.ndarray, q: float) -> np.ndarray:
    """Approximate Beta quantile via the Wilson-Hilferty normal method.

    Adequate for ranking arms (we only need the argmax, not the exact
    value); clipped to [0, 1].
    """
    mean = alpha / (alpha + beta)
    var = alpha * beta / ((alpha + beta) ** 2 * (alpha + beta + 1.0))
    # normal quantile via Acklam-lite rational approximation at point q
    z = _norm_ppf(q)
    return np.clip(mean + z * np.sqrt(var), 0.0, 1.0)


def _norm_ppf(q: float) -> float:
    """Standard normal quantile (Beasley-Springer-Moro)."""
    if not 0.0 < q < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if q < p_low:
        u = np.sqrt(-2.0 * np.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )
    if q > 1.0 - p_low:
        return -_norm_ppf(1.0 - q)
    u = q - 0.5
    r = u * u
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * u / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


class SlidingWindowThompson(BanditPolicy):
    """Thompson Sampling over a sliding window of recent rewards.

    Tool and flow behaviour is *non-stationary* — a tool-version update
    or a library refresh changes every arm's reward distribution.  The
    posterior here is rebuilt from only the last ``window`` pulls per
    arm, so the policy re-adapts after a regime change instead of being
    anchored to stale evidence.
    """

    name = "sw_thompson"

    def __init__(self, n_arms: int, window: int = 40, seed: Optional[int] = None):
        super().__init__(n_arms, seed)
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self._recent: list = []  # (arm, bernoulli outcome) pairs

    def select(self) -> int:
        alpha = np.ones(self.n_arms)
        beta = np.ones(self.n_arms)
        for arm, outcome in self._recent:
            if outcome:
                alpha[arm] += 1.0
            else:
                beta[arm] += 1.0
        samples = self.rng.beta(alpha, beta)
        return int(np.argmax(samples))

    def _after_update(self, arm: int, reward: float) -> None:
        outcome = self.rng.random() < reward
        self._recent.append((arm, outcome))
        if len(self._recent) > self.window:
            self._recent.pop(0)


class GaussianThompsonSampling(BanditPolicy):
    """Thompson Sampling with a Normal posterior over each arm's mean.

    Known-variance model: posterior mean is the empirical mean, the
    posterior std shrinks as 1/sqrt(n).  Suits continuous QoR rewards.
    """

    name = "gauss_thompson"

    def __init__(
        self, n_arms: int, obs_std: float = 0.25, seed: Optional[int] = None
    ):
        super().__init__(n_arms, seed)
        if obs_std <= 0:
            raise ValueError("obs_std must be positive")
        self.obs_std = obs_std

    def select(self) -> int:
        n = np.maximum(self.counts, 1)
        std = self.obs_std / np.sqrt(n)
        # unexplored arms keep a broad prior centered at 0.5
        mean = np.where(self.counts > 0, self.means, 0.5)
        std = np.where(self.counts > 0, std, self.obs_std * 2)
        samples = self.rng.normal(mean, std)
        return int(np.argmax(samples))
