"""Longer-rope prediction: end-of-flow outcomes from stage prefixes.

A *rope of length k* sees only the logfile metrics of the first k flow
stages (plus the option settings, which are known up front) and
predicts a signoff-stage outcome.  The paper reviews a progression of
such predictors — trial route → detailed route [8], clock change → ECO
timing [13], netlist+floorplan → IR-aware timing [7] — and argues
one-pass design needs accurate long ropes.  Here the full progression
is measured on one substrate: the accuracy-vs-span profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eda.flow import FlowOptions, FlowResult, SPRFlow
from repro.eda.synthesis import DesignSpec
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import mean_absolute_error, r2_score

#: flow stages in execution order; a rope of length k sees stages [:k]
FLOW_STAGES = ("synth", "floorplan", "place", "cts", "groute", "opt")

#: outcomes a rope can predict (all measured at/after detailed route)
TARGETS = ("wns", "final_drvs", "area", "achieved_ghz")

#: per-stage logfile metrics used as features
_STAGE_FEATURES: Dict[str, tuple] = {
    "synth": ("instances", "depth", "area", "avg_fanout", "max_fanout", "flops"),
    "floorplan": ("width", "height", "utilization"),
    "place": ("hpwl", "density_max"),
    "cts": ("skew", "buffers"),
    "groute": ("overflow", "max_congestion", "wirelength"),
    "opt": ("passes", "upsizes", "vt_swaps", "wns_graph"),
}

_OPTION_FEATURES = (
    "target_clock_ghz",
    "synth_effort",
    "utilization",
    "router_effort",
    "opt_guardband",
)


@dataclass
class RopeDataset:
    """Flow runs decomposed into per-stage feature blocks + outcomes."""

    results: List[FlowResult]

    def __post_init__(self):
        if not self.results:
            raise ValueError("dataset needs at least one flow run")

    def __len__(self) -> int:
        return len(self.results)

    def features(self, span: int) -> np.ndarray:
        """Feature matrix for ropes of length ``span`` (1..len(FLOW_STAGES))."""
        if not 1 <= span <= len(FLOW_STAGES):
            raise ValueError(f"span must be in [1, {len(FLOW_STAGES)}]")
        rows = []
        for result in self.results:
            row = [float(getattr(result.options, name)) for name in _OPTION_FEATURES]
            logs = {log.step: log for log in result.logs}
            for stage in FLOW_STAGES[:span]:
                log = logs.get(stage)
                for metric in _STAGE_FEATURES[stage]:
                    row.append(float(log.metrics.get(metric, 0.0)) if log else 0.0)
            rows.append(row)
        return np.array(rows)

    def target(self, name: str) -> np.ndarray:
        if name not in TARGETS:
            raise ValueError(f"unknown target {name!r}; choose from {TARGETS}")
        return np.array([float(getattr(r, name)) for r in self.results])

    def split(self, train_fraction: float = 0.7, seed: int = 0):
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        perm = rng.permutation(len(self.results))
        cut = max(1, int(len(self.results) * train_fraction))
        train = RopeDataset([self.results[i] for i in perm[:cut]])
        test = RopeDataset([self.results[i] for i in perm[cut:]])
        return train, test


def build_rope_dataset(
    specs: Optional[Sequence[DesignSpec]] = None,
    n_runs: int = 60,
    seed: int = 0,
) -> RopeDataset:
    """Run the flow ``n_runs`` times with randomized options/designs."""
    if n_runs < 4:
        raise ValueError("need at least 4 runs")
    if specs is None:
        from repro.bench.generators import DRIVER_CLASSES

        specs = [DRIVER_CLASSES["MCU"], DRIVER_CLASSES["PHY"], DRIVER_CLASSES["NOC"]]
    rng = np.random.default_rng(seed)
    flow = SPRFlow()
    results = []
    for i in range(n_runs):
        spec = specs[i % len(specs)]
        options = FlowOptions(
            target_clock_ghz=float(rng.uniform(0.45, 1.1)),
            synth_effort=float(rng.uniform(0.2, 0.9)),
            utilization=float(rng.uniform(0.55, 0.9)),
            router_effort=float(rng.uniform(0.4, 0.9)),
            opt_guardband=float(rng.uniform(0.0, 40.0)),
        )
        results.append(flow.run(spec, options, seed=int(rng.integers(0, 2**31 - 1))))
    return RopeDataset(results)


class RopePredictor:
    """One (span, target) predictor over a rope dataset."""

    def __init__(self, span: int, target: str = "wns", seed: Optional[int] = None):
        if target not in TARGETS:
            raise ValueError(f"unknown target {target!r}")
        self.span = span
        self.target = target
        self.seed = seed
        self._model: Optional[RandomForestRegressor] = None

    def fit(self, dataset: RopeDataset) -> "RopePredictor":
        X = dataset.features(self.span)
        y = dataset.target(self.target)
        self._model = RandomForestRegressor(
            n_estimators=40, max_depth=8, random_state=self.seed
        )
        self._model.fit(X, y)
        return self

    def predict(self, dataset: RopeDataset) -> np.ndarray:
        if self._model is None:
            raise RuntimeError("predictor is not fitted")
        return self._model.predict(dataset.features(self.span))

    def score(self, dataset: RopeDataset) -> Dict[str, float]:
        pred = self.predict(dataset)
        truth = dataset.target(self.target)
        return {
            "r2": r2_score(truth, pred),
            "mae": mean_absolute_error(truth, pred),
        }


def span_accuracy_profile(
    train: RopeDataset,
    test: RopeDataset,
    target: str = "wns",
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Prediction quality for every rope length (the Sec 3.3 progression).

    Longer ropes = predicting the same end-of-flow outcome from *fewer*
    completed stages.  Entry i describes the rope that has seen stages
    ``FLOW_STAGES[: i+1]``; accuracy should degrade gracefully (not
    collapse) as the rope lengthens — that grace is what ML buys.
    """
    profile = []
    for span in range(1, len(FLOW_STAGES) + 1):
        predictor = RopePredictor(span, target, seed=seed).fit(train)
        entry = {"span": float(span), "stages_seen": float(span)}
        entry.update(predictor.score(test))
        profile.append(entry)
    return profile
