"""Predictive modeling of tools and designs (paper Sec 3.3).

"Tool and flow predictions must also increase their span across
multiple design steps: essentially, we must predict what will happen at
the end of a longer and longer 'rope' of design steps when the rope is
wiggled."

- :mod:`ropes` — end-of-flow outcome prediction from progressively
  earlier stage prefixes, with the accuracy-vs-span profile.
- :mod:`floorplan_doom` — predicting doomed P&R flows from netlist and
  floorplan features alone ("the same applies to doomed P&R flows,
  doomed floorplans"), and using that prediction to skip runs.
"""

from repro.core.prediction.ropes import (
    FLOW_STAGES,
    RopeDataset,
    RopePredictor,
    build_rope_dataset,
    span_accuracy_profile,
)
from repro.core.prediction.floorplan_doom import FloorplanDoomPredictor

__all__ = [
    "FLOW_STAGES",
    "RopeDataset",
    "RopePredictor",
    "build_rope_dataset",
    "span_accuracy_profile",
    "FloorplanDoomPredictor",
]
