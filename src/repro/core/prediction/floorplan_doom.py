"""Predicting doomed P&R flows from pre-placement information.

"The same applies to doomed P&R flows, doomed floorplans, etc." — if a
netlist + floorplan combination cannot route, the hours spent placing
and routing it are pure waste.  This predictor learns routing success
from features available *before placement* (netlist structure, target
utilization, routing supply, target frequency) and is used to veto
hopeless runs up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eda.flow import FlowOptions, FlowResult, SPRFlow
from repro.eda.library import make_default_library
from repro.eda.synthesis import DesignSpec, synthesize
from repro.ml.logistic import LogisticRegression
from repro.ml.scaling import StandardScaler

_FEATURES = (
    "instances",
    "area",
    "depth",
    "avg_fanout",
    "max_fanout",
    "utilization",
    "tracks_per_um",
    "target_ghz",
)


def _featurize(spec_stats: Dict[str, float], options: FlowOptions) -> List[float]:
    return [
        spec_stats["instances"],
        spec_stats["area"],
        spec_stats["depth"],
        spec_stats["avg_fanout"],
        spec_stats["max_fanout"],
        options.utilization,
        options.router_tracks_per_um,
        options.target_clock_ghz,
    ]


@dataclass
class _TrainingRun:
    features: List[float]
    routed: bool


class FloorplanDoomPredictor:
    """Logistic routability model over pre-placement features."""

    feature_names = _FEATURES

    def __init__(self, threshold: float = 0.35, seed: Optional[int] = None):
        """``threshold``: veto a run when P(routes cleanly) falls below it."""
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.threshold = threshold
        self.seed = seed
        self.scaler = StandardScaler()
        self.model = LogisticRegression(alpha=1e-2)
        self._fitted = False

    # ------------------------------------------------------------------
    def collect_training_runs(
        self,
        specs: Sequence[DesignSpec],
        n_runs: int = 50,
        seed: int = 0,
    ) -> List[FlowResult]:
        """Run randomized flows to gather (features, routed) pairs."""
        if n_runs < 8:
            raise ValueError("need at least 8 training runs")
        rng = np.random.default_rng(seed)
        flow = SPRFlow()
        results = []
        for i in range(n_runs):
            spec = specs[i % len(specs)]
            options = FlowOptions(
                target_clock_ghz=float(rng.uniform(0.4, 0.9)),
                utilization=float(rng.uniform(0.5, 0.95)),
                router_tracks_per_um=float(rng.uniform(8.0, 20.0)),
            )
            results.append(
                flow.run(spec, options, seed=int(rng.integers(0, 2**31 - 1)))
            )
        return results

    def fit_from_results(self, results: Sequence[FlowResult]) -> "FloorplanDoomPredictor":
        rows, labels = [], []
        for result in results:
            synth_log = next(log for log in result.logs if log.step == "synth")
            rows.append(_featurize(synth_log.metrics, result.options))
            labels.append(1 if result.routed else 0)
        if len(set(labels)) < 2:
            raise ValueError("training runs must include both routed and unrouted flows")
        X = self.scaler.fit_transform(np.array(rows))
        self.model.fit(X, np.array(labels))
        self._fitted = True
        return self

    def fit(
        self,
        specs: Sequence[DesignSpec],
        n_runs: int = 50,
        seed: int = 0,
    ) -> "FloorplanDoomPredictor":
        return self.fit_from_results(self.collect_training_runs(specs, n_runs, seed))

    # ------------------------------------------------------------------
    def success_probability(self, spec: DesignSpec, options: FlowOptions) -> float:
        """P(the run routes cleanly), from pre-placement features only.

        Synthesizes the netlist (cheap) to read its structure; placement
        and routing are *not* run.
        """
        if not self._fitted:
            raise RuntimeError("predictor is not fitted")
        netlist = synthesize(spec, make_default_library(), options.synth_effort, seed=0)
        row = _featurize(netlist.stats(), options)
        X = self.scaler.transform(np.array([row]))
        return float(self.model.predict_proba(X)[0])

    def veto(self, spec: DesignSpec, options: FlowOptions) -> bool:
        """True when the run should be skipped as doomed."""
        return self.success_probability(spec, options) < self.threshold

    def evaluate(self, results: Sequence[FlowResult]) -> Dict[str, float]:
        """Confusion summary against completed runs' ground truth."""
        if not self._fitted:
            raise RuntimeError("predictor is not fitted")
        tp = fp = tn = fn = 0
        for result in results:
            synth_log = next(log for log in result.logs if log.step == "synth")
            row = _featurize(synth_log.metrics, result.options)
            p = float(self.model.predict_proba(self.scaler.transform(np.array([row])))[0])
            predicted_ok = p >= self.threshold
            if predicted_ok and result.routed:
                tp += 1
            elif predicted_ok and not result.routed:
                fn += 1  # let a doomed run proceed (paper's Type-2 analogue)
            elif not predicted_ok and result.routed:
                fp += 1  # vetoed a good run (Type-1 analogue)
            else:
                tn += 1
        n = max(1, tp + fp + tn + fn)
        return {
            "accuracy": (tp + tn) / n,
            "vetoed_good": fp,
            "missed_doomed": fn,
            "caught_doomed": tn,
            "n": n,
        }
