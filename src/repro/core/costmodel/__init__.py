"""Design economics models (paper Sec 2, Challenge 1, Figs 1-2, 4).

- :mod:`itrs` — the ITRS Design Cost Model: transistors-per-chip
  scaling, design productivity with a DT-innovation timeline, and
  SOC-CP cost projections.  Calibrated to the paper's footnote 1
  anchors ($45.4M in 2013 with DT; $3.4B in 2028 without post-2013 DT;
  ~$1B in 2013 / ~$70B in 2028 without post-2000 DT).
- :mod:`capability_gap` — the Design Capability Gap of Fig 1: available
  vs realized transistor density.
- :mod:`coevolution` — a quantitative rendering of Fig 4's feedback
  loops: today's local minimum of tool/methodology coevolution vs the
  "flip the arrows" future regime.
"""

from repro.core.costmodel.itrs import DesignCostModel, DTInnovation, ITRS_INNOVATIONS
from repro.core.costmodel.capability_gap import CapabilityGapModel
from repro.core.costmodel.coevolution import CoevolutionModel, RegimeState

__all__ = [
    "DesignCostModel",
    "DTInnovation",
    "ITRS_INNOVATIONS",
    "CapabilityGapModel",
    "CoevolutionModel",
    "RegimeState",
]
