"""The ITRS Design Cost Model (paper refs [31][39][41], Fig 2).

Structure (following Kahng-Smith, ISQED 2002): the cost of designing
the consumer-portable SOC driver (SOC-CP) is

    cost(year) = transistors(year) / productivity(year)
                 * cost_per_engineer_month(year)

- ``transistors`` doubles every two years (the roadmap's demand side);
- ``productivity`` (transistors per engineer-month) has a small
  intrinsic growth plus step multipliers from design-technology (DT)
  innovations when they are delivered;
- cost per engineer-month (salary + tools + infrastructure) grows
  slowly.

The paper's footnote 1 pins four calibration anchors: with the full DT
timeline the 2013 SOC-CP cost is ~$45.4M; freezing DT at 2013 grows it
to ~$3.4B by 2028; freezing DT at 2000 yields ~$1B in 2013 and ~$70B in
2028.  The default parameters hit all four within a small factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class DTInnovation:
    """One design-technology advance in the roadmap timeline."""

    year: int
    name: str
    productivity_multiplier: float

    def __post_init__(self):
        if self.productivity_multiplier <= 1.0:
            raise ValueError("an innovation must improve productivity (> 1x)")


#: The DT timeline, in the spirit of the 2001/2013 ITRS cost chapters.
ITRS_INNOVATIONS: List[DTInnovation] = [
    DTInnovation(1993, "In-house place & route", 3.0),
    DTInnovation(1997, "Small-block reuse + synthesis", 3.0),
    DTInnovation(1999, "Large-block reuse / IP", 3.2),
    DTInnovation(2005, "RTL methodology + silicon virtual prototype", 2.8),
    DTInnovation(2009, "ES-level design automation", 2.8),
    DTInnovation(2013, "Concurrent SW / many-core methodology", 2.8),
    DTInnovation(2017, "Hardening + platform reuse", 3.2),
    DTInnovation(2021, "ML-assisted implementation", 3.2),
    DTInnovation(2025, "No-human-in-the-loop flows", 3.2),
]


@dataclass
class DesignCostModel:
    """SOC-CP design cost projection with a configurable DT timeline."""

    base_year: int = 1985
    base_transistors: float = 5.0e5  # SOC-CP logic transistors at base year
    transistor_doubling_years: float = 2.0
    base_productivity: float = 1.43e3  # transistors per engineer-month
    intrinsic_productivity_growth: float = 1.0816  # per year, non-DT
    cost_per_engineer_month: float = 26_000.0  # USD: salary+tools+infra
    engineer_cost_growth: float = 1.02  # per year
    verification_fraction: float = 0.45  # share of effort in verification
    innovations: List[DTInnovation] = field(default_factory=lambda: list(ITRS_INNOVATIONS))

    def transistors(self, year: int) -> float:
        """SOC-CP transistor demand in ``year``."""
        self._check_year(year)
        dt = year - self.base_year
        return self.base_transistors * 2.0 ** (dt / self.transistor_doubling_years)

    def productivity(self, year: int, dt_freeze_year: Optional[int] = None) -> float:
        """Transistors per engineer-month in ``year``.

        ``dt_freeze_year`` drops every innovation introduced after that
        year (the counterfactual in the paper's footnote 1).
        """
        self._check_year(year)
        value = self.base_productivity * self.intrinsic_productivity_growth ** (
            year - self.base_year
        )
        for innovation in self.innovations:
            if innovation.year > year:
                continue
            if dt_freeze_year is not None and innovation.year > dt_freeze_year:
                continue
            value *= innovation.productivity_multiplier
        return value

    def engineer_months(self, year: int, dt_freeze_year: Optional[int] = None) -> float:
        return self.transistors(year) / self.productivity(year, dt_freeze_year)

    def design_cost(self, year: int, dt_freeze_year: Optional[int] = None) -> float:
        """Total SOC-CP design cost (USD) in ``year``."""
        months = self.engineer_months(year, dt_freeze_year)
        unit = self.cost_per_engineer_month * self.engineer_cost_growth ** (
            year - self.base_year
        )
        return months * unit

    def verification_cost(self, year: int, dt_freeze_year: Optional[int] = None) -> float:
        return self.design_cost(year, dt_freeze_year) * self.verification_fraction

    # ------------------------------------------------------------------
    def figure2_series(self, years: Sequence[int]) -> Dict[str, np.ndarray]:
        """The Fig 2 curves: transistor count, design cost, verification
        cost, and the no-DT counterfactual cost."""
        years_arr = np.asarray(list(years), dtype=int)
        return {
            "year": years_arr,
            "transistors": np.array([self.transistors(y) for y in years_arr]),
            "design_cost": np.array([self.design_cost(y) for y in years_arr]),
            "verification_cost": np.array(
                [self.verification_cost(y) for y in years_arr]
            ),
            "cost_frozen_2000": np.array(
                [self.design_cost(y, dt_freeze_year=2000) for y in years_arr]
            ),
            "cost_frozen_2013": np.array(
                [self.design_cost(y, dt_freeze_year=2013) for y in years_arr]
            ),
        }

    def footnote1_anchors(self) -> Dict[str, float]:
        """The four calibration anchors from the paper's footnote 1."""
        return {
            "cost_2013_with_dt": self.design_cost(2013),
            "cost_2013_frozen_2000": self.design_cost(2013, dt_freeze_year=2000),
            "cost_2028_frozen_2013": self.design_cost(2028, dt_freeze_year=2013),
            "cost_2028_frozen_2000": self.design_cost(2028, dt_freeze_year=2000),
        }

    def _check_year(self, year: int) -> None:
        if year < self.base_year:
            raise ValueError(f"year {year} precedes the model base year {self.base_year}")
