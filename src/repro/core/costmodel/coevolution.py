"""A quantitative rendering of Fig 4's coevolution loops.

Fig 4(a) ("SOC design: today"): designers demand more tool flexibility;
flexibility reduces predictability; unpredictability inflates margins
and turnaround time; quality falls; falling quality feeds the demand
for yet more flexibility — a local minimum.

Fig 4(b) ("SOC design: future"): the flow is decomposed into more
partitions and designers accept "freedoms from choice" (less
flexibility); predictability rises; margins and iterations fall
(single-pass design); achieved quality rises.

The model is a discrete dynamical system over
(flexibility, predictability, margin, quality) in [0, 1] with the
figure's arrows as coupling terms.  It is intentionally qualitative —
the *fixed points* and their ordering are the reproduction target, not
any absolute number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class RegimeState:
    """One step of the coevolution dynamics."""

    flexibility: float
    predictability: float
    margin: float
    quality: float

    def clamped(self) -> "RegimeState":
        clamp = lambda v: min(1.0, max(0.0, v))  # noqa: E731
        return RegimeState(
            clamp(self.flexibility),
            clamp(self.predictability),
            clamp(self.margin),
            clamp(self.quality),
        )


@dataclass
class CoevolutionModel:
    """Iterate the Fig 4 feedback loops in one of two regimes.

    ``regime`` is "today" (flexibility demanded when quality drops) or
    "future" (partitioning + freedoms-from-choice hold flexibility
    down).  ``partitions`` only matters in the future regime, where
    more/smaller subproblems raise predictability ("smaller subproblems
    can be better-solved").
    """

    regime: str = "today"
    partitions: float = 1.0
    step_size: float = 0.3

    def __post_init__(self):
        if self.regime not in ("today", "future"):
            raise ValueError("regime must be 'today' or 'future'")
        if self.partitions < 1.0:
            raise ValueError("partitions must be >= 1")
        if not 0.0 < self.step_size <= 1.0:
            raise ValueError("step_size must be in (0, 1]")

    def step(self, s: RegimeState) -> RegimeState:
        a = self.step_size
        # predictability falls with flexibility, rises with partitioning
        partition_boost = 0.25 * min(1.0, (self.partitions - 1.0) / 16.0)
        pred_target = 0.9 - 0.7 * s.flexibility + partition_boost
        # margins track unpredictability
        margin_target = 0.15 + 0.75 * (1.0 - s.predictability)
        # quality falls with margins (guardbands eat the PPA budget)
        quality_target = 0.95 - 0.8 * s.margin
        if self.regime == "today":
            # designers respond to poor quality by demanding flexibility
            flex_target = 0.35 + 0.6 * (1.0 - s.quality)
        else:
            # "freedoms from choice": flexibility is capped by methodology
            flex_target = 0.2
        blend = lambda cur, tgt: cur + a * (tgt - cur)  # noqa: E731
        return RegimeState(
            flexibility=blend(s.flexibility, flex_target),
            predictability=blend(s.predictability, pred_target),
            margin=blend(s.margin, margin_target),
            quality=blend(s.quality, quality_target),
        ).clamped()

    def run(self, n_steps: int = 60, initial: RegimeState = None) -> List[RegimeState]:
        """Iterate to (near) the regime's fixed point; returns the path."""
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        state = initial or RegimeState(0.5, 0.5, 0.5, 0.5)
        path = [state]
        for _ in range(n_steps):
            state = self.step(state)
            path.append(state)
        return path

    def fixed_point(self, n_steps: int = 200) -> RegimeState:
        return self.run(n_steps)[-1]
