"""The Design Capability Gap (paper Fig 1, refs [41][17]).

"A NEW IC DESIGN GAP: available density scaling vs. realized density
scaling.  Non-ideal A-factor -> larger cells, wires for reliability.
Uncore in architecture -> small, distributed functions."

Available density follows the process roadmap (2x per node).  Realized
density is degraded by two compounding factors the figure calls out:
the layout A-factor (cells and wires grow relative to ideal scaling for
reliability/variability) and the growing uncore fraction (distributed
small functions that place-and-route at lower density).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


@dataclass
class CapabilityGapModel:
    """Available vs realized transistor density, 1995 onward."""

    base_year: int = 1995
    base_density: float = 1.0e5  # transistors / mm^2 at base year
    density_doubling_years: float = 2.0
    # A-factor degradation: grows after the degradation onset year
    afactor_onset: int = 2005
    afactor_growth: float = 1.045  # per year after onset
    # uncore fraction: rises toward a ceiling
    uncore_base: float = 0.15
    uncore_ceiling: float = 0.55
    uncore_rate: float = 0.05  # approach rate per year after onset
    uncore_density_penalty: float = 0.55  # uncore places at this relative density

    def available_density(self, year: int) -> float:
        """Process-roadmap density (what the node offers)."""
        self._check_year(year)
        dt = year - self.base_year
        return self.base_density * 2.0 ** (dt / self.density_doubling_years)

    def afactor(self, year: int) -> float:
        """Layout area inflation factor (1.0 = ideal scaling)."""
        self._check_year(year)
        excess = max(0, year - self.afactor_onset)
        return self.afactor_growth ** excess

    def uncore_fraction(self, year: int) -> float:
        """Share of the die that is uncore (distributed small functions)."""
        self._check_year(year)
        excess = max(0, year - self.afactor_onset)
        return self.uncore_ceiling - (self.uncore_ceiling - self.uncore_base) * np.exp(
            -self.uncore_rate * excess
        )

    def realized_density(self, year: int) -> float:
        """Density a design team actually achieves."""
        available = self.available_density(year)
        uncore = self.uncore_fraction(year)
        effective = (1.0 - uncore) + uncore * self.uncore_density_penalty
        return available * effective / self.afactor(year)

    def gap(self, year: int) -> float:
        """Available / realized density ratio (1.0 = no gap, grows over time)."""
        return self.available_density(year) / self.realized_density(year)

    def figure1_series(self, years: Sequence[int]) -> Dict[str, np.ndarray]:
        years_arr = np.asarray(list(years), dtype=int)
        return {
            "year": years_arr,
            "available": np.array([self.available_density(y) for y in years_arr]),
            "realized": np.array([self.realized_density(y) for y in years_arr]),
            "gap": np.array([self.gap(y) for y in years_arr]),
        }

    def _check_year(self, year: int) -> None:
        if year < self.base_year:
            raise ValueError(f"year {year} precedes the model base year {self.base_year}")
