"""The paper's contribution: ML-driven reduction of IC design time/effort.

Subpackages map to the paper's sections:

- :mod:`repro.core.bandit` — multi-armed-bandit tool-run scheduling with
  no human in the loop (Sec 3.1, Fig 7).
- :mod:`repro.core.doomed` — doomed-run prediction from logfile time
  series via MDP policy iteration and HMMs (Sec 3.3, Figs 9-10 and the
  Type-1/Type-2 error table).
- :mod:`repro.core.correlation` — ML correction of analysis
  miscorrelation between fast and signoff timers (Sec 3.2, Fig 8).
- :mod:`repro.core.search` — go-with-the-winners and adaptive multistart
  parallel search (Sec 2, Fig 6).
- :mod:`repro.core.orchestration` — the tree of flow options, robot
  engineers, and the four-stage ML-insertion ladder (Sec 2/3, Fig 5).
- :mod:`repro.core.costmodel` — the ITRS design cost model and the
  Design Capability Gap (Sec 2, Figs 1-2).
- :mod:`repro.core.noise` — inherent tool-noise characterization and
  guardband sizing (Sec 2, Fig 3).
"""
