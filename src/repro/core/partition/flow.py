"""The partitioned flow and its TAT / predictability accounting.

Fig 4(b)'s quantitative claims on this substrate:

- **turnaround time** — blocks implement concurrently, so the parallel
  TAT is the *slowest block* plus a top-level assembly charge
  proportional to the cut, instead of the whole-design runtime;
- **predictability** — smaller subproblems are better-solved: the
  run-to-run spread of the achieved frequency shrinks under
  partitioning (:func:`predictability_study`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.partition.extract import extract_partition
from repro.core.partition.kway import cut_nets, kway_partition
from repro.eda.flow import FlowOptions, FlowResult, SPRFlow, _default_library
from repro.eda.synthesis import DesignSpec, synthesize

#: top-level route/assemble cost per cut net (runtime-proxy units)
ASSEMBLY_COST_PER_CUT = 6.0


@dataclass
class PartitionedResult:
    """Outcome of a partitioned implementation."""

    design: str
    n_partitions: int
    blocks: List[FlowResult]
    n_cut_nets: int
    flat: Optional[FlowResult] = None

    @property
    def success(self) -> bool:
        return all(b.success for b in self.blocks)

    @property
    def area(self) -> float:
        return sum(b.area for b in self.blocks)

    @property
    def power(self) -> float:
        return sum(b.power for b in self.blocks)

    @property
    def wns(self) -> float:
        """Worst slack over blocks (inter-block paths are registered at
        block boundaries in this methodology — a "freedom from choice")."""
        return min(b.wns for b in self.blocks)

    @property
    def achieved_ghz(self) -> float:
        return min(b.achieved_ghz for b in self.blocks)

    @property
    def assembly_cost(self) -> float:
        return self.n_cut_nets * ASSEMBLY_COST_PER_CUT

    @property
    def tat_parallel(self) -> float:
        """Wall-clock proxy with all blocks running concurrently."""
        return max(b.runtime_proxy for b in self.blocks) + self.assembly_cost

    @property
    def tat_serial(self) -> float:
        """Compute proxy (what the license bill sees)."""
        return sum(b.runtime_proxy for b in self.blocks) + self.assembly_cost

    def speedup_vs_flat(self) -> float:
        """Flat-flow TAT over partitioned parallel TAT (>1 = faster)."""
        if self.flat is None:
            raise ValueError("no flat reference attached")
        return self.flat.runtime_proxy / self.tat_parallel


def partitioned_implementation(
    spec: DesignSpec,
    options: FlowOptions,
    n_partitions: int = 4,
    seed: int = 0,
    run_flat_reference: bool = False,
) -> PartitionedResult:
    """Synthesize once, partition, implement every block independently."""
    rng = np.random.default_rng(seed)
    netlist = synthesize(
        spec, _default_library(), options.synth_effort,
        seed=int(rng.integers(0, 2**31 - 1)),
    )
    blocks = kway_partition(netlist, n_partitions, seed=int(rng.integers(0, 2**31 - 1)))
    cut = cut_nets(netlist, blocks)

    flow = SPRFlow()
    block_results = []
    for i, block_instances in enumerate(blocks):
        sub = extract_partition(netlist, block_instances, f"{spec.name}_p{i}")
        block_results.append(
            flow.implement(sub, options, seed=int(rng.integers(0, 2**31 - 1)))
        )

    flat = None
    if run_flat_reference:
        flat = flow.run(spec, options, seed=seed)

    return PartitionedResult(
        design=spec.name,
        n_partitions=n_partitions,
        blocks=block_results,
        n_cut_nets=len(cut),
        flat=flat,
    )


def predictability_study(
    spec: DesignSpec,
    options: FlowOptions,
    n_partitions: int = 4,
    n_seeds: int = 6,
    seed0: int = 0,
) -> Dict[str, float]:
    """Run-to-run outcome spread at a fixed target: flat vs partitioned.

    Measured like-for-like at the same target frequency: the relative
    area spread (CV), the WNS spread, the timing-success rate, and the
    mean parallel-TAT ratio — Fig 4(b)'s "Predictability up, Margins
    down, TAT down" quantified.  Partitioned areas average noise over
    blocks, so their CV shrinks; smaller blocks also close timing more
    reliably near the wall.
    """
    if n_seeds < 3:
        raise ValueError("need at least 3 seeds for a spread estimate")
    flow = SPRFlow()
    flat_area, flat_wns, flat_tat, flat_met = [], [], [], []
    part_area, part_wns, part_tat, part_met = [], [], [], []
    for s in range(n_seeds):
        flat = flow.run(spec, options, seed=seed0 + s)
        flat_area.append(flat.area)
        flat_wns.append(flat.wns)
        flat_tat.append(flat.runtime_proxy)
        flat_met.append(flat.timing_met)
        part = partitioned_implementation(
            spec, options, n_partitions, seed=seed0 + 1000 + s
        )
        part_area.append(part.area)
        part_wns.append(part.wns)
        part_tat.append(part.tat_parallel)
        part_met.append(part.wns >= 0)
    return {
        "flat_area_cv": float(np.std(flat_area, ddof=1) / np.mean(flat_area)),
        "partitioned_area_cv": float(np.std(part_area, ddof=1) / np.mean(part_area)),
        "flat_wns_std": float(np.std(flat_wns, ddof=1)),
        "partitioned_wns_std": float(np.std(part_wns, ddof=1)),
        "flat_success_rate": float(np.mean(flat_met)),
        "partitioned_success_rate": float(np.mean(part_met)),
        "mean_tat_ratio": float(np.mean(flat_tat) / np.mean(part_tat)),
    }
