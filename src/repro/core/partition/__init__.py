"""Partition-driven implementation (paper Sec 2, Solution 1, Fig 4(b)).

"The design problem is decomposed into many more small subproblems;
this reduces the time needed to solve any given subproblem, and smaller
subproblems can be better-solved ...  To increase the number of design
partitions without undue loss of global solution quality demands new
placement, global routing and optimization algorithms."

- :mod:`kway` — recursive-bisection k-way netlist partitioning (built
  on the big-valley bisection engine).
- :mod:`extract` — sub-netlist extraction with boundary-net conversion.
- :mod:`flow` — the partitioned flow: implement every block
  independently (in parallel, in the TAT model), assemble, and compare
  turnaround time and outcome predictability against the flat flow.
"""

from repro.core.partition.kway import kway_partition, cut_nets
from repro.core.partition.extract import extract_partition
from repro.core.partition.flow import (
    PartitionedResult,
    partitioned_implementation,
    predictability_study,
)

__all__ = [
    "kway_partition",
    "cut_nets",
    "extract_partition",
    "PartitionedResult",
    "partitioned_implementation",
    "predictability_study",
]
