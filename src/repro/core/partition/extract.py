"""Sub-netlist extraction with boundary conversion.

A block keeps its instances and internal nets; every net driven from
outside the block becomes a new primary input, and every inside-driven
net consumed outside (or at the top level) is marked a primary output.
The block is a standalone, valid netlist the ordinary flow can
implement.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.eda.netlist import Netlist


def extract_partition(
    netlist: Netlist, block_instances: Iterable[str], name: str
) -> Netlist:
    """Build the standalone netlist of one block."""
    inside: Set[str] = set(block_instances)
    unknown = inside - set(netlist.instances)
    if unknown:
        raise ValueError(f"unknown instances: {sorted(unknown)[:5]}")
    if not inside:
        raise ValueError("block is empty")

    block = Netlist(name, netlist.library)

    # boundary inputs: nets consumed inside but not driven inside
    boundary_inputs: List[str] = []
    for inst_name in inside:
        inst = netlist.instances[inst_name]
        for net_name in inst.input_nets:
            if net_name == netlist.clock_net:
                continue
            driver = netlist.nets[net_name].driver
            if (driver is None or driver not in inside) and net_name not in boundary_inputs:
                boundary_inputs.append(net_name)
    for net_name in sorted(boundary_inputs):
        block.add_primary_input(net_name)
    clock = netlist.clock_net
    if clock is not None:
        block.add_primary_input(clock)
        block.set_clock(clock)

    # instances: flops first with placeholders (feedback), then
    # combinational cells in dependency order
    flops = [n for n in inside if netlist.instances[n].cell.is_sequential]
    combs = [n for n in inside if not netlist.instances[n].cell.is_sequential]
    placeholder = sorted(boundary_inputs)[0] if boundary_inputs else clock
    if placeholder is None:
        raise ValueError("block has no inputs at all")
    for flop_name in sorted(flops):
        cell = netlist.instances[flop_name].cell
        block.add_instance(flop_name, cell, [placeholder] * cell.n_inputs)

    pending = list(combs)
    while pending:
        still = []
        for inst_name in pending:
            inst = netlist.instances[inst_name]
            if all(n in block.nets for n in inst.input_nets):
                block.add_instance(inst_name, inst.cell, list(inst.input_nets))
            else:
                still.append(inst_name)
        if len(still) == len(pending):
            raise ValueError(f"unresolvable block connectivity: {still[:5]}")
        pending = still

    # rewire flop inputs to their true nets
    for flop_name in sorted(flops):
        original = netlist.instances[flop_name]
        inst = block.instances[flop_name]
        for idx, net_name in enumerate(original.input_nets):
            old = inst.input_nets[idx]
            if old == net_name:
                continue
            block.nets[old].sinks.remove((flop_name, idx))
            inst.input_nets[idx] = net_name
            block.nets[net_name].sinks.append((flop_name, idx))

    # boundary outputs: inside-driven nets seen outside or at top level
    for inst_name in inside:
        out_net = netlist.instances[inst_name].output_net
        net = netlist.nets[out_net]
        escapes = out_net in netlist.primary_outputs or any(
            sink not in inside for sink, _ in net.sinks
        )
        if escapes:
            block.mark_primary_output(out_net)

    block.validate()
    return block
