"""K-way netlist partitioning by recursive bisection."""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.search.landscape import BisectionProblem
from repro.eda.netlist import Netlist


def _clique_edges(netlist: Netlist) -> Tuple[List[str], List[Tuple[int, int, float]]]:
    """Instance clique graph (same model the bisection landscape uses)."""
    names = list(netlist.instances)
    index = {n: i for i, n in enumerate(names)}
    weights: Dict[Tuple[int, int], float] = {}
    for net_name, net in netlist.nets.items():
        if net_name == netlist.clock_net:
            continue
        members = []
        if net.driver is not None:
            members.append(index[net.driver])
        members += [index[s] for s, _ in net.sinks]
        members = sorted(set(members))
        if len(members) < 2:
            continue
        w = 1.0 / (len(members) - 1)
        for a_pos, a in enumerate(members):
            for b in members[a_pos + 1 :]:
                weights[(a, b)] = weights.get((a, b), 0.0) + w
    return names, [(u, v, w) for (u, v), w in weights.items()]


def _bisect_subset(
    nodes: List[int],
    edges: List[Tuple[int, int, float]],
    rng: np.random.Generator,
) -> Tuple[List[int], List[int]]:
    """Bisect one subset of the global graph with local search."""
    local = {node: i for i, node in enumerate(nodes)}
    induced = [
        (local[u], local[v], w)
        for u, v, w in edges
        if u in local and v in local
    ]
    if len(nodes) < 4 or not induced:
        half = len(nodes) // 2
        shuffled = list(nodes)
        rng.shuffle(shuffled)
        return shuffled[:half], shuffled[half:]
    problem = BisectionProblem(n_nodes=len(nodes), edges=induced)
    best_assign = None
    best_cost = np.inf
    for _ in range(3):  # small multistart
        assign = problem.local_search(problem.random_solution(rng), rng)
        cost = problem.cost(assign)
        if cost < best_cost:
            best_cost = cost
            best_assign = assign
    left = [nodes[i] for i in range(len(nodes)) if not best_assign[i]]
    right = [nodes[i] for i in range(len(nodes)) if best_assign[i]]
    return left, right


def kway_partition(
    netlist: Netlist, k: int, seed: Optional[int] = None
) -> List[List[str]]:
    """Split instances into ``k`` balanced blocks (k must be a power of 2).

    Recursive min-cut bisection over the instance clique graph; every
    instance lands in exactly one block.
    """
    if k < 2 or (k & (k - 1)) != 0:
        raise ValueError("k must be a power of 2 and >= 2")
    if netlist.n_instances < 2 * k:
        raise ValueError(f"netlist too small for {k} partitions")
    rng = np.random.default_rng(seed)
    names, edges = _clique_edges(netlist)
    blocks: List[List[int]] = [list(range(len(names)))]
    while len(blocks) < k:
        next_blocks = []
        for block in blocks:
            left, right = _bisect_subset(block, edges, rng)
            next_blocks += [left, right]
        blocks = next_blocks
    return [[names[i] for i in sorted(block)] for block in blocks]


def cut_nets(netlist: Netlist, blocks: List[List[str]]) -> Set[str]:
    """Signal nets whose pins span more than one block (or a block and
    the top-level IO)."""
    owner: Dict[str, int] = {}
    for block_id, block in enumerate(blocks):
        for name in block:
            owner[name] = block_id
    missing = set(netlist.instances) - set(owner)
    if missing:
        raise ValueError(f"{len(missing)} instances not assigned to any block")
    cut: Set[str] = set()
    for net_name, net in netlist.nets.items():
        if net_name == netlist.clock_net:
            continue
        touched = set()
        if net.driver is not None:
            touched.add(owner[net.driver])
        else:
            touched.add(-1)  # primary input
        for sink, _ in net.sinks:
            touched.add(owner[sink])
        if net_name in netlist.primary_outputs:
            touched.add(-2)
        if len(touched) > 1:
            cut.add(net_name)
    return cut
