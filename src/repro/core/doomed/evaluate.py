"""Evaluating stop policies: Type-1/Type-2 errors (the paper's table).

"Type 1 errors occur when the policy stops a run that would have
succeeded ... Type 2 errors occur when the policy allows a run to go to
completion, but the run fails."  The policy's raw STOP signal is
oversensitive, so the paper requires 1, 2 or 3 *consecutive* STOPs
before actually terminating; we reproduce that sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.bench.corpus import RouterLog
from repro.core.doomed.card import STOP, StrategyCard


@dataclass
class DoomedEvaluation:
    """Aggregate accuracy of a stop policy over a corpus."""

    n_logs: int
    type1_errors: int  # wrongly stopped a run that would have succeeded
    type2_errors: int  # never stopped a run that went on to fail
    correct_stops: int  # stopped runs that were indeed doomed
    iterations_saved: int  # router iterations avoided on stopped doomed runs
    consecutive_stops_required: int

    @property
    def total_errors(self) -> int:
        return self.type1_errors + self.type2_errors

    @property
    def error_rate(self) -> float:
        return self.total_errors / self.n_logs if self.n_logs else 0.0

    def summary_row(self) -> str:
        """One row of the paper's table."""
        return (
            f"{self.consecutive_stops_required} STOP(s): "
            f"total error {100 * self.error_rate:.1f}% "
            f"(#Type1 {self.type1_errors}, #Type2 {self.type2_errors}, "
            f"saved {self.iterations_saved} iterations)"
        )


def stop_iteration(
    card: StrategyCard, drvs, consecutive: int = 1
) -> Optional[int]:
    """Iteration index at which the policy would terminate the run.

    Replays the DRV series; returns None when the run is allowed to
    finish.  Termination requires ``consecutive`` STOP signals in a row
    (the paper's accuracy fix).
    """
    if consecutive < 1:
        raise ValueError("consecutive must be >= 1")
    streak = 0
    for t in range(1, len(drvs)):
        action = card.action(drvs[t], drvs[t] - drvs[t - 1])
        if action == STOP:
            streak += 1
            if streak >= consecutive:
                return t
        else:
            streak = 0
    return None


def evaluate_policy(
    card: StrategyCard, logs: Iterable[RouterLog], consecutive: int = 1
) -> DoomedEvaluation:
    """Type-1/Type-2 error accounting for one consecutive-STOP setting."""
    n = type1 = type2 = correct = saved = 0
    for log in logs:
        n += 1
        stop_at = stop_iteration(card, log.drvs, consecutive)
        if stop_at is not None:
            if log.success:
                type1 += 1
            else:
                correct += 1
                saved += (len(log.drvs) - 1) - stop_at
        else:
            if not log.success:
                type2 += 1
    if n == 0:
        raise ValueError("evaluation corpus is empty")
    return DoomedEvaluation(
        n_logs=n,
        type1_errors=type1,
        type2_errors=type2,
        correct_stops=correct,
        iterations_saved=saved,
        consecutive_stops_required=consecutive,
    )


def make_stop_callback(card: StrategyCard, consecutive: int = 3):
    """A live stop hook for :class:`~repro.eda.routing.DetailedRouter`.

    The returned callable takes the DRV history so far and returns True
    when the policy has emitted ``consecutive`` STOPs in a row — wire it
    into ``DetailedRouter(...).route(..., stop_callback=...)`` or
    ``SPRFlow(stop_callback=...)`` to prune doomed runs in production.
    """
    if consecutive < 1:
        raise ValueError("consecutive must be >= 1")

    def callback(history) -> bool:
        return stop_iteration(card, history, consecutive) is not None

    return callback
