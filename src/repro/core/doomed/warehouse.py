"""Training doomed-run predictors from the metrics warehouse.

The paper's Sec 3.3 predictors were trained on logfile corpora gathered
offline; with the METRICS warehouse every instrumented flow run already
persists its detailed-router convergence trajectory (one
``droute.drv_trajectory`` record per rip-up-and-reroute iteration), so
the training corpus can be rebuilt *from the archive* — across designs,
campaigns and sessions — instead of re-running routers.

:func:`router_logs_from_store` turns stored trajectories back into
:class:`~repro.bench.corpus.RouterLog` objects; the predictors'
``fit_from_store`` methods are thin wrappers over it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.corpus import RouterLog
from repro.eda.routing import SUCCESS_DRV_THRESHOLD

#: the warehouse metric carrying per-iteration DRV counts
TRAJECTORY_METRIC = "droute.drv_trajectory"


def router_logs_from_store(store, design: Optional[str] = None,
                           campaign: Optional[str] = None,
                           since: Optional[int] = None) -> List[RouterLog]:
    """Rebuild a router-log corpus from stored DRV trajectories.

    ``store`` is anything with the store query API — a
    :class:`~repro.metrics.server.MetricsServer` or a warehouse backend
    opened directly.  One :class:`RouterLog` per run that reported a
    trajectory, in the store's deterministic (sorted) run order.  The
    success label is the paper's routing criterion (final DRVs under
    the threshold — a run that routed clean but missed timing is not a
    *doomed route*); ``domain`` is the run's design name, and ``difficulty`` its
    ``option.router_effort`` setting when collected (0.0 otherwise).
    """
    logs: List[RouterLog] = []
    for run_id in store.runs(design, campaign=campaign, since=since):
        drvs = [int(v) for v in store.series(run_id, TRAJECTORY_METRIC)]
        if not drvs:
            continue
        vector = store.run_vector(run_id)
        final = vector.get("droute.final_drvs", drvs[-1])
        success = final < SUCCESS_DRV_THRESHOLD
        records = store.query(run_id=run_id, metric=TRAJECTORY_METRIC)
        domain = records[0].design if records else (design or "warehouse")
        logs.append(RouterLog(
            drvs=drvs,
            success=success,
            domain=domain,
            difficulty=float(vector.get("option.router_effort", 0.0)),
        ))
    return logs
