"""Learning the strategy card by MDP policy iteration (paper ref [30]).

The MDP: states are (violation bin, slope bin) cells plus three
absorbing states — SUCCESS (run finished clean), FAIL (run finished
with too many DRVs) and STOPPED.  The GO action follows the empirical
transition frequencies of the training corpus, including each
trajectory's terminal hand-off into SUCCESS/FAIL.  Rewards follow the
paper: "a small negative reward for a non-stop state, a large positive
reward for termination with low DRV" — plus a penalty for riding a run
into failure.  STOP moves to the STOPPED absorbing state at zero
reward.  Policy iteration then yields a GO/STOP action per state, and
footnote-5 rules fill the unvisited cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.bench.corpus import RouterLog
from repro.core.doomed.card import GO, STOP, StrategyCard, apply_fill_in_rules
from repro.core.doomed.features import StateSpace
from repro.ml.mdp import FiniteMDP, policy_iteration


@dataclass
class MDPCardLearner:
    """Fit a :class:`StrategyCard` from a corpus of router logs.

    Reward shape: ``iteration_cost`` per GO step (schedule/licenses are
    not free), ``success_reward`` on reaching a clean finish,
    ``fail_penalty`` on riding a run into failure.  ``gamma`` close to 1
    makes the policy care about run outcomes, not just the next step.

    The default rewards deliberately make the raw policy *oversensitive*
    (it stops too quickly), matching the paper's observation; accuracy
    is then recovered by requiring consecutive STOP signals.
    """

    space: StateSpace = StateSpace()
    iteration_cost: float = 1.0
    success_reward: float = 100.0
    fail_penalty: float = 200.0
    gamma: float = 0.99
    fill_in: bool = True

    def fit_from_store(self, store, design=None, campaign=None,
                       since=None) -> StrategyCard:
        """Fit from DRV trajectories persisted in a metrics store —
        the full archive by default, or one design/campaign slice."""
        from repro.core.doomed.warehouse import router_logs_from_store

        return self.fit(router_logs_from_store(
            store, design=design, campaign=campaign, since=since))

    def fit(self, logs: Iterable[RouterLog]) -> StrategyCard:
        n_grid = self.space.n_states
        success_state = n_grid
        fail_state = n_grid + 1
        stopped_state = n_grid + 2
        n_states = n_grid + 3

        counts = np.zeros((n_states, n_states))
        visited = np.zeros(n_grid, dtype=bool)
        n_logs = 0
        for log in logs:
            n_logs += 1
            states = self.space.trajectory_states(log.drvs)
            if not states:
                continue
            for s in states:
                visited[s] = True
            for a, b in zip(states[:-1], states[1:]):
                counts[a, b] += 1.0
            terminal = success_state if log.success else fail_state
            counts[states[-1], terminal] += 1.0
        if n_logs == 0:
            raise ValueError("training corpus is empty")

        transitions = np.zeros((2, n_states, n_states))
        rewards = np.zeros((2, n_states))

        # GO: empirical transitions; unvisited states self-loop (their
        # action is later overwritten by the fill-in rules anyway)
        row_sums = counts.sum(axis=1)
        for s in range(n_grid):
            if row_sums[s] > 0:
                transitions[GO, s] = counts[s] / row_sums[s]
            else:
                transitions[GO, s, s] = 1.0
            p_succ = transitions[GO, s, success_state]
            p_fail = transitions[GO, s, fail_state]
            rewards[GO, s] = (
                -self.iteration_cost
                + p_succ * self.success_reward
                - p_fail * self.fail_penalty
            )
        # absorbing states self-loop under both actions at zero reward
        for s in (success_state, fail_state, stopped_state):
            transitions[GO, s, s] = 1.0
        # STOP: jump to STOPPED from anywhere
        transitions[STOP, :, stopped_state] = 1.0
        for s in (success_state, fail_state, stopped_state):
            transitions[STOP, s, :] = 0.0
            transitions[STOP, s, s] = 1.0

        mdp = FiniteMDP(transitions, rewards, gamma=self.gamma)
        _, policy = policy_iteration(mdp)
        card = StrategyCard(self.space, policy[:n_grid], visited)
        if self.fill_in:
            card = apply_fill_in_rules(card)
        return card
