"""Logistic-regression doomed-run baseline.

A sanity baseline for the MDP/HMM predictors: classify each in-flight
(iteration, DRV, slope) observation with plain logistic regression on
simple features, and stop on consecutive doom flags.  If the MDP card
cannot beat this, the sequential modeling is not earning its keep.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.bench.corpus import RouterLog
from repro.ml.logistic import LogisticRegression
from repro.ml.scaling import StandardScaler


def _features(drvs, t: int) -> List[float]:
    current = drvs[t]
    previous = drvs[t - 1]
    delta = current - previous
    return [
        float(t),
        np.log1p(max(0.0, current)),
        np.sign(delta) * np.log1p(abs(delta)),
        np.log1p(max(0.0, drvs[0])),
        current / max(1.0, drvs[0]),
    ]


class LogisticDoomBaseline:
    """Per-observation doom classifier with consecutive-stop filtering."""

    def __init__(self, threshold: float = 0.75, seed: Optional[int] = None):
        """``threshold``: P(doomed) above which an observation flags STOP."""
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.threshold = threshold
        self.scaler = StandardScaler()
        self.model = LogisticRegression(alpha=1e-2)
        self._fitted = False

    def fit(self, logs: Iterable[RouterLog]) -> "LogisticDoomBaseline":
        rows, labels = [], []
        for log in logs:
            doomed = 0 if log.success else 1
            for t in range(1, len(log.drvs)):
                rows.append(_features(log.drvs, t))
                labels.append(doomed)
        if not rows:
            raise ValueError("training corpus is empty")
        if len(set(labels)) < 2:
            raise ValueError("corpus needs both successful and failed runs")
        X = self.scaler.fit_transform(np.array(rows))
        self.model.fit(X, np.array(labels))
        self._fitted = True
        return self

    def doom_probability(self, drvs, t: int) -> float:
        if not self._fitted:
            raise RuntimeError("baseline is not fitted")
        X = self.scaler.transform(np.array([_features(drvs, t)]))
        return float(self.model.predict_proba(X)[0])

    def stop_iteration(self, drvs, consecutive: int = 1) -> Optional[int]:
        if consecutive < 1:
            raise ValueError("consecutive must be >= 1")
        streak = 0
        for t in range(1, len(drvs)):
            if self.doom_probability(drvs, t) > self.threshold:
                streak += 1
                if streak >= consecutive:
                    return t
            else:
                streak = 0
        return None

    def evaluate(self, logs: Iterable[RouterLog], consecutive: int = 1):
        """Type-1/Type-2 accounting, mirroring the MDP evaluation."""
        from repro.core.doomed.evaluate import DoomedEvaluation

        n = type1 = type2 = correct = saved = 0
        for log in logs:
            n += 1
            stop_at = self.stop_iteration(log.drvs, consecutive)
            if stop_at is not None:
                if log.success:
                    type1 += 1
                else:
                    correct += 1
                    saved += (len(log.drvs) - 1) - stop_at
            else:
                if not log.success:
                    type2 += 1
        if n == 0:
            raise ValueError("evaluation corpus is empty")
        return DoomedEvaluation(
            n_logs=n,
            type1_errors=type1,
            type2_errors=type2,
            correct_stops=correct,
            iterations_saved=saved,
            consecutive_stops_required=consecutive,
        )
