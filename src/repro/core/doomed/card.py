"""The GO/STOP strategy card (paper Fig 10).

A strategy card maps every (violation bin, slope bin) state to GO or
STOP — "'hit' analogizes to continuing the tool run for another
iteration, and 'stay' analogizes to terminating the tool run."
Training logfiles never cover the whole grid, so unobserved states are
filled programmatically with the paper's footnote-5 rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.doomed.features import StateSpace

GO = 0
STOP = 1


@dataclass
class StrategyCard:
    """Per-state GO/STOP decisions over a :class:`StateSpace`."""

    space: StateSpace
    actions: np.ndarray  # (n_states,) of GO/STOP
    visited: np.ndarray  # (n_states,) bool: state seen in training data

    def __post_init__(self):
        self.actions = np.asarray(self.actions, dtype=int)
        self.visited = np.asarray(self.visited, dtype=bool)
        if self.actions.shape != (self.space.n_states,):
            raise ValueError("actions must have one entry per state")
        if self.visited.shape != (self.space.n_states,):
            raise ValueError("visited must have one entry per state")
        bad = set(np.unique(self.actions)) - {GO, STOP}
        if bad:
            raise ValueError(f"invalid actions {bad}")

    def action(self, violations: float, delta: float) -> int:
        """GO/STOP for a raw observation."""
        return int(self.actions[self.space.state_of(violations, delta)])

    def as_grid(self) -> np.ndarray:
        """(n_violation_bins, n_slope_bins) action grid for plotting."""
        return self.actions.reshape(
            self.space.n_violation_bins, self.space.n_slope_bins
        )

    @property
    def stop_fraction(self) -> float:
        return float(np.mean(self.actions == STOP))

    def counts(self) -> Dict[str, int]:
        return {
            "go": int(np.sum(self.actions == GO)),
            "stop": int(np.sum(self.actions == STOP)),
            "visited": int(self.visited.sum()),
        }


def apply_fill_in_rules(
    card: StrategyCard,
    large_violation_bin: int = 9,
    very_large_violation_bin: int = 13,
    large_positive_slope: int = 2,
) -> StrategyCard:
    """Fill unvisited states with the paper's footnote-5 rules.

    "(i) large violations and positive slope should be STOP, (ii) small
    violations and large positive slope should be STOP, (iii) very
    large violations should be STOP, and (iv) everything else should be
    GO."  Visited states keep their learned action.
    """
    actions = card.actions.copy()
    for state in range(card.space.n_states):
        if card.visited[state]:
            continue
        vb, sb = card.space.unpack(state)
        if vb >= large_violation_bin and sb > 0:
            actions[state] = STOP  # rule (i)
        elif vb < large_violation_bin and sb >= large_positive_slope:
            actions[state] = STOP  # rule (ii)
        elif vb >= very_large_violation_bin:
            actions[state] = STOP  # rule (iii)
        else:
            actions[state] = GO  # rule (iv)
    return StrategyCard(card.space, actions, card.visited)
