"""Logfile featurization: the (violation bin, slope bin) state space.

Per the paper's Fig 10: "the x- and y-axes represent binned violations
at time t, and change in DRVs since previous iteration, respectively."
Violation counts span orders of magnitude, so both axes bin
logarithmically; the slope axis is signed (negative = DRVs shrinking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


def bin_violations(v: float, n_bins: int = 19) -> int:
    """Log2 bin of a DRV count: 0 -> 0, 1 -> 1, 2-3 -> 2, 4-7 -> 3, ...

    Capped at ``n_bins - 1`` (the Fig 10 x-axis runs to ~18, i.e. DRV
    counts past 10^5).
    """
    if v < 0:
        raise ValueError("violation count cannot be negative")
    if v == 0:
        return 0
    return min(n_bins - 1, int(np.log2(v)) + 1)


def bin_slope(delta: float, max_down: int = 12, max_up: int = 4) -> int:
    """Signed log2 bin of the DRV change since the previous iteration.

    Negative bins mean DRVs decreased (Fig 10's y-axis runs from about
    -10 to +1: healthy runs live deep in the negative half).
    """
    if delta == 0:
        return 0
    magnitude = int(np.log2(abs(delta))) + 1
    if delta < 0:
        return -min(max_down, magnitude)
    return min(max_up, magnitude)


@dataclass(frozen=True)
class StateSpace:
    """Index arithmetic over the (violation bin, slope bin) grid."""

    n_violation_bins: int = 19
    max_down: int = 12
    max_up: int = 4

    def __post_init__(self):
        if self.n_violation_bins < 2:
            raise ValueError("need at least 2 violation bins")
        if self.max_down < 1 or self.max_up < 1:
            raise ValueError("slope bin ranges must be >= 1")

    @property
    def n_slope_bins(self) -> int:
        return self.max_down + self.max_up + 1

    @property
    def n_states(self) -> int:
        return self.n_violation_bins * self.n_slope_bins

    def state_of(self, violations: float, delta: float) -> int:
        """Flat state index for one observation."""
        vb = bin_violations(violations, self.n_violation_bins)
        sb = bin_slope(delta, self.max_down, self.max_up)
        return vb * self.n_slope_bins + (sb + self.max_down)

    def unpack(self, state: int) -> Tuple[int, int]:
        """(violation bin, slope bin) of a flat state index."""
        if not 0 <= state < self.n_states:
            raise IndexError(f"state {state} out of range")
        vb, offset = divmod(state, self.n_slope_bins)
        return vb, offset - self.max_down

    def trajectory_states(self, drvs: List[int]) -> List[int]:
        """States of a DRV series, one per iteration from t=1 on
        (t=0 has no slope yet)."""
        if len(drvs) < 2:
            return []
        return [
            self.state_of(drvs[t], drvs[t] - drvs[t - 1])
            for t in range(1, len(drvs))
        ]
