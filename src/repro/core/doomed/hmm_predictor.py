"""HMM-based doomed-run prediction (the paper's ref [36] alternative).

Two discrete HMMs are trained — one on successful runs, one on failed
runs — over the violation-bin symbol alphabet.  A live run's prefix is
classified by log-likelihood ratio; a STOP is signalled when the fail
model dominates by a margin, and (like the MDP card) termination can
require several consecutive STOPs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.bench.corpus import RouterLog
from repro.core.doomed.features import bin_violations
from repro.ml.hmm import DiscreteHMM


class HMMDoomPredictor:
    """Likelihood-ratio doom classifier over DRV-bin sequences."""

    def __init__(
        self,
        n_states: int = 3,
        n_bins: int = 19,
        margin: float = 2.0,
        min_prefix: int = 3,
        seed: Optional[int] = None,
    ):
        """``margin`` is the log-likelihood-ratio threshold (nats) the
        fail model must win by; ``min_prefix`` avoids judging a run on
        its first couple of iterations."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        if min_prefix < 2:
            raise ValueError("min_prefix must be >= 2 (need a slope)")
        self.n_bins = n_bins
        self.margin = margin
        self.min_prefix = min_prefix
        self.model_success = DiscreteHMM(n_states, n_bins, random_state=seed)
        self.model_fail = DiscreteHMM(n_states, n_bins, random_state=None if seed is None else seed + 1)
        self._fitted = False

    def _symbols(self, drvs) -> List[int]:
        return [bin_violations(v, self.n_bins) for v in drvs]

    def fit_from_store(self, store, design=None, campaign=None,
                       since=None) -> "HMMDoomPredictor":
        """Fit from DRV trajectories persisted in a metrics store —
        the full archive by default, or one design/campaign slice."""
        from repro.core.doomed.warehouse import router_logs_from_store

        return self.fit(router_logs_from_store(
            store, design=design, campaign=campaign, since=since))

    def fit(self, logs: Iterable[RouterLog]) -> "HMMDoomPredictor":
        good = []
        bad = []
        for log in logs:
            (good if log.success else bad).append(self._symbols(log.drvs))
        if not good or not bad:
            raise ValueError("training corpus needs both successful and failed runs")
        self.model_success.fit(good)
        self.model_fail.fit(bad)
        self._fitted = True
        return self

    def doom_score(self, drvs) -> float:
        """Log-likelihood margin of the fail model on a DRV prefix
        (positive = looks doomed)."""
        if not self._fitted:
            raise RuntimeError("predictor is not fitted")
        symbols = self._symbols(drvs)
        return self.model_fail.score(symbols) - self.model_success.score(symbols)

    def stop_iteration(self, drvs, consecutive: int = 1) -> Optional[int]:
        """First iteration at which the predictor would stop the run."""
        if consecutive < 1:
            raise ValueError("consecutive must be >= 1")
        streak = 0
        for t in range(self.min_prefix, len(drvs)):
            if self.doom_score(drvs[: t + 1]) > self.margin:
                streak += 1
                if streak >= consecutive:
                    return t
            else:
                streak = 0
        return None

    def evaluate(self, logs: Iterable[RouterLog], consecutive: int = 1):
        """Type-1/Type-2 accounting, mirroring the MDP evaluation."""
        from repro.core.doomed.evaluate import DoomedEvaluation

        n = type1 = type2 = correct = saved = 0
        for log in logs:
            n += 1
            stop_at = self.stop_iteration(log.drvs, consecutive)
            if stop_at is not None:
                if log.success:
                    type1 += 1
                else:
                    correct += 1
                    saved += (len(log.drvs) - 1) - stop_at
            else:
                if not log.success:
                    type2 += 1
        if n == 0:
            raise ValueError("evaluation corpus is empty")
        return DoomedEvaluation(
            n_logs=n,
            type1_errors=type1,
            type2_errors=type2,
            correct_stops=correct,
            iterations_saved=saved,
            consecutive_stops_required=consecutive,
        )
