"""Doomed-run prediction (paper Sec 3.3, Figs 9-10 and the error table).

Tool logfiles are time series of per-iteration DRV counts.  The
predictor bins each observation into (violation bin, slope bin) states,
learns GO/STOP values by policy iteration over an MDP estimated from a
training corpus, fills unobserved states with the paper's footnote-5
rules, and stops a live run only after k consecutive STOP signals.
An HMM-based predictor (the paper's alternative, ref [36]) is also
provided.
"""

from repro.core.doomed.features import StateSpace, bin_slope, bin_violations
from repro.core.doomed.card import StrategyCard, GO, STOP
from repro.core.doomed.mdp_policy import MDPCardLearner
from repro.core.doomed.evaluate import (
    DoomedEvaluation,
    evaluate_policy,
    make_stop_callback,
)
from repro.core.doomed.hmm_predictor import HMMDoomPredictor
from repro.core.doomed.logistic_baseline import LogisticDoomBaseline
from repro.core.doomed.warehouse import router_logs_from_store

__all__ = [
    "router_logs_from_store",
    "LogisticDoomBaseline",
    "StateSpace",
    "bin_violations",
    "bin_slope",
    "StrategyCard",
    "GO",
    "STOP",
    "MDPCardLearner",
    "DoomedEvaluation",
    "evaluate_policy",
    "make_stop_callback",
    "HMMDoomPredictor",
]
