"""Inherent tool-noise characterization (paper Fig 3, refs [29][15]).

"Post-P&R area can change by 6% when target frequency changes by just
10MHz near the maximum achievable frequency ... statistics of this
noisy tool behavior are Gaussian ... if designers want predictable
results, they must 'aim low'."

:func:`noise_sweep` runs the real flow across a target-frequency sweep
with many seeds per target; :class:`NoiseCharacterization` extracts the
figure's two panels (QoR-vs-target scatter with variance growth, and
per-target Gaussianity) plus the "aim low" guardband: how far below the
nominal maximum a designer must target for a given success confidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eda.flow import FlowOptions, FlowResult, SPRFlow
from repro.eda.synthesis import DesignSpec
from repro.ml.stats import NormalFit, fit_normal


@dataclass
class NoiseSweepResult:
    """All flow runs of a noise sweep, indexed by target frequency."""

    targets: List[float]
    runs: Dict[float, List[FlowResult]] = field(default_factory=dict)

    def areas(self, target: float) -> np.ndarray:
        return np.array([r.area for r in self.runs[target]])

    def powers(self, target: float) -> np.ndarray:
        return np.array([r.power for r in self.runs[target]])

    def success_rate(self, target: float) -> float:
        results = self.runs[target]
        return sum(r.timing_met for r in results) / len(results)

    @property
    def n_seeds(self) -> int:
        return len(self.runs[self.targets[0]])


def noise_sweep(
    spec: DesignSpec,
    targets: Sequence[float],
    n_seeds: int = 20,
    base_options: Optional[FlowOptions] = None,
    seed0: int = 0,
) -> NoiseSweepResult:
    """Run the flow ``n_seeds`` times per target frequency."""
    targets = sorted(targets)
    if not targets:
        raise ValueError("need at least one target")
    if n_seeds < 2:
        raise ValueError("need at least 2 seeds to see noise")
    base = base_options or FlowOptions()
    flow = SPRFlow()
    result = NoiseSweepResult(targets=list(targets))
    for target in targets:
        options = base.with_(target_clock_ghz=float(target))
        result.runs[target] = [
            flow.run(spec, options, seed=seed0 + s) for s in range(n_seeds)
        ]
    return result


@dataclass
class NoiseCharacterization:
    """Statistics of a completed sweep (the content of Fig 3)."""

    sweep: NoiseSweepResult

    def area_mean(self) -> np.ndarray:
        return np.array([self.sweep.areas(t).mean() for t in self.sweep.targets])

    def area_std(self) -> np.ndarray:
        return np.array(
            [self.sweep.areas(t).std(ddof=1) for t in self.sweep.targets]
        )

    def noise_growth_ratio(self) -> float:
        """Noise at the most aggressive targets over noise at the most
        relaxed (Fig 3 left: "noise increases with target design
        quality").  > 1 reproduces the paper's observation."""
        stds = self.area_std()
        k = max(1, len(stds) // 3)
        low = float(np.mean(stds[:k]))
        high = float(np.mean(stds[-k:]))
        return high / max(1e-12, low)

    def gaussian_fit(self, target: float) -> NormalFit:
        """Fig 3 right: the per-target QoR histogram's normal fit."""
        return fit_normal(self.sweep.areas(target))

    def gaussian_fraction(self) -> float:
        """Fraction of targets whose area sample passes the JB test."""
        fits = [self.gaussian_fit(t) for t in self.sweep.targets]
        return sum(f.looks_gaussian for f in fits) / len(fits)

    # ------------------------------------------------------------------
    def aim_low_target(self, confidence: float = 0.95) -> float:
        """The highest target with success rate >= confidence.

        The gap between this and the highest *sometimes*-achievable
        target is the schedule guardband the paper says unpredictability
        forces on designers.
        """
        if not 0.0 < confidence <= 1.0:
            raise ValueError("confidence must be in (0, 1]")
        feasible = [
            t for t in self.sweep.targets if self.sweep.success_rate(t) >= confidence
        ]
        if not feasible:
            raise ValueError("no target meets the requested confidence")
        return max(feasible)

    def frequency_guardband(self, confidence: float = 0.95) -> float:
        """GHz the designer gives up to be safe: best sometimes-feasible
        target minus the aim-low target."""
        sometimes = [
            t for t in self.sweep.targets if self.sweep.success_rate(t) > 0.0
        ]
        if not sometimes:
            return 0.0
        return max(sometimes) - self.aim_low_target(confidence)

    def summary(self) -> Dict[str, float]:
        return {
            "n_targets": float(len(self.sweep.targets)),
            "n_seeds": float(self.sweep.n_seeds),
            "noise_growth_ratio": self.noise_growth_ratio(),
            "gaussian_fraction": self.gaussian_fraction(),
        }
