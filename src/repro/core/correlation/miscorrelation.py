"""Quantifying miscorrelation: guardbands, their cost, and Fig 8's curve.

"If the P&R tool is overly pessimistic in guardbanding miscorrelation
to signoff STA, then it will perform unneeded sizing, shielding or
VT-swapping operations that cost area, power and schedule."  The
functions here size the guardband a cheap engine needs to be safe
against the golden engine, measure what that guardband costs in actual
optimizer work on the substrate, and assemble the accuracy-cost points
of Fig 8 — including the "+ML" point that shifts the curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.correlation.dataset import CorrelationDataset
from repro.core.correlation.models import MiscorrelationModel


def miscorrelation_stats(dataset: CorrelationDataset) -> Dict[str, float]:
    """Summary of golden-vs-cheap divergence (ps)."""
    delta = dataset.divergence
    return {
        "mean": float(np.mean(delta)),
        "std": float(np.std(delta)),
        "mae": float(np.mean(np.abs(delta))),
        "worst_optimistic": float(np.min(delta)),  # cheap engine too rosy
        "worst_pessimistic": float(np.max(delta)),
        "n": float(delta.size),
    }


def guardband_for(
    cheap_slack: np.ndarray,
    golden_slack: np.ndarray,
    coverage: float = 0.995,
) -> float:
    """Guardband (ps) the cheap engine must add to be safe.

    The smallest g such that for a ``coverage`` fraction of endpoints,
    ``cheap_slack - g <= golden_slack`` — i.e. declaring an endpoint met
    at guardband g is (almost) never contradicted by signoff.  A
    negative value means the cheap engine is already pessimistic.
    """
    if not 0.5 <= coverage <= 1.0:
        raise ValueError("coverage must be in [0.5, 1.0]")
    cheap = np.asarray(cheap_slack, dtype=float)
    golden = np.asarray(golden_slack, dtype=float)
    if cheap.shape != golden.shape or cheap.size == 0:
        raise ValueError("slack vectors must be equal-length and non-empty")
    optimism = cheap - golden  # positive where the cheap engine over-promises
    return float(np.quantile(optimism, coverage))


@dataclass
class AccuracyCostPoint:
    """One analysis configuration on the Fig 8 tradeoff."""

    name: str
    cost: float  # runtime proxy
    error: float  # MAE against the golden analysis (ps)
    guardband: float  # required safety margin (ps)


def accuracy_cost_curve(
    train: CorrelationDataset,
    test: CorrelationDataset,
    model_kinds: tuple = ("ridge", "gbm"),
    seed: Optional[int] = None,
) -> List[AccuracyCostPoint]:
    """Assemble Fig 8: raw cheap engine, golden engine, and ML-corrected
    cheap engine(s).

    The ML points should land near the golden engine's accuracy at near
    the cheap engine's cost — the "accuracy for free" shift.
    """
    points = [
        AccuracyCostPoint(
            name="cheap",
            cost=train.cheap_runtime,
            error=float(np.mean(np.abs(test.divergence))),
            guardband=guardband_for(test.cheap_slack, test.golden_slack),
        ),
        AccuracyCostPoint(
            name="golden",
            cost=train.golden_runtime,
            error=0.0,
            guardband=0.0,
        ),
    ]
    for kind in model_kinds:
        model = MiscorrelationModel(kind=kind, seed=seed).fit(train)
        corrected = model.predict_golden(test)
        points.append(
            AccuracyCostPoint(
                name=f"cheap+ML({kind})",
                cost=train.cheap_runtime * 1.05,  # inference is ~free
                error=float(np.mean(np.abs(test.golden_slack - corrected))),
                guardband=guardband_for(corrected, test.golden_slack),
            )
        )
    return points


def guardband_optimization_cost(
    guardbands,
    spec=None,
    clock_period: Optional[float] = None,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Measure what pessimism costs: run the real optimizer at several
    guardbands and record area/leakage/work deltas.

    This is the paper's claim made quantitative on the substrate:
    larger guardbands trigger sizing operations the signoff timer never
    needed, costing area and power.  ``clock_period`` defaults to ~12%
    above the design's unoptimized critical path, where a zero-guardband
    optimizer has nothing to do and every op is guardband-induced.
    """
    from repro.bench.generators import pulpino_profile
    from repro.eda.floorplan import make_floorplan
    from repro.eda.library import make_default_library
    from repro.eda.opt import TimingOptimizer
    from repro.eda.placement import QuadraticPlacer
    from repro.eda.routing import GlobalRouter
    from repro.eda.synthesis import synthesize
    from repro.eda.timing import GraphSTA

    spec = spec or pulpino_profile()
    library = make_default_library()
    if clock_period is None:
        netlist = synthesize(spec, library, effort=0.5, seed=seed)
        floorplan = make_floorplan(netlist, utilization=0.7)
        placement = QuadraticPlacer().place(netlist, floorplan, seed)
        report = GraphSTA().analyze(netlist, placement, 1000.0)
        critical = max(e.arrival for e in report.endpoints.values())
        clock_period = critical * 1.12
    rows = []
    for g in guardbands:
        if g < 0:
            raise ValueError("guardbands must be non-negative")
        netlist = synthesize(spec, library, effort=0.5, seed=seed)
        floorplan = make_floorplan(netlist, utilization=0.7)
        placement = QuadraticPlacer().place(netlist, floorplan, seed)
        congestion = GlobalRouter().route(placement, seed).congestion_map()
        area_before = netlist.total_area
        leak_before = netlist.total_leakage
        opt = TimingOptimizer(
            guardband=float(g), max_passes=8, recover_power=False
        ).optimize(
            netlist, placement, clock_period, GraphSTA(), congestion=congestion, seed=seed
        )
        rows.append(
            {
                "guardband": float(g),
                "area_delta": netlist.total_area - area_before,
                "leakage_delta": netlist.total_leakage - leak_before,
                "sizing_ops": float(opt.total_ops),
                "passes": float(opt.passes),
                "final_wns": opt.final_report.wns,
            }
        )
    return rows
