"""Endpoint-level datasets from paired timing-engine runs.

Each record is one timing endpoint of one placed design: the features
are what the *cheap* analysis already knows (graph-based arrival, path
depth, wire/cell delay split, fanout, slew, local congestion), and the
target is what the *expensive* analysis would say (signoff slack, PBA
slack, or slack at an unanalyzed corner).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.bench.generators import DRIVER_CLASSES
from repro.eda.floorplan import make_floorplan
from repro.eda.library import make_default_library
from repro.eda.placement import QuadraticPlacer
from repro.eda.routing import GlobalRouter
from repro.eda.synthesis import DesignSpec, synthesize
from repro.eda.timing import (
    Corner,
    EndpointTiming,
    GraphSTA,
    SignoffSTA,
    TYPICAL,
    SLOW,
    FAST,
)


@dataclass
class CorrelationDataset:
    """Feature matrix + cheap and golden slacks per endpoint."""

    X: np.ndarray  # (n, d) features from the cheap analysis
    cheap_slack: np.ndarray  # (n,) cheap-engine endpoint slack
    golden_slack: np.ndarray  # (n,) golden-engine endpoint slack
    endpoint_names: List[str]
    feature_names: Tuple[str, ...]
    cheap_runtime: float = 0.0  # mean runtime proxy per design
    golden_runtime: float = 0.0

    def __post_init__(self):
        if self.X.shape[0] != self.cheap_slack.shape[0] or self.X.shape[0] != self.golden_slack.shape[0]:
            raise ValueError("feature and slack row counts disagree")

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    @property
    def divergence(self) -> np.ndarray:
        """Golden minus cheap slack per endpoint (the miscorrelation)."""
        return self.golden_slack - self.cheap_slack

    def split(self, train_fraction: float = 0.7, seed: int = 0):
        """Deterministic shuffled train/test split."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        perm = rng.permutation(self.n_samples)
        cut = max(1, int(self.n_samples * train_fraction))
        tr, te = perm[:cut], perm[cut:]
        make = lambda idx: CorrelationDataset(  # noqa: E731
            X=self.X[idx],
            cheap_slack=self.cheap_slack[idx],
            golden_slack=self.golden_slack[idx],
            endpoint_names=[self.endpoint_names[i] for i in idx],
            feature_names=self.feature_names,
            cheap_runtime=self.cheap_runtime,
            golden_runtime=self.golden_runtime,
        )
        return make(tr), make(te)


def _endpoint_features(ep: EndpointTiming, congestion_mean: float) -> List[float]:
    return ep.features + [congestion_mean]


FEATURE_NAMES = EndpointTiming.FEATURE_NAMES + ("congestion_mean",)


def _prepare_designs(n_designs: int, seed: int, clock_period: float):
    """Synthesize/place/route a mix of profiles; yields analysis inputs."""
    rng = np.random.default_rng(seed)
    library = make_default_library()
    profiles = list(DRIVER_CLASSES.values())
    designs = []
    for i in range(n_designs):
        spec: DesignSpec = profiles[i % len(profiles)]
        netlist = synthesize(spec, library, effort=0.5, seed=int(rng.integers(0, 2**31 - 1)))
        floorplan = make_floorplan(netlist, utilization=float(rng.uniform(0.6, 0.85)))
        placement = QuadraticPlacer().place(netlist, floorplan, int(rng.integers(0, 2**31 - 1)))
        groute = GlobalRouter().route(placement, int(rng.integers(0, 2**31 - 1)))
        designs.append((netlist, placement, groute.congestion_map()))
    return designs


def build_correlation_dataset(
    n_designs: int = 8,
    clock_period: float = 1300.0,
    seed: int = 0,
) -> CorrelationDataset:
    """GraphSTA (cheap) vs SignoffSTA (golden) endpoint slacks."""
    designs = _prepare_designs(n_designs, seed, clock_period)
    rows, cheap, golden, names = [], [], [], []
    cheap_rt, golden_rt = [], []
    for k, (netlist, placement, congestion) in enumerate(designs):
        graph_report = GraphSTA().analyze(netlist, placement, clock_period)
        signoff_report = SignoffSTA().analyze(
            netlist, placement, clock_period, congestion=congestion
        )
        cheap_rt.append(graph_report.runtime_proxy)
        golden_rt.append(signoff_report.runtime_proxy)
        cong_mean = float(np.mean(congestion))
        for name, ep in graph_report.endpoints.items():
            rows.append(_endpoint_features(ep, cong_mean))
            cheap.append(ep.slack)
            golden.append(signoff_report.endpoints[name].slack)
            names.append(f"d{k}:{name}")
    return CorrelationDataset(
        X=np.array(rows),
        cheap_slack=np.array(cheap),
        golden_slack=np.array(golden),
        endpoint_names=names,
        feature_names=FEATURE_NAMES,
        cheap_runtime=float(np.mean(cheap_rt)),
        golden_runtime=float(np.mean(golden_rt)),
    )


def build_gba_pba_dataset(
    n_designs: int = 8,
    clock_period: float = 1300.0,
    seed: int = 0,
) -> CorrelationDataset:
    """Extension (1) of [20]: predict path-based from graph-based signoff.

    Cheap = SignoffSTA with PBA disabled (pure GBA), golden = with PBA.
    """
    designs = _prepare_designs(n_designs, seed, clock_period)
    rows, cheap, golden, names = [], [], [], []
    cheap_rt, golden_rt = [], []
    for k, (netlist, placement, congestion) in enumerate(designs):
        gba = SignoffSTA(pba=False).analyze(
            netlist, placement, clock_period, congestion=congestion
        )
        pba = SignoffSTA(pba=True).analyze(
            netlist, placement, clock_period, congestion=congestion
        )
        cheap_rt.append(gba.runtime_proxy)
        golden_rt.append(pba.runtime_proxy)
        cong_mean = float(np.mean(congestion))
        for name, ep in gba.endpoints.items():
            rows.append(_endpoint_features(ep, cong_mean))
            cheap.append(ep.slack)
            golden.append(pba.endpoints[name].slack)
            names.append(f"d{k}:{name}")
    return CorrelationDataset(
        X=np.array(rows),
        cheap_slack=np.array(cheap),
        golden_slack=np.array(golden),
        endpoint_names=names,
        feature_names=FEATURE_NAMES,
        cheap_runtime=float(np.mean(cheap_rt)),
        golden_runtime=float(np.mean(golden_rt)),
    )


def build_corner_dataset(
    n_designs: int = 8,
    clock_period: float = 1300.0,
    seed: int = 0,
    analyzed: Tuple[Corner, ...] = (TYPICAL, SLOW),
    missing: Corner = FAST,
) -> CorrelationDataset:
    """Extension (2) of [20]: predict timing at a missing corner.

    Features: endpoint structure plus the slacks at the *analyzed*
    corners; target: slack at the unanalyzed corner.  ``cheap_slack``
    holds the nearest analyzed corner's slack as the no-ML baseline.
    """
    if not analyzed:
        raise ValueError("need at least one analyzed corner")
    designs = _prepare_designs(n_designs, seed, clock_period)
    rows, cheap, golden, names = [], [], [], []
    cheap_rt, golden_rt = [], []
    for k, (netlist, placement, congestion) in enumerate(designs):
        reports = [
            SignoffSTA(corner=c).analyze(netlist, placement, clock_period, congestion=congestion)
            for c in analyzed
        ]
        target_report = SignoffSTA(corner=missing).analyze(
            netlist, placement, clock_period, congestion=congestion
        )
        cheap_rt.append(sum(r.runtime_proxy for r in reports))
        golden_rt.append(cheap_rt[-1] + target_report.runtime_proxy)
        cong_mean = float(np.mean(congestion))
        for name, ep in reports[0].endpoints.items():
            feats = _endpoint_features(ep, cong_mean)
            feats += [r.endpoints[name].slack for r in reports]
            rows.append(feats)
            cheap.append(reports[0].endpoints[name].slack)
            golden.append(target_report.endpoints[name].slack)
            names.append(f"d{k}:{name}")
    feature_names = FEATURE_NAMES + tuple(f"slack_{c.name}" for c in analyzed)
    return CorrelationDataset(
        X=np.array(rows),
        cheap_slack=np.array(cheap),
        golden_slack=np.array(golden),
        endpoint_names=names,
        feature_names=feature_names,
        cheap_runtime=float(np.mean(cheap_rt)),
        golden_runtime=float(np.mean(golden_rt)),
    )
