"""ML for analysis miscorrelation (paper Sec 3.2, Fig 8).

Two timers disagree on the same design; the divergence forces
guardbands, and guardbands force unneeded sizing work.  This package
builds endpoint-level datasets from paired GraphSTA/SignoffSTA runs,
learns correction models (the "SI for free" / "golden signoff
proliferation" idea of papers [14][27]), quantifies the guardband
reduction, and reproduces the accuracy-cost curve.  The two near-term
extensions the paper cites from [20] are included: GBA→PBA prediction
and missing-corner prediction.
"""

from repro.core.correlation.dataset import (
    CorrelationDataset,
    build_correlation_dataset,
    build_corner_dataset,
    build_gba_pba_dataset,
)
from repro.core.correlation.models import MiscorrelationModel
from repro.core.correlation.miscorrelation import (
    AccuracyCostPoint,
    accuracy_cost_curve,
    guardband_for,
    guardband_optimization_cost,
    miscorrelation_stats,
)

__all__ = [
    "CorrelationDataset",
    "build_correlation_dataset",
    "build_corner_dataset",
    "build_gba_pba_dataset",
    "MiscorrelationModel",
    "AccuracyCostPoint",
    "accuracy_cost_curve",
    "guardband_for",
    "guardband_optimization_cost",
    "miscorrelation_stats",
]
