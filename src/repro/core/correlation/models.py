"""Correction models: learn the golden analysis from the cheap one.

Following the paper's ref [14] (deep-learning "golden signoff timing
proliferation"), the model predicts the *divergence* (golden minus
cheap slack) from endpoint features, then adds it back to the cheap
slack.  Predicting the delta rather than the absolute slack makes the
cheap engine's own information free and the learning problem small —
appropriate for the "small data" regime the paper emphasizes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.correlation.dataset import CorrelationDataset
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import RidgeRegression
from repro.ml.metrics import mean_absolute_error, root_mean_squared_error
from repro.ml.scaling import StandardScaler


class MiscorrelationModel:
    """Predict golden endpoint slack from cheap analysis features.

    ``kind`` selects the regressor: "ridge" (linear, fast, the default)
    or "gbm" (gradient-boosted trees, for nonlinear divergence).
    """

    def __init__(self, kind: str = "ridge", seed: Optional[int] = None):
        if kind not in ("ridge", "gbm"):
            raise ValueError("kind must be 'ridge' or 'gbm'")
        self.kind = kind
        self.seed = seed
        self.scaler = StandardScaler()
        self._model = None

    def _make_model(self):
        if self.kind == "ridge":
            return RidgeRegression(alpha=1.0)
        return GradientBoostingRegressor(
            n_estimators=60, learning_rate=0.15, max_depth=3, random_state=self.seed
        )

    def fit(self, dataset: CorrelationDataset) -> "MiscorrelationModel":
        X = self._design_matrix(dataset, fit=True)
        delta = dataset.divergence
        self._model = self._make_model()
        self._model.fit(X, delta)
        return self

    def predict_golden(self, dataset: CorrelationDataset) -> np.ndarray:
        """Corrected slack: cheap slack plus the predicted divergence."""
        if self._model is None:
            raise RuntimeError("model is not fitted")
        X = self._design_matrix(dataset, fit=False)
        return dataset.cheap_slack + self._model.predict(X)

    def _design_matrix(self, dataset: CorrelationDataset, fit: bool) -> np.ndarray:
        X = np.hstack([dataset.X, dataset.cheap_slack[:, None]])
        if fit:
            return self.scaler.fit_transform(X)
        return self.scaler.transform(X)

    # ------------------------------------------------------------------
    def report(self, dataset: CorrelationDataset) -> dict:
        """Error of raw-cheap vs ML-corrected slack against golden."""
        corrected = self.predict_golden(dataset)
        return {
            "raw_mae": mean_absolute_error(dataset.golden_slack, dataset.cheap_slack),
            "raw_rmse": root_mean_squared_error(dataset.golden_slack, dataset.cheap_slack),
            "ml_mae": mean_absolute_error(dataset.golden_slack, corrected),
            "ml_rmse": root_mean_squared_error(dataset.golden_slack, corrected),
        }
