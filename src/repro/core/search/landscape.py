"""The optimization landscape: balanced netlist bisection.

Bisection (min-cut partitioning under a balance constraint) is the
domain where the paper's refs [5] (Boese-Kahng-Muddu) and [12]
(Hagen-Kahng) established the "big valley" picture: local minima
cluster, and better minima sit closer to the best known minimum.
:func:`big_valley_correlation` measures exactly that statistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.eda.netlist import Netlist


@dataclass
class BisectionProblem:
    """Balanced graph bisection: minimize cut weight.

    A solution is a boolean vector (side per node).  Balance requires
    each side to hold at least ``floor(n/2) - tolerance`` nodes.
    """

    n_nodes: int
    edges: List[Tuple[int, int, float]]
    tolerance: int = 2

    def __post_init__(self):
        if self.n_nodes < 4:
            raise ValueError("need at least 4 nodes")
        for u, v, w in self.edges:
            if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
                raise ValueError(f"edge ({u},{v}) out of range")
            if w <= 0:
                raise ValueError("edge weights must be positive")
        # adjacency lists for fast gain computation
        self._adj: List[List[Tuple[int, float]]] = [[] for _ in range(self.n_nodes)]
        for u, v, w in self.edges:
            self._adj[u].append((v, w))
            self._adj[v].append((u, w))

    # ------------------------------------------------------------------
    @classmethod
    def from_netlist(cls, netlist: Netlist, tolerance: int = 2) -> "BisectionProblem":
        """Clique-model graph of a netlist's instances."""
        names = list(netlist.instances)
        index = {n: i for i, n in enumerate(names)}
        weights = {}
        for net_name, net in netlist.nets.items():
            if net_name == netlist.clock_net:
                continue
            members = []
            if net.driver is not None:
                members.append(index[net.driver])
            members += [index[s] for s, _ in net.sinks]
            members = sorted(set(members))
            k = len(members)
            if k < 2:
                continue
            w = 1.0 / (k - 1)
            for a_pos, a in enumerate(members):
                for b in members[a_pos + 1 :]:
                    weights[(a, b)] = weights.get((a, b), 0.0) + w
        edges = [(u, v, w) for (u, v), w in weights.items()]
        return cls(n_nodes=len(names), edges=edges, tolerance=tolerance)

    @classmethod
    def random_community(
        cls,
        n_nodes: int = 64,
        n_communities: int = 8,
        p_in: float = 0.5,
        p_out: float = 0.03,
        seed: Optional[int] = None,
    ) -> "BisectionProblem":
        """Planted community structure (produces a pronounced big valley)."""
        if n_communities < 2 or n_nodes < 2 * n_communities:
            raise ValueError("need at least 2 communities and enough nodes")
        rng = np.random.default_rng(seed)
        community = np.repeat(np.arange(n_communities), n_nodes // n_communities)
        community = np.concatenate([community, rng.integers(0, n_communities, n_nodes - community.size)])
        edges = []
        for u in range(n_nodes):
            for v in range(u + 1, n_nodes):
                p = p_in if community[u] == community[v] else p_out
                if rng.random() < p:
                    edges.append((u, v, 1.0))
        return cls(n_nodes=n_nodes, edges=edges)

    # ------------------------------------------------------------------
    def cost(self, assign: np.ndarray) -> float:
        """Total weight of cut edges."""
        assign = np.asarray(assign, dtype=bool)
        if assign.shape != (self.n_nodes,):
            raise ValueError("assignment length mismatch")
        return float(
            sum(w for u, v, w in self.edges if assign[u] != assign[v])
        )

    def is_balanced(self, assign: np.ndarray) -> bool:
        ones = int(np.sum(assign))
        low = self.n_nodes // 2 - self.tolerance
        high = self.n_nodes - low
        return low <= ones <= high

    def random_solution(self, rng: np.random.Generator) -> np.ndarray:
        assign = np.zeros(self.n_nodes, dtype=bool)
        half = self.n_nodes // 2
        assign[rng.choice(self.n_nodes, half, replace=False)] = True
        return assign

    def gain(self, assign: np.ndarray, node: int) -> float:
        """Cut reduction if ``node`` flips sides."""
        g = 0.0
        side = assign[node]
        for other, w in self._adj[node]:
            g += w if assign[other] != side else -w
        return g

    def local_search(
        self, assign: np.ndarray, rng: np.random.Generator, max_passes: int = 10
    ) -> np.ndarray:
        """Greedy pass-based improvement (FM-flavoured, single moves).

        Repeatedly flips the best-gain node whose flip keeps balance,
        until a pass yields no improvement.
        """
        assign = np.asarray(assign, dtype=bool).copy()
        for _ in range(max_passes):
            improved = False
            order = rng.permutation(self.n_nodes)
            for node in order:
                if not self._can_flip(assign, node):
                    continue
                if self.gain(assign, node) > 1e-12:
                    assign[node] = ~assign[node]
                    improved = True
            if not improved:
                break
        return assign

    def _can_flip(self, assign: np.ndarray, node: int) -> bool:
        trial = assign.copy()
        trial[node] = ~trial[node]
        return self.is_balanced(trial)

    def distance(self, a: np.ndarray, b: np.ndarray) -> int:
        """Hamming distance up to side-label symmetry."""
        a = np.asarray(a, dtype=bool)
        b = np.asarray(b, dtype=bool)
        d = int(np.sum(a != b))
        return min(d, self.n_nodes - d)


def big_valley_correlation(
    problem: BisectionProblem,
    n_starts: int = 40,
    seed: Optional[int] = None,
) -> Tuple[float, List[np.ndarray], List[float]]:
    """The big-valley statistic: corr(cost, distance to best minimum).

    Runs ``n_starts`` random-start local searches, finds the best local
    minimum, and correlates each minimum's cost with its distance to
    the best.  A strongly positive correlation is the "big valley"
    structure adaptive multistart exploits (paper Fig 6(b)).
    """
    if n_starts < 3:
        raise ValueError("need at least 3 starts")
    rng = np.random.default_rng(seed)
    minima = [
        problem.local_search(problem.random_solution(rng), rng) for _ in range(n_starts)
    ]
    costs = [problem.cost(m) for m in minima]
    best = minima[int(np.argmin(costs))]
    dists = np.array([problem.distance(m, best) for m in minima], dtype=float)
    costs_arr = np.array(costs)
    if np.std(dists) == 0 or np.std(costs_arr) == 0:
        return 0.0, minima, costs
    corr = float(np.corrcoef(costs_arr, dists)[0, 1])
    return corr, minima, costs
