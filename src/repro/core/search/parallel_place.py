"""GWTW applied to the substrate's own placement annealer.

Paper Sec 2, implied mindset (iii): "parallel search under the hood can
preserve or improve achieved QOR."  This module runs N annealing
placement threads from the same global placement, periodically clones
the best thread's cell positions over the worst threads', and returns
the champion — a drop-in replacement for a single
:class:`~repro.eda.placement.AnnealingRefiner` run at N× the compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.eda.placement import AnnealingRefiner, Placement


@dataclass
class ParallelPlaceResult:
    """Champion placement plus the search trace."""

    hpwl: float
    best_thread: int
    hpwl_trace: List[float] = field(default_factory=list)  # best per stage
    total_moves: int = 0


def _clone_placement(placement: Placement) -> Placement:
    return Placement(
        netlist=placement.netlist,
        floorplan=placement.floorplan,
        positions=dict(placement.positions),
    )


def gwtw_place(
    placement: Placement,
    n_threads: int = 4,
    n_stages: int = 4,
    moves_per_cell_per_stage: int = 4,
    survivor_fraction: float = 0.5,
    seed: Optional[int] = None,
) -> ParallelPlaceResult:
    """Winner-cloning parallel detailed placement.

    Improves ``placement`` in place (it becomes the champion).  Each
    stage anneals every thread for ``moves_per_cell_per_stage`` moves
    per cell at a temperature that cools across stages, then clones the
    best threads over the rest.
    """
    if n_threads < 2:
        raise ValueError("need at least 2 threads")
    if n_stages < 1:
        raise ValueError("need at least 1 stage")
    if not 0.0 < survivor_fraction < 1.0:
        raise ValueError("survivor_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)

    threads = [_clone_placement(placement) for _ in range(n_threads)]
    costs = [t.hpwl() for t in threads]
    result = ParallelPlaceResult(hpwl=min(costs), best_thread=0)

    # stage temperatures: start warm, end cold
    t_starts = np.geomspace(4.0, 0.4, n_stages)
    for stage in range(n_stages):
        refiner = AnnealingRefiner(
            moves_per_cell=moves_per_cell_per_stage,
            t_start=float(t_starts[stage]),
            t_end=float(t_starts[stage] * 0.1),
        )
        for i, thread in enumerate(threads):
            costs[i] = refiner.refine(thread, seed=int(rng.integers(0, 2**31 - 1)))
            result.total_moves += moves_per_cell_per_stage * len(thread.positions)
        order = np.argsort(costs)
        result.hpwl_trace.append(float(costs[order[0]]))
        n_survive = max(1, int(n_threads * survivor_fraction))
        for loser_rank in range(n_survive, n_threads):
            loser = int(order[loser_rank])
            winner = int(order[loser_rank % n_survive])
            threads[loser] = _clone_placement(threads[winner])
            costs[loser] = costs[winner]

    best = int(np.argmin(costs))
    placement.positions.update(threads[best].positions)
    result.hpwl = float(costs[best])
    result.best_thread = best
    return result
