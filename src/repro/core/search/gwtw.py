"""Go-With-The-Winners (paper Fig 6(a), refs [2][24]).

N annealing threads run in parallel; at each checkpoint the most
promising threads are cloned over the least promising ones ("launches
multiple optimization threads, and periodically identifies and clones
the most promising thread while terminating other threads").  The
control is :func:`independent_multistart` at the same total move
budget.

The annealing loops themselves now live in
:mod:`repro.dse.strategies.landscape` (strategies ``"gwtw"`` and
``"independent"``); the entrypoints here are bit-identical façades
over the declarative engine, kept for the historical call signatures
and the :class:`GWTWResult` dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.search.landscape import BisectionProblem


@dataclass
class GWTWResult:
    """Outcome of a parallel search run."""

    best_cost: float
    best_assign: np.ndarray
    cost_trace: List[float] = field(default_factory=list)  # best-so-far per stage
    total_moves: int = 0
    method: str = "gwtw"


def go_with_the_winners(
    problem: BisectionProblem,
    n_threads: int = 8,
    n_stages: int = 10,
    steps_per_stage: int = 60,
    survivor_fraction: float = 0.5,
    t_start: float = 3.0,
    seed: Optional[int] = None,
) -> GWTWResult:
    """GWTW annealing on a bisection landscape."""
    from repro.dse.engine import DSEEngine

    engine = DSEEngine(
        strategy="gwtw",
        params={
            "n_threads": n_threads,
            "n_stages": n_stages,
            "steps_per_stage": steps_per_stage,
            "survivor_fraction": survivor_fraction,
            "t_start": t_start,
        },
    )
    return engine.run(problem, seed=seed).to_gwtw_result()


def independent_multistart(
    problem: BisectionProblem,
    n_threads: int = 8,
    n_stages: int = 10,
    steps_per_stage: int = 60,
    t_start: float = 3.0,
    seed: Optional[int] = None,
) -> GWTWResult:
    """Same budget, no cloning: the baseline GWTW is measured against."""
    from repro.dse.engine import DSEEngine

    engine = DSEEngine(
        strategy="independent",
        params={
            "n_threads": n_threads,
            "n_stages": n_stages,
            "steps_per_stage": steps_per_stage,
            "t_start": t_start,
        },
    )
    return engine.run(problem, seed=seed).to_gwtw_result()
